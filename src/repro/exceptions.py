"""Exception hierarchy for the :mod:`repro` library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidThresholdError(ReproError, ValueError):
    """A similarity threshold ``k`` is negative or not an integer."""

    def __init__(self, k: object) -> None:
        super().__init__(
            f"edit-distance threshold must be a non-negative integer, got {k!r}"
        )
        self.k = k


class AlphabetError(ReproError, ValueError):
    """A string contains symbols outside the alphabet an encoder expects."""


class DatasetFormatError(ReproError, ValueError):
    """A dataset or query file violates the competition file format."""

    def __init__(self, message: str, *, path: str | None = None,
                 line_number: int | None = None) -> None:
        location = ""
        if path is not None:
            location = f" in {path}"
            if line_number is not None:
                location += f" at line {line_number}"
        super().__init__(message + location)
        self.path = path
        self.line_number = line_number


class WorkloadError(ReproError, ValueError):
    """A workload was built or sliced with impossible parameters.

    Derives from :class:`ValueError` too, so callers that predate the
    hierarchy keep working.
    """


class VerificationError(ReproError):
    """An optimized approach returned results that differ from the reference.

    The paper's methodology (section 3.1) rejects any approach whose result
    set is not identical to the base implementation; this error carries the
    symmetric difference so the failure is diagnosable.
    """

    def __init__(self, message: str, *, missing: frozenset[str] = frozenset(),
                 spurious: frozenset[str] = frozenset()) -> None:
        super().__init__(message)
        self.missing = missing
        self.spurious = spurious


class DeadlineExceeded(ReproError):
    """A query ran out of time (or work budget) before finishing.

    Raised by every hot path that accepts a deadline — the sequential
    scan, the compiled batch scan, the object-trie traversal and the
    flat-trie descent — and by the layers above them (batch executors,
    sharded corpus, service). The exception always carries *partial,
    well-labeled results*: everything the aborted computation had
    already proven before the deadline fired. Partial matches are true
    matches (each one was fully verified before the abort), so the
    partial set is a subset of the exact answer — never a superset.

    Attributes
    ----------
    partial:
        What completed before the abort. A tuple of
        :class:`repro.core.result.Match` for single-query paths; a
        mapping of ``query -> tuple[Match, ...]`` for batch paths
        (completed queries only); merged matches for sharded paths.
    scope:
        What ``completed``/``total`` count: ``"candidates"`` (scan
        paths), ``"nodes"`` (trie paths), ``"queries"`` (batch
        executors) or ``"shards"`` (sharded corpus).
    completed / total:
        Progress through that scope when the deadline fired
        (``total`` may be 0 when the path cannot know it cheaply).
    """

    def __init__(self, message: str, *, partial: object = (),
                 scope: str = "candidates", completed: int = 0,
                 total: int = 0) -> None:
        super().__init__(message)
        self.partial = partial
        self.scope = scope
        self.completed = completed
        self.total = total


class ServiceOverloaded(ReproError):
    """The service's admission queue is full; the request was rejected.

    Explicit load shedding: callers should back off and retry rather
    than pile onto a saturated service. ``capacity`` and ``in_flight``
    describe the admission state at rejection time, and
    ``retry_after_ms`` — when the rejecting layer can estimate it from
    its recent drain rate — suggests how long to wait before the next
    attempt (``None`` when no estimate is available; a well-behaved
    client treats it like an HTTP ``Retry-After`` header).
    """

    def __init__(self, message: str, *, capacity: int = 0,
                 in_flight: int = 0,
                 retry_after_ms: float | None = None) -> None:
        super().__init__(message)
        self.capacity = capacity
        self.in_flight = in_flight
        self.retry_after_ms = retry_after_ms


class PartialResultError(ReproError):
    """Only partial results are available and the caller required all.

    Raised by :class:`repro.service.Service` when the degradation
    ladder is exhausted and ``allow_partial=False``; ``result`` holds
    the best partial :class:`repro.service.ServiceResult` so callers
    that change their mind can still use it.
    """

    def __init__(self, message: str, *, result: object = None) -> None:
        super().__init__(message)
        self.result = result


class FrozenCorpusError(ReproError):
    """A mutation was attempted on a frozen (immutable) corpus.

    Raised by :class:`repro.live.Corpus` when ``insert``/``delete`` is
    called on a handle built with :meth:`repro.live.Corpus.frozen` (or
    opened from a single segment file). Frozen corpora are compiled
    once and shared freely; a mutable corpus must be built with
    :meth:`repro.live.Corpus.live` instead.
    """


class IndexConstructionError(ReproError):
    """An index could not be built from the supplied dataset."""


class SegmentError(ReproError):
    """A compiled-artifact segment file is unreadable or incompatible.

    Raised by :mod:`repro.speed.segment` when a file is not a segment
    (bad magic), was written by an incompatible format version, names
    an unknown artifact kind, or is truncated/corrupted. ``path``
    locates the offending file.
    """

    def __init__(self, message: str, *, path: str | None = None) -> None:
        if path is not None:
            message = f"{message} ({path})"
        super().__init__(message)
        self.path = path


class ParallelismError(ReproError):
    """An execution strategy was configured or driven inconsistently."""


class ExperimentError(ReproError):
    """A benchmark experiment was configured with impossible parameters."""
