"""Exception hierarchy for the :mod:`repro` library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidThresholdError(ReproError, ValueError):
    """A similarity threshold ``k`` is negative or not an integer."""

    def __init__(self, k: object) -> None:
        super().__init__(
            f"edit-distance threshold must be a non-negative integer, got {k!r}"
        )
        self.k = k


class AlphabetError(ReproError, ValueError):
    """A string contains symbols outside the alphabet an encoder expects."""


class DatasetFormatError(ReproError, ValueError):
    """A dataset or query file violates the competition file format."""

    def __init__(self, message: str, *, path: str | None = None,
                 line_number: int | None = None) -> None:
        location = ""
        if path is not None:
            location = f" in {path}"
            if line_number is not None:
                location += f" at line {line_number}"
        super().__init__(message + location)
        self.path = path
        self.line_number = line_number


class WorkloadError(ReproError, ValueError):
    """A workload was built or sliced with impossible parameters.

    Derives from :class:`ValueError` too, so callers that predate the
    hierarchy keep working.
    """


class VerificationError(ReproError):
    """An optimized approach returned results that differ from the reference.

    The paper's methodology (section 3.1) rejects any approach whose result
    set is not identical to the base implementation; this error carries the
    symmetric difference so the failure is diagnosable.
    """

    def __init__(self, message: str, *, missing: frozenset[str] = frozenset(),
                 spurious: frozenset[str] = frozenset()) -> None:
        super().__init__(message)
        self.missing = missing
        self.spurious = spurious


class IndexConstructionError(ReproError):
    """An index could not be built from the supplied dataset."""


class ParallelismError(ReproError):
    """An execution strategy was configured or driven inconsistently."""


class ExperimentError(ReproError):
    """A benchmark experiment was configured with impossible parameters."""
