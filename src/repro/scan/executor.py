"""Batch query execution over a compiled corpus.

Where :class:`repro.core.sequential.SequentialScanSearcher` treats every
``search()`` call as an isolated event, :class:`BatchScanExecutor`
treats the *workload* as the unit of work and amortizes aggressively:

* identical queries are deduplicated — each distinct ``(query, k)``
  pair is scanned once per batch, however often it repeats;
* the Myers ``peq`` table and the query's frequency vector are built
  once per distinct query and reused across every length bucket in the
  ``[len(q) - k, len(q) + k]`` window;
* finished rows live in a bounded :class:`repro.scan.cache.LRUCache`,
  so repeats *across* batches are lookups too;
* distinct queries fan out over any :mod:`repro.parallel` runner, and a
  single expensive query fans its bucket window out instead — the
  compiled corpus is built once in the parent and chunk-scanned in
  workers.

Results are byte-identical to the reference scan by construction (the
kernel is the same Myers recurrence; the filters are the same sound
bounds), and :func:`repro.core.verification.verify_against_reference`
checks exactly that.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from time import perf_counter, time
from typing import Sequence

from repro.core.deadline import Budget, Deadline
from repro.core.result import Match, ResultSet
from repro.core.searcher import QueryRunner
from repro.distance.banded import check_threshold
from repro.distance.bitparallel import build_peq
from repro.distance.vectorized import (
    DEFAULT_VECTOR_MIN_BUCKET,
    bucket_distances,
    prepare_query,
)
from repro.exceptions import DeadlineExceeded, ReproError
from repro.obs.hist import Histogram
from repro.obs.recorder import QueryExemplar
from repro.obs.tracing import (
    adopt_spans,
    emit_span,
    ship_context,
    worker_span,
)
from repro.scan.cache import LRUCache
from repro.scan.corpus import CompiledCorpus

#: Default capacity of the per-executor result memo.
DEFAULT_CACHE_SIZE = 1024

#: Kernel choices ``scan_query`` (and the executors above it) accept.
SCAN_KERNELS = ("auto", "scalar", "vectorized")

#: How many bucket chunks a single-query fan-out produces per worker
#: hint when the runner does not advertise a worker count.
DEFAULT_BUCKET_CHUNKS = 4

#: Histogram names the executor records per executed query scan.
SCAN_HISTOGRAMS = (
    "scan.query_seconds",
    "scan.candidates_per_query",
    "scan.kernel_calls_per_query",
)


def _resolve_artifact(obj):
    """Materialize a :class:`repro.speed.SegmentRef`, pass others through.

    Duck-typed on ``resolve()`` so worker processes only import
    :mod:`repro.speed` when a ref actually arrives.
    """
    resolve = getattr(obj, "resolve", None)
    return resolve() if resolve is not None else obj


def _pool_payload(artifact, runner, what: str):
    """The value a task should carry for ``runner`` — artifact or ref.

    Thread runners share memory, so they always get the artifact
    itself. Process pools get a :class:`repro.speed.SegmentRef` when
    the artifact is segment-backed (workers mmap the file: ~1x resident
    memory however many workers run); otherwise the artifact is
    pickled, which is deprecated — each worker then holds a private
    copy.
    """
    if getattr(runner, "processes", None) is None:
        return artifact
    path = getattr(artifact, "segment_path", None)
    if path is not None:
        from repro.speed import SegmentRef

        return SegmentRef(path)
    warnings.warn(
        f"pickling a {what} to process-pool workers is deprecated and "
        f"will be removed in 2.0; save it with "
        f"repro.speed.save_segment and search the "
        f"repro.speed.load_segment result so workers mmap the segment "
        f"instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return artifact


def _flush_scan_counters(counters: dict, *, buckets: int, candidates: int,
                         freq_rejects: int, early_aborts: int,
                         matches: int) -> None:
    """Add one scan's work to an open ``scan.*`` counter mapping."""
    get = counters.get
    counters["scan.buckets_scanned"] = get("scan.buckets_scanned", 0) \
        + buckets
    counters["scan.candidates"] = get("scan.candidates", 0) + candidates
    counters["scan.freq_rejects"] = get("scan.freq_rejects", 0) \
        + freq_rejects
    counters["scan.kernel_calls"] = get("scan.kernel_calls", 0) \
        + (candidates - freq_rejects)
    counters["scan.early_aborts"] = get("scan.early_aborts", 0) \
        + early_aborts
    counters["scan.matches"] = get("scan.matches", 0) + matches


def scan_query(corpus: CompiledCorpus, query: str, k: int, *,
               lo: int | None = None, hi: int | None = None,
               use_frequency: bool = True,
               counters: dict | None = None,
               deadline: Deadline | Budget | None = None,
               kernel: str = "auto") -> list[Match]:
    """Scan one query against (a bucket slice of) a compiled corpus.

    The hot loop is the same inlined Myers recurrence as the
    ``bitparallel`` kernel of the sequential searcher, but every
    query-side cost is hoisted: the ``peq`` table is built once from the
    *encoded* query, the length filter is the bucket window itself, and
    the per-candidate frequency bound reads precomputed vectors.

    ``lo``/``hi`` restrict the scan to ``corpus.buckets[lo:hi]`` (they
    are intersected with the query's length window), which is how a
    single query is chunked across workers.

    ``counters`` accepts an open ``scan.*`` counter mapping to add this
    scan's work profile to (buckets/candidates scanned, frequency
    rejects, kernel calls, early aborts, matches). The hot loop only
    maintains local integers; the mapping is touched once at the end.

    ``deadline`` bounds the scan: polled every
    ``deadline.check_interval`` candidates, and on expiry the function
    raises :class:`DeadlineExceeded` carrying the matches proven so far
    (a subset of the exact answer). ``deadline=None`` keeps the hot
    loop byte-identical in behavior to the pre-deadline code.

    ``kernel`` selects the per-bucket distance engine: ``"scalar"``
    (the inlined big-int Myers loop), ``"vectorized"`` (the ``numpy``
    bucket kernel of :mod:`repro.distance.vectorized`), or ``"auto"``
    (default). Auto on a packed bucket always runs the frequency
    prefilter vectorized (a win at any size), then picks the distance
    kernel by how many candidates *survived*: vectorized for at least
    :data:`repro.distance.vectorized.DEFAULT_VECTOR_MIN_BUCKET`
    survivors — where amortizing the interpreter per column pays —
    and the scalar loop below that, where numpy dispatch overhead
    would dominate. Match sets, distances and ``scan.*`` counters are
    identical whichever kernel runs; with a deadline the vectorized
    kernel polls between column blocks instead of between candidates.
    """
    check_threshold(k)
    if kernel not in SCAN_KERNELS:
        raise ReproError(
            f"unknown scan kernel {kernel!r}; expected one of "
            f"{SCAN_KERNELS}"
        )
    window_lo, window_hi = corpus.window(len(query), k)
    if lo is not None:
        window_lo = max(window_lo, lo)
    if hi is not None:
        window_hi = min(window_hi, hi)
    if window_lo >= window_hi:
        if counters is not None:
            _flush_scan_counters(counters, buckets=0, candidates=0,
                                 freq_rejects=0, early_aborts=0, matches=0)
        return []
    buckets = corpus.buckets[window_lo:window_hi]

    encoded = corpus.encode_query(query)
    n = len(encoded)
    matches: list[Match] = []
    candidates = 0
    freq_rejects = 0
    early_aborts = 0

    check_interval = deadline.check_interval if deadline is not None else 0
    countdown = check_interval

    if n == 0:
        # Every bucket in the window has length <= k; the distance to an
        # empty query is the candidate's length.
        for bucket in buckets:
            if check_interval and deadline.spend(len(bucket.strings)):
                matches.sort()
                raise DeadlineExceeded(
                    f"compiled scan for {query!r} (k={k}) exceeded its "
                    f"deadline after {candidates} candidates",
                    partial=tuple(matches), scope="candidates",
                    completed=candidates,
                )
            distance = bucket.length
            candidates += len(bucket.strings)
            matches.extend(Match(s, distance) for s in bucket.strings)
        matches.sort()
        if counters is not None:
            _flush_scan_counters(counters, buckets=len(buckets),
                                 candidates=candidates, freq_rejects=0,
                                 early_aborts=0, matches=len(matches))
        return matches

    peq_get = build_peq(encoded).get
    mask = (1 << n) - 1
    last = 1 << (n - 1)

    tracked_width = len(corpus.tracked)
    check_frequency = use_frequency and tracked_width > 0
    query_vector = corpus.query_frequencies(query) if check_frequency else ()

    vector_query = None  # built lazily, shared by every vectorized bucket

    for bucket in buckets:
        length = bucket.length
        strings = bucket.strings
        frequencies = bucket.frequencies
        candidates += len(strings)

        if kernel == "vectorized" or (
                kernel == "auto" and bucket.packed is not None):
            import numpy as np

            rows = bucket.packed.codes if bucket.packed is not None \
                else np.asarray(bucket.encoded, dtype=np.uint16).reshape(
                    len(strings), length)
            kept = None
            if check_frequency:
                freq = np.asarray(frequencies, dtype=np.int64).reshape(
                    len(strings), tracked_width)
                diff = np.asarray(query_vector, dtype=np.int64) - freq
                positive = diff > 0
                surplus = np.where(positive, diff, 0).sum(axis=1)
                deficit = np.where(positive, 0, -diff).sum(axis=1)
                kept = np.nonzero((surplus <= k) & (deficit <= k))[0]
                rejected = len(strings) - len(kept)
                if rejected:
                    freq_rejects += int(rejected)
                    rows = rows[kept]
                else:
                    kept = None
            try:
                # Charge the freq-rejected candidates too (the scalar
                # loop spends one unit per candidate either way); the
                # kernel then charges its own rows between blocks.
                if deadline is not None and len(rows) < len(strings) \
                        and deadline.spend(len(strings) - len(rows)):
                    raise DeadlineExceeded(
                        f"compiled scan for {query!r} (k={k}) exceeded "
                        f"its deadline between buckets",
                        scope="candidates",
                    )
                if kernel == "auto" and \
                        len(rows) < DEFAULT_VECTOR_MIN_BUCKET:
                    # Too few survivors for the per-column numpy
                    # overhead to pay off: run the scalar kernel over
                    # just the kept rows (the prefilter above already
                    # ran vectorized, which wins at any bucket size).
                    if deadline is not None and len(rows) \
                            and deadline.spend(len(rows)):
                        raise DeadlineExceeded(
                            f"compiled scan for {query!r} (k={k}) "
                            f"exceeded its deadline between buckets",
                            scope="candidates",
                        )
                    for position in range(len(rows)):
                        pv = mask
                        mv = 0
                        score = n
                        remaining = length
                        for code in rows[position]:
                            eq = peq_get(code, 0)
                            xv = eq | mv
                            xh = (((eq & pv) + pv) ^ pv) | eq
                            ph = mv | (~(xh | pv) & mask)
                            mh = pv & xh
                            if ph & last:
                                score += 1
                            elif mh & last:
                                score -= 1
                            remaining -= 1
                            if score - remaining > k:
                                score = k + 1
                                early_aborts += 1
                                break
                            ph = ((ph << 1) | 1) & mask
                            mh = (mh << 1) & mask
                            pv = mh | (~(xv | ph) & mask)
                            mv = ph & xv
                        if score <= k:
                            sid = (position if kept is None
                                   else int(kept[position]))
                            matches.append(Match(strings[sid], score))
                    continue
                if vector_query is None:
                    vector_query = prepare_query(
                        encoded, corpus.alphabet.size)
                scores = bucket_distances(vector_query, rows, k,
                                          deadline=deadline)
            except DeadlineExceeded as error:
                matches.sort()
                if counters is not None:
                    _flush_scan_counters(
                        counters, buckets=len(buckets),
                        candidates=candidates,
                        freq_rejects=freq_rejects,
                        early_aborts=early_aborts,
                        matches=len(matches))
                raise DeadlineExceeded(
                    f"compiled scan for {query!r} (k={k}) exceeded its "
                    f"deadline mid-bucket (vectorized)",
                    partial=tuple(matches), scope="candidates",
                    completed=candidates - len(strings),
                    total=sum(len(b.strings) for b in buckets),
                ) from error
            hits = np.nonzero(scores <= k)[0]
            # Scalar-loop invariant: every non-match trips the abort
            # check (at the last column ``remaining`` is 0), so
            # early_aborts == kernel_calls - matches exactly.
            early_aborts += int(len(scores) - len(hits))
            if kept is None:
                matches.extend(
                    Match(strings[int(i)], int(scores[i])) for i in hits)
            else:
                matches.extend(
                    Match(strings[int(kept[i])], int(scores[i]))
                    for i in hits)
            continue

        for index, codes in enumerate(bucket.code_rows()):
            if countdown:
                countdown -= 1
                if not countdown:
                    countdown = check_interval
                    if deadline.spend(check_interval):
                        matches.sort()
                        if counters is not None:
                            _flush_scan_counters(
                                counters, buckets=len(buckets),
                                candidates=candidates,
                                freq_rejects=freq_rejects,
                                early_aborts=early_aborts,
                                matches=len(matches))
                        raise DeadlineExceeded(
                            f"compiled scan for {query!r} (k={k}) "
                            "exceeded its deadline mid-bucket",
                            partial=tuple(matches), scope="candidates",
                            completed=candidates - len(strings) + index,
                            total=sum(len(b.strings) for b in buckets),
                        )
            if check_frequency:
                # Inlined frequency_lower_bound: the larger of total
                # surplus and total deficit bounds the edit distance.
                surplus = 0
                deficit = 0
                candidate_vector = frequencies[index]
                for position in range(tracked_width):
                    difference = (query_vector[position]
                                  - candidate_vector[position])
                    if difference > 0:
                        surplus += difference
                    else:
                        deficit -= difference
                if surplus > k or deficit > k:
                    freq_rejects += 1
                    continue
            pv = mask
            mv = 0
            score = n
            remaining = length
            for code in codes:
                eq = peq_get(code, 0)
                xv = eq | mv
                xh = (((eq & pv) + pv) ^ pv) | eq
                ph = mv | (~(xh | pv) & mask)
                mh = pv & xh
                if ph & last:
                    score += 1
                elif mh & last:
                    score -= 1
                remaining -= 1
                if score - remaining > k:
                    score = k + 1
                    early_aborts += 1
                    break
                ph = ((ph << 1) | 1) & mask
                mh = (mh << 1) & mask
                pv = mh | (~(xv | ph) & mask)
                mv = ph & xv
            if score <= k:
                matches.append(Match(strings[index], score))

    matches.sort()
    if counters is not None:
        _flush_scan_counters(counters, buckets=len(buckets),
                             candidates=candidates,
                             freq_rejects=freq_rejects,
                             early_aborts=early_aborts,
                             matches=len(matches))
    return matches


@dataclass(frozen=True)
class _QueryTask:
    """Picklable per-query work unit for runner fan-out.

    With ``collect`` set, each call returns
    ``(row, counters, timers, seconds, spans)`` instead of the bare row
    — counters *and* timer observations cross process boundaries as
    plain dicts and merge back in the parent, so process-pool runs
    report the same work profile serial runs do. ``timers`` maps
    timer name to ``(seconds, calls)``. ``spans`` is the worker-side
    trace-span dicts recorded under the shipped ``trace`` context
    (empty when no sampled trace shipped), rejoined in the parent
    with :func:`repro.obs.tracing.adopt_spans`.
    """

    corpus: CompiledCorpus
    k: int
    use_frequency: bool
    collect: bool = False
    kernel: str = "auto"
    trace: dict | None = None

    def __call__(self, query: str):
        corpus = _resolve_artifact(self.corpus)
        if not self.collect:
            return tuple(scan_query(corpus, query, self.k,
                                    use_frequency=self.use_frequency,
                                    kernel=self.kernel))
        counters: dict = {}
        wall = time()
        started = perf_counter()
        row = tuple(scan_query(corpus, query, self.k,
                               use_frequency=self.use_frequency,
                               counters=counters, kernel=self.kernel))
        seconds = perf_counter() - started
        spans = worker_span("scan.query", self.trace, wall, seconds,
                            tags={"query": query})
        return row, counters, {"scan.query": (seconds, 1)}, seconds, \
            spans


@dataclass(frozen=True)
class _BucketChunkTask:
    """Picklable bucket-slice work unit for single-query fan-out.

    ``collect`` and ``trace`` behave as on :class:`_QueryTask`.
    """

    corpus: CompiledCorpus
    query: str
    k: int
    use_frequency: bool
    collect: bool = False
    kernel: str = "auto"
    trace: dict | None = None

    def __call__(self, chunk: tuple[int, int]):
        lo, hi = chunk
        corpus = _resolve_artifact(self.corpus)
        if not self.collect:
            return tuple(scan_query(corpus, self.query, self.k,
                                    lo=lo, hi=hi,
                                    use_frequency=self.use_frequency,
                                    kernel=self.kernel))
        counters: dict = {}
        wall = time()
        started = perf_counter()
        row = tuple(scan_query(corpus, self.query, self.k,
                               lo=lo, hi=hi,
                               use_frequency=self.use_frequency,
                               counters=counters, kernel=self.kernel))
        seconds = perf_counter() - started
        spans = worker_span("scan.chunk", self.trace, wall, seconds,
                            tags={"lo": str(lo), "hi": str(hi)})
        return row, counters, {"scan.chunk": (seconds, 1)}, seconds, \
            spans


@dataclass
class BatchStats:
    """Counters describing how much work a batch actually executed."""

    queries_seen: int = 0
    unique_queries: int = 0
    cache_hits: int = 0
    scans_executed: int = 0

    @property
    def deduplicated(self) -> int:
        """Queries answered by batch-level deduplication."""
        return self.queries_seen - self.unique_queries


class BatchScanExecutor:
    """Answer whole workloads against one :class:`CompiledCorpus`.

    Parameters
    ----------
    corpus:
        The compiled data side (built once, shared by every call).
    runner:
        Optional default :class:`repro.core.searcher.QueryRunner` used
        by :meth:`search_many` (overridable per call).
    cache_size:
        Capacity of the ``(query, k)`` result memo; ``0`` disables it.
    use_frequency:
        Apply the precomputed frequency-vector lower bound before the
        kernel (sound, so results never change).
    kernel:
        Distance-kernel selection forwarded to every
        :func:`scan_query` call — ``"auto"`` (default), ``"scalar"``
        or ``"vectorized"``; see :func:`scan_query`.

    Examples
    --------
    >>> executor = BatchScanExecutor(CompiledCorpus(["Bern", "Bonn", "Ulm"]))
    >>> [m.string for m in executor.search("Bern", 2)]
    ['Bern', 'Bonn']
    >>> results = executor.search_many(["Bern", "Bern", "Ulm"], 1)
    >>> results.total_matches
    3
    >>> executor.stats.deduplicated
    1
    """

    def __init__(self, corpus: CompiledCorpus, *,
                 runner: QueryRunner | None = None,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 use_frequency: bool = True,
                 kernel: str = "auto") -> None:
        if cache_size < 0:
            raise ReproError(
                f"cache_size must be non-negative, got {cache_size}"
            )
        if kernel not in SCAN_KERNELS:
            raise ReproError(
                f"unknown scan kernel {kernel!r}; expected one of "
                f"{SCAN_KERNELS}"
            )
        self._corpus = corpus
        self._runner = runner
        self._kernel = kernel
        self._cache: LRUCache[tuple[str, int], tuple[Match, ...]] | None = (
            LRUCache(cache_size) if cache_size else None
        )
        self._use_frequency = use_frequency
        self.stats = BatchStats()
        # Cumulative scan.* work counters, merged back from every task
        # (including ones executed in worker processes).
        self._counters: dict[str, int] = {}
        self._hists = {name: Histogram() for name in SCAN_HISTOGRAMS}
        self._counters_lock = threading.Lock()
        self._metrics = None
        self._recorder = None

    def attach_metrics(self, registry) -> None:
        """Attach a :class:`repro.obs.MetricsRegistry` (or ``None``).

        With a registry attached, the executor mirrors its ``scan.*``
        work counters into it and records ``scan.query`` /
        ``scan.chunk`` timer observations per executed scan.
        """
        self._metrics = registry

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``scan.*`` work counters since construction.

        Monotonic and thread-safe; includes work done in worker
        processes (tasks ship their counters back with their rows).
        """
        with self._counters_lock:
            return dict(self._counters)

    def hists_snapshot(self) -> dict[str, Histogram]:
        """Cumulative per-query histograms since construction.

        Includes scans executed in worker processes (workers ship
        their per-query seconds and counters back; the parent records
        them here), so pooled runs distribute like serial runs —
        modulo worker wall-clocks for the latency series.
        """
        with self._counters_lock:
            return {name: hist.copy()
                    for name, hist in self._hists.items()}

    def attach_recorder(self, recorder) -> None:
        """Attach a :class:`repro.obs.FlightRecorder` (or ``None``)."""
        self._recorder = recorder

    def _merge_counters(self, counters: dict, seconds: float,
                        timer: str = "scan.query", *,
                        started: float | None = None,
                        timers: dict | None = None) -> None:
        """Fold one executed scan's profile into the cumulative state.

        ``timer`` names the observation; per-query histograms are only
        recorded for whole-query scans (``scan.query``), never chunk
        fragments, so chunked fan-out cannot skew the distribution.
        ``started`` (serial scans only — worker clocks don't compare)
        turns the observation into a real span for trace export;
        ``timers`` is a worker-shipped ``{name: (seconds, calls)}``
        mapping merged verbatim instead.
        """
        with self._counters_lock:
            own = self._counters
            for name, value in counters.items():
                own[name] = own.get(name, 0) + value
            if timer == "scan.query":
                hists = self._hists
                hists["scan.query_seconds"].record(seconds)
                hists["scan.candidates_per_query"].record(
                    counters.get("scan.candidates", 0))
                hists["scan.kernel_calls_per_query"].record(
                    counters.get("scan.kernel_calls", 0))
        metrics = self._metrics
        if metrics is not None:
            metrics.merge_counts(counters)
            if timers:
                metrics.merge_timers(timers)
            elif started is not None:
                metrics.record_span(timer, started, seconds)
            else:
                metrics.observe(timer, seconds)

    def _record_query_hists(self, seconds: float, candidates: int,
                            kernel_calls: int) -> None:
        """Record one whole query's histogram entries directly.

        Used by the chunked single-query path, whose ``_merge_counters``
        calls are per-chunk and therefore skip the histograms.
        """
        with self._counters_lock:
            hists = self._hists
            hists["scan.query_seconds"].record(seconds)
            hists["scan.candidates_per_query"].record(candidates)
            hists["scan.kernel_calls_per_query"].record(kernel_calls)

    def _offer_exemplar(self, query: str, k: int, seconds: float,
                        matches: int, counters: dict,
                        stages: dict | None = None) -> None:
        """Offer a completed query to the flight recorder, if any."""
        recorder = self._recorder
        if recorder is not None and recorder.interested(seconds):
            recorder.record(QueryExemplar(
                query=query, k=k, backend="compiled-scan",
                seconds=seconds, matches=matches,
                stages=stages or {"scan.query": seconds},
                counters=dict(counters),
            ))

    @property
    def corpus(self) -> CompiledCorpus:
        """The compiled data side."""
        return self._corpus

    @property
    def kernel(self) -> str:
        """The configured kernel selection (``"auto"`` by default)."""
        return self._kernel

    @property
    def cache(self) -> LRUCache | None:
        """The result memo (``None`` when disabled)."""
        return self._cache

    def search(self, query: str, k: int, *,
               deadline: Deadline | Budget | None = None) -> list[Match]:
        """One query's matches (memoized like any batch member).

        With a ``deadline`` set, an expiring scan raises
        :class:`DeadlineExceeded` carrying the matches proven so far;
        partial rows are never stored in the memo.
        """
        check_threshold(k)
        row = self._cached_row(query, k)
        if row is None:
            counters: dict = {}
            started = perf_counter()
            try:
                row = tuple(scan_query(self._corpus, query, k,
                                       use_frequency=self._use_frequency,
                                       counters=counters,
                                       deadline=deadline,
                                       kernel=self._kernel))
            except DeadlineExceeded:
                self._merge_counters(counters, perf_counter() - started,
                                     started=started)
                raise
            seconds = perf_counter() - started
            self._merge_counters(counters, seconds, started=started)
            self._offer_exemplar(query, k, seconds, len(row), counters)
            emit_span("scan.query", seconds, {"query": query})
            self.stats.scans_executed += 1
            self._store_row(query, k, row)
        else:
            self.stats.cache_hits += 1
        self.stats.queries_seen += 1
        self.stats.unique_queries += 1
        return list(row)

    def search_many(self, queries: Sequence[str], k: int, *,
                    runner: QueryRunner | None = None,
                    deadline: Deadline | Budget | None = None
                    ) -> ResultSet:
        """Answer a whole batch, amortizing per-query work.

        Returns a :class:`ResultSet` with one row per input query, in
        input order — duplicate queries share one scan but still get
        their own (identical) rows, so the result is directly
        comparable to any per-query searcher's.

        With a ``deadline`` set, distinct queries are executed serially
        (so the abort point is well-defined) and an expiry raises
        :class:`DeadlineExceeded` whose ``partial`` is a mapping of the
        *completed* queries to their full rows.
        """
        check_threshold(k)
        queries = list(queries)
        runner = runner if runner is not None else self._runner

        order: dict[str, None] = dict.fromkeys(queries)
        resolved: dict[str, tuple[Match, ...]] = {}
        misses: list[str] = []
        for query in order:
            row = self._cached_row(query, k)
            if row is None:
                misses.append(query)
            else:
                resolved[query] = row
                self.stats.cache_hits += 1

        if misses:
            if deadline is not None:
                self._execute_bounded(misses, k, deadline, resolved,
                                      total=len(order))
            else:
                rows = self._execute(misses, k, runner)
                for query, row in zip(misses, rows):
                    resolved[query] = row
                    self._store_row(query, k, row)
                self.stats.scans_executed += len(misses)

        self.stats.queries_seen += len(queries)
        self.stats.unique_queries += len(order)
        return ResultSet(queries, [resolved[query] for query in queries])

    def _execute_bounded(self, misses: list[str], k: int,
                         deadline: Deadline | Budget,
                         resolved: dict[str, tuple[Match, ...]],
                         total: int) -> None:
        """Serial deadline-bounded execution, filling ``resolved``.

        On expiry re-raises with the batch-level partial: every
        *completed* query's full row (cache hits included).
        """
        for query in misses:
            counters: dict = {}
            started = perf_counter()
            try:
                row = tuple(scan_query(self._corpus, query, k,
                                       use_frequency=self._use_frequency,
                                       counters=counters,
                                       deadline=deadline,
                                       kernel=self._kernel))
            except DeadlineExceeded as error:
                self._merge_counters(counters, perf_counter() - started,
                                     started=started)
                raise DeadlineExceeded(
                    f"batch scan exceeded its deadline with "
                    f"{len(resolved)} of {total} distinct queries "
                    f"complete (in-flight: {error})",
                    partial=dict(resolved), scope="queries",
                    completed=len(resolved), total=total,
                ) from error
            seconds = perf_counter() - started
            self._merge_counters(counters, seconds, started=started)
            self._offer_exemplar(query, k, seconds, len(row), counters)
            emit_span("scan.query", seconds, {"query": query})
            self.stats.scans_executed += 1
            resolved[query] = row
            self._store_row(query, k, row)

    def run_workload(self, workload, runner: QueryRunner | None = None
                     ) -> ResultSet:
        """Workload adapter mirroring :meth:`Searcher.run_workload`."""
        return self.search_many(list(workload.queries), workload.k,
                                runner=runner)

    # ------------------------------------------------------------------

    def _cached_row(self, query: str, k: int) -> tuple[Match, ...] | None:
        if self._cache is None:
            return None
        return self._cache.get((query, k))

    def _store_row(self, query: str, k: int,
                   row: tuple[Match, ...]) -> None:
        if self._cache is not None:
            self._cache.put((query, k), row)

    def _execute(self, misses: list[str], k: int,
                 runner: QueryRunner | None) -> list[tuple[Match, ...]]:
        if runner is None:
            task = _QueryTask(self._corpus, k, self._use_frequency,
                              collect=True, kernel=self._kernel,
                              trace=ship_context())
            outcomes = [task(query) for query in misses]
        else:
            if len(misses) == 1:
                return [self._scan_chunked(misses[0], k, runner)]
            task = _QueryTask(
                _pool_payload(self._corpus, runner, "compiled corpus"),
                k, self._use_frequency, collect=True, kernel=self._kernel,
                trace=ship_context())
            outcomes = runner.run(task, misses)
        rows: list[tuple[Match, ...]] = []
        for query, (row, counters, timers, seconds, spans) in zip(
                misses, outcomes):
            self._merge_counters(counters, seconds, timers=timers)
            self._offer_exemplar(query, k, seconds, len(row), counters)
            adopt_spans(spans)
            rows.append(row)
        return rows

    def _scan_chunked(self, query: str, k: int,
                      runner: QueryRunner) -> tuple[Match, ...]:
        """Fan one query's bucket window out across the runner."""
        lo, hi = self._corpus.window(len(query), k)
        workers = (getattr(runner, "threads", None)
                   or getattr(runner, "processes", None)
                   or DEFAULT_BUCKET_CHUNKS)
        chunk_count = max(1, min(workers, hi - lo))
        if chunk_count == 1:
            counters: dict = {}
            started = perf_counter()
            row = tuple(scan_query(self._corpus, query, k,
                                   use_frequency=self._use_frequency,
                                   counters=counters,
                                   kernel=self._kernel))
            seconds = perf_counter() - started
            self._merge_counters(counters, seconds, started=started)
            self._offer_exemplar(query, k, seconds, len(row), counters)
            return row
        bounds = [
            lo + (hi - lo) * step // chunk_count
            for step in range(chunk_count + 1)
        ]
        chunks = [
            (bounds[step], bounds[step + 1]) for step in range(chunk_count)
        ]
        task = _BucketChunkTask(
            _pool_payload(self._corpus, runner, "compiled corpus"),
            query, k, self._use_frequency, collect=True,
            kernel=self._kernel, trace=ship_context())
        merged: list[Match] = []
        totals: dict = {}
        stages: dict[str, float] = {}
        started = perf_counter()
        for index, (part, counters, timers, seconds, spans) in enumerate(
                runner.run(task, chunks)):
            self._merge_counters(counters, seconds, timer="scan.chunk",
                                 timers=timers)
            adopt_spans(spans)
            for name, value in counters.items():
                totals[name] = totals.get(name, 0) + value
            stages[f"scan.chunk[{index}]"] = seconds
            merged.extend(part)
        merged.sort()
        # The chunk merges above skip the per-query histograms (their
        # unit is a fragment); record the whole query once here. Wall
        # clock is the parent-observed window, work is the chunk sum.
        wall = perf_counter() - started
        self._record_query_hists(wall,
                                 totals.get("scan.candidates", 0),
                                 totals.get("scan.kernel_calls", 0))
        self._offer_exemplar(query, k, wall, len(merged), totals,
                             stages=stages)
        return tuple(merged)
