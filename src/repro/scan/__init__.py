"""Compiled-corpus batch execution (the amortization layer).

The paper's sequential scan wins by driving *per-candidate* work to the
floor; this package drives *per-query* and *per-workload* work to the
floor as well. The competition workloads run hundreds of queries against
one immutable dataset, so everything that depends only on the data side
— symbol encoding, length bucketing, frequency vectors — is computed
exactly once in :class:`CompiledCorpus`, and everything that depends
only on the query side — the Myers ``peq`` table, the length window,
the query's frequency vector — is computed exactly once per *distinct*
query by :class:`BatchScanExecutor` and shared across every bucket it
probes.

Layers
------
:class:`CompiledCorpus`
    The data side, preprocessed once: interned strings, dense symbol
    codes over an :class:`repro.data.alphabet.Alphabet`, length buckets
    with sorted offsets (equation 5's length filter becomes one binary
    search instead of a per-candidate branch), and per-string frequency
    vectors for the PETER-style prefilter.
:class:`BatchScanExecutor`
    The query side, amortized: deduplicates identical queries, memoizes
    recent results in a bounded :class:`LRUCache`, and fans work out
    across any :mod:`repro.parallel` runner.
:class:`CompiledScanSearcher`
    The :class:`repro.core.searcher.Searcher` adapter, so the compiled
    path plugs into :class:`repro.core.engine.SearchEngine`, workload
    execution and result verification unchanged.
"""

from repro.scan.cache import LRUCache
from repro.scan.corpus import CompiledCorpus, LengthBucket
from repro.scan.executor import BatchScanExecutor, BatchStats, scan_query
from repro.scan.searcher import CompiledScanSearcher

__all__ = [
    "BatchScanExecutor",
    "BatchStats",
    "CompiledCorpus",
    "CompiledScanSearcher",
    "LRUCache",
    "LengthBucket",
    "scan_query",
]
