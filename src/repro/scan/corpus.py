"""The data side of a scan, preprocessed once and shared by every query.

A scan touches the dataset far more often than the dataset changes: the
competition runs 100–1,000 queries against one immutable string set
(paper section 5.2). :class:`CompiledCorpus` therefore pays every
data-side cost exactly once, at compile time:

* **Interning and deduplication** — result sets list distinct strings,
  so duplicates are collapsed up front and each survivor is interned.
* **Dense symbol encoding** — every string becomes a tuple of integer
  codes over a :class:`repro.data.alphabet.Alphabet` (provided or
  inferred), so the hot loop compares small ints instead of characters.
* **Length bucketing with sorted offsets** — strings sharing a length
  live in one :class:`LengthBucket`; buckets are sorted by length, so
  the equation-5 length filter is two binary searches yielding a
  contiguous bucket range instead of a branch per candidate.
* **Frequency vectors** — per-string counts of a tracked symbol set
  (all symbols for tiny alphabets, vowels for large ones — the paper's
  section 6 suggestion), ready for the
  :mod:`repro.filters.frequency` lower bound without re-walking the
  candidate.

The compiled value is immutable and built from plain tuples, so it
pickles cheaply: a :class:`repro.parallel.executor.ProcessPoolRunner`
ships it to workers once per chunk and scans never re-encode anything.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from repro.data.alphabet import Alphabet
from repro.distance.packed import PackedBucket, pack_bucket
from repro.exceptions import ReproError

#: Alphabets at or below this size track every symbol in their
#: frequency vectors (the DNA regime); larger ones track vowels only.
SMALL_TRACKED_CUTOFF = 8

#: Tracked symbols for large alphabets: the paper's vowel suggestion
#: (section 6), both cases — corpus counting is case-sensitive, and the
#: frequency lower bound is sound for any fixed symbol set.
DEFAULT_LARGE_TRACKED = "AEIOUaeiou"

#: The message :meth:`CompiledCorpus.from_dataset` warns with. Tests
#: assert the exact text (mirroring the ``backend=`` -> ``plan=``
#: migration), so user-facing guidance cannot silently rot.
FROM_DATASET_DEPRECATION = (
    "CompiledCorpus.from_dataset is deprecated and will be removed in "
    "2.0; acquire corpora through the unified facade — "
    "repro.live.Corpus.frozen(dataset, ...) — or construct "
    "CompiledCorpus(dataset, ...) directly"
)


@dataclass(frozen=True)
class LengthBucket:
    """All corpus strings of one exact length, encoded and profiled.

    Attributes
    ----------
    length:
        The shared string length (also the bucket's min and max — exact
        bucketing makes the window lookup precise).
    strings:
        The distinct strings, in first-occurrence corpus order.
    encoded:
        Symbol-code tuples parallel to ``strings``.
    frequencies:
        Tracked-symbol count vectors parallel to ``strings``.
    """

    length: int
    strings: tuple[str, ...]
    encoded: tuple[tuple[int, ...], ...]
    frequencies: tuple[tuple[int, ...], ...]
    packed: PackedBucket | None = None

    def __len__(self) -> int:
        return len(self.strings)

    def code_rows(self):
        """Per-string symbol codes, whichever storage mode holds them.

        Encoded mode returns the symbol-code tuples; packed mode
        returns the rows of the contiguous ``numpy`` code matrix. Both
        index and compare identically, so the scalar kernel runs
        unchanged on either.
        """
        return self.encoded if self.packed is None else self.packed.codes


def _count_vector(text: str, tracked: str) -> tuple[int, ...]:
    """Case-sensitive tracked-symbol counts (see module docstring)."""
    return tuple(text.count(symbol) for symbol in tracked)


class CompiledCorpus:
    """An immutable dataset compiled for repeated scanning.

    Parameters
    ----------
    dataset:
        The strings to compile. Duplicates are collapsed; empty strings
        are rejected (as in :class:`repro.core.sequential.SequentialScanSearcher`).
    alphabet:
        Optional :class:`Alphabet` the data must conform to. When
        omitted, a minimal alphabet is inferred from the data itself.
    tracked:
        Symbols counted into per-string frequency vectors. Defaults to
        the whole alphabet when it is tiny (DNA) and to vowels for
        large alphabets.
    packed:
        Store each length bucket as a contiguous
        :class:`repro.distance.packed.PackedBucket` (``numpy`` code
        matrix + bit-packed words) instead of Python tuples — the
        paper's section-6 dictionary compression in bulk. Packed
        storage feeds the vectorized kernel directly, shrinks the
        resident payload (~2.6x for 3-bit DNA, see
        :meth:`storage_profile`) and is what
        :func:`repro.speed.save_segment` serializes. Results are
        identical in either mode.

    Examples
    --------
    >>> corpus = CompiledCorpus(["Bern", "Ulm", "Bonn", "Bern"])
    >>> corpus.size            # duplicates collapsed
    3
    >>> corpus.lengths         # distinct lengths, sorted
    (3, 4)
    >>> [b.length for b in corpus.buckets_in_window(4, 1)]
    [3, 4]
    """

    def __init__(self, dataset: Iterable[str], *,
                 alphabet: Alphabet | None = None,
                 tracked: str | None = None,
                 packed: bool = False) -> None:
        raw = tuple(dataset)
        for index, string in enumerate(raw):
            if not string:
                raise ReproError(
                    f"dataset string at index {index} is empty"
                )
        # Collapse duplicates (result rows are distinct-string sets) and
        # intern the survivors so worker processes share object identity
        # with the literal pool where possible.
        unique = tuple(sys.intern(s) for s in dict.fromkeys(raw))

        if alphabet is None and unique:
            symbols = sorted({symbol for s in unique for symbol in s})
            alphabet = Alphabet("inferred", "".join(symbols))
        self._alphabet = alphabet

        if tracked is None and alphabet is not None:
            if alphabet.size <= SMALL_TRACKED_CUTOFF:
                tracked = alphabet.symbols
            else:
                tracked = DEFAULT_LARGE_TRACKED
        self._tracked = tracked or ""

        self._total_strings = len(raw)
        self._strings = unique
        self._packed = bool(packed)
        self._segment_path: str | None = None

        by_length: dict[int, list[str]] = {}
        for string in unique:
            by_length.setdefault(len(string), []).append(string)
        buckets = []
        for length in sorted(by_length):
            members = tuple(by_length[length])
            encoded = tuple(alphabet.encode(s) for s in members) \
                if alphabet is not None else ()
            counts = tuple(
                _count_vector(s, self._tracked) for s in members
            )
            if self._packed and alphabet is not None:
                # Packed mode drops the per-string Python tuples: the
                # code matrix (kernel-facing) plus the bit-packed words
                # (resident payload) replace ``encoded``, and the
                # frequency vectors collapse into one integer matrix.
                import numpy as np

                bulk = pack_bucket(members, alphabet, encoded=encoded)
                buckets.append(LengthBucket(
                    length=length,
                    strings=members,
                    encoded=(),
                    frequencies=np.array(counts, dtype=np.int64).reshape(
                        len(members), len(self._tracked)),
                    packed=bulk,
                ))
            else:
                buckets.append(LengthBucket(
                    length=length,
                    strings=members,
                    encoded=encoded,
                    frequencies=counts,
                ))
        self._buckets = tuple(buckets)
        self._lengths = tuple(bucket.length for bucket in self._buckets)

    @classmethod
    def from_dataset(cls, dataset: Iterable[str], *,
                     alphabet: Alphabet | None = None,
                     tracked: str | None = None,
                     packed: bool = False) -> "CompiledCorpus":
        """Deprecated alias of the constructor.

        .. deprecated::
            Slated for removal in 2.0. Direct freeze-once construction
            spellings are consolidated under the unified corpus
            facade — use :meth:`repro.live.Corpus.frozen` (which also
            covers segment-backed loading and hands the handle to
            engines, services and shards uniformly), or call
            ``CompiledCorpus(...)`` directly when you need the bare
            compiled artifact. Warns with
            :data:`FROM_DATASET_DEPRECATION`.
        """
        import warnings

        warnings.warn(FROM_DATASET_DEPRECATION, DeprecationWarning,
                      stacklevel=2)
        return cls(dataset, alphabet=alphabet, tracked=tracked,
                   packed=packed)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def strings(self) -> tuple[str, ...]:
        """The distinct strings, in first-occurrence order."""
        return self._strings

    @property
    def size(self) -> int:
        """Number of distinct strings."""
        return len(self._strings)

    @property
    def total_strings(self) -> int:
        """Number of strings supplied (duplicates included)."""
        return self._total_strings

    @property
    def alphabet(self) -> Alphabet | None:
        """The alphabet strings are encoded over (``None`` iff empty)."""
        return self._alphabet

    @property
    def tracked(self) -> str:
        """Symbols counted into frequency vectors."""
        return self._tracked

    @property
    def packed(self) -> bool:
        """Whether buckets use packed (``numpy``) storage."""
        return self._packed

    @property
    def segment_path(self) -> str | None:
        """The segment file backing this corpus, if it was mmap-loaded.

        Set by :func:`repro.speed.load_segment`; the batch executors
        use it to ship a :class:`repro.speed.SegmentRef` to pool
        workers instead of pickling the corpus.
        """
        return self._segment_path

    @property
    def buckets(self) -> tuple[LengthBucket, ...]:
        """The length buckets, sorted by length."""
        return self._buckets

    @property
    def lengths(self) -> tuple[int, ...]:
        """Distinct string lengths, sorted ascending."""
        return self._lengths

    @property
    def min_length(self) -> int:
        """Shortest string length (0 for an empty corpus)."""
        return self._lengths[0] if self._lengths else 0

    @property
    def max_length(self) -> int:
        """Longest string length (0 for an empty corpus)."""
        return self._lengths[-1] if self._lengths else 0

    def __len__(self) -> int:
        return len(self._strings)

    def __iter__(self) -> Iterator[str]:
        return iter(self._strings)

    # ------------------------------------------------------------------
    # Query-side helpers

    def window(self, query_length: int, k: int) -> tuple[int, int]:
        """Bucket index range covering lengths within ``k`` of a query.

        The compiled analog of the paper's equation-5 length filter:
        instead of testing ``|len(c) - len(q)| <= k`` per candidate, two
        binary searches over the sorted bucket lengths select the
        contiguous bucket slice ``buckets[lo:hi]`` that can possibly
        match.
        """
        lo = bisect_left(self._lengths, query_length - k)
        hi = bisect_right(self._lengths, query_length + k)
        return lo, hi

    def buckets_in_window(self, query_length: int,
                          k: int) -> tuple[LengthBucket, ...]:
        """The bucket slice :meth:`window` selects."""
        lo, hi = self.window(query_length, k)
        return self._buckets[lo:hi]

    def candidates_in_window(self, query_length: int, k: int) -> int:
        """How many strings the window admits (the scan's workload)."""
        return sum(
            len(bucket) for bucket in self.buckets_in_window(query_length, k)
        )

    def encode_query(self, query: str) -> tuple[int, ...]:
        """Encode a query over the corpus alphabet, tolerating strangers.

        Query symbols outside the alphabet map to ``-1``: no corpus
        string contains that code, so such positions can never match —
        exactly the raw-string semantics — and the Myers ``peq`` entry
        they produce is simply never looked up.
        """
        if self._alphabet is None:
            return tuple(-1 for _ in query)
        codes = self._alphabet._codes
        return tuple(codes.get(symbol, -1) for symbol in query)

    def query_frequencies(self, query: str) -> tuple[int, ...]:
        """The query's tracked-symbol counts (pairs with bucket vectors)."""
        return _count_vector(query, self._tracked)

    def storage_profile(self) -> dict:
        """Byte accounting of the symbol payload, per storage mode.

        ``byte_code_bytes`` is what one-byte-per-symbol code storage
        costs (two for alphabets wider than 256 symbols);
        ``packed_bytes`` is the bit-packed payload
        (``bits_per_symbol`` bits each, rows padded to whole bytes).
        ``packed_reduction`` is their ratio — ~2.6x for 3-bit DNA, the
        paper's section-6 dictionary-compression estimate.
        """
        symbols = sum(bucket.length * len(bucket) for bucket in self._buckets)
        itemsize = 1
        packed_bytes = 0
        if self._packed:
            for bucket in self._buckets:
                if bucket.packed is not None:
                    itemsize = bucket.packed.codes.dtype.itemsize
                    packed_bytes += bucket.packed.packed_nbytes
        elif self._alphabet is not None and self._alphabet.size > 256:
            itemsize = 2
        byte_code_bytes = symbols * itemsize
        return {
            "mode": "packed" if self._packed else "encoded",
            "strings": self.size,
            "symbols": symbols,
            "byte_code_bytes": byte_code_bytes,
            "packed_bytes": packed_bytes,
            "packed_reduction": (byte_code_bytes / packed_bytes
                                 if packed_bytes else 0.0),
        }

    def describe(self) -> dict:
        """Compile-time facts, for benchmarks and reports."""
        return {
            "strings": self.size,
            "duplicates_collapsed": self._total_strings - self.size,
            "alphabet_size": self._alphabet.size if self._alphabet else 0,
            "buckets": len(self._buckets),
            "min_length": self.min_length,
            "max_length": self.max_length,
            "tracked_symbols": self._tracked,
            "storage": "packed" if self._packed else "encoded",
        }

    def __repr__(self) -> str:
        return (
            f"CompiledCorpus(strings={self.size}, "
            f"buckets={len(self._buckets)}, "
            f"lengths={self.min_length}..{self.max_length})"
        )
