"""A small bounded LRU cache for memoizing query results.

Competition workloads repeat queries (users retype the same misspelled
city; read sets contain duplicated fragments), so a bounded map from
``(query, k)`` to the finished result row turns the second occurrence
into a dictionary lookup. The cache is thread-safe — parallel runners
share one executor — and deliberately tiny: no TTLs, no weak refs, just
ordered eviction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.exceptions import ReproError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded mapping that evicts the least-recently-used entry.

    Parameters
    ----------
    maxsize:
        Maximum number of entries; must be positive. (A disabled cache
        is represented by *not having one*, see
        :class:`repro.scan.executor.BatchScanExecutor`.)

    Examples
    --------
    >>> cache = LRUCache(maxsize=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)          # evicts "b", the least recently used
    >>> cache.get("b") is None
    True
    >>> sorted(cache.keys())
    ['a', 'c']
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ReproError(
                f"LRU cache size must be at least 1, got {maxsize}"
            )
        self._maxsize = maxsize
        self._entries: OrderedDict[K, V] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def maxsize(self) -> int:
        """The configured capacity."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: K) -> V | None:
        """The cached value, refreshed as most recent; ``None`` if absent."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry, evicting the oldest if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)

    def keys(self) -> list[K]:
        """A snapshot of the cached keys, oldest first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __getstate__(self) -> dict:
        # Locks cannot cross process boundaries; workers get a cold,
        # private cache, which is only ever a performance no-op.
        state = self.__dict__.copy()
        del state["_lock"]
        state["_entries"] = OrderedDict()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
