"""The Searcher adapter over the compiled-corpus batch engine.

:class:`CompiledScanSearcher` makes the amortization layer a drop-in
sibling of :class:`repro.core.sequential.SequentialScanSearcher`: same
constructor shape, same :meth:`search`/:meth:`run_workload` contract,
same result sets — verified identical by
:func:`repro.core.verification.verify_against_reference` — so the
engine, the CLI and the benchmark harness can switch a workload onto
the batch path without touching anything downstream.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.result import Match, ResultSet
from repro.core.searcher import QueryRunner, Searcher
from repro.data.alphabet import Alphabet
from repro.data.workload import Workload
from repro.scan.corpus import CompiledCorpus
from repro.scan.executor import DEFAULT_CACHE_SIZE, BatchScanExecutor


class CompiledScanSearcher(Searcher):
    """Sequential scan over a corpus compiled once, batch-amortized.

    Parameters
    ----------
    dataset:
        The strings to search, or an already-built
        :class:`CompiledCorpus` (shared compilation).
    alphabet:
        Optional alphabet for encoding (inferred when omitted).
    runner:
        Default parallel runner for workload execution.
    cache_size:
        Result-memo capacity (``0`` disables memoization).
    use_frequency:
        Apply the precomputed frequency-vector prefilter.
    packed:
        Compile the corpus in packed (``numpy``) storage mode — see
        :class:`CompiledCorpus`. Ignored when ``dataset`` is already a
        compiled corpus.
    kernel:
        Distance-kernel selection (``"auto"``, ``"scalar"`` or
        ``"vectorized"``), forwarded to the executor — see
        :func:`repro.scan.executor.scan_query`.

    Examples
    --------
    >>> searcher = CompiledScanSearcher(["Berlin", "Bern", "Ulm"])
    >>> [match.string for match in searcher.search("Berlino", 2)]
    ['Berlin']
    """

    def __init__(self, dataset: Iterable[str] | CompiledCorpus, *,
                 alphabet: Alphabet | None = None,
                 runner: QueryRunner | None = None,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 use_frequency: bool = True,
                 packed: bool = False,
                 kernel: str = "auto") -> None:
        if isinstance(dataset, CompiledCorpus):
            self._corpus = dataset
        else:
            self._corpus = CompiledCorpus(dataset, alphabet=alphabet,
                                          packed=packed)
        self._executor = BatchScanExecutor(
            self._corpus, runner=runner, cache_size=cache_size,
            use_frequency=use_frequency, kernel=kernel,
        )
        self.name = "compiled-scan"

    @property
    def corpus(self) -> CompiledCorpus:
        """The compiled data side."""
        return self._corpus

    @property
    def executor(self) -> BatchScanExecutor:
        """The batch engine answering queries."""
        return self._executor

    def attach_metrics(self, registry) -> None:
        """Forward a metrics registry to the underlying executor."""
        self._executor.attach_metrics(registry)

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``scan.*`` counters of the underlying executor."""
        return self._executor.counters_snapshot()

    def hists_snapshot(self):
        """Cumulative per-query histograms of the underlying executor."""
        return self._executor.hists_snapshot()

    def attach_recorder(self, recorder) -> None:
        """Forward a flight recorder to the underlying executor."""
        self._executor.attach_recorder(recorder)

    @property
    def dataset(self) -> tuple[str, ...]:
        """The distinct searched strings (compile order)."""
        return self._corpus.strings

    def search(self, query: str, k: int, *, deadline=None) -> list[Match]:
        """All distinct dataset strings within distance ``k``."""
        return self._executor.search(query, k, deadline=deadline)

    def search_many(self, queries, k: int, *,
                    runner: QueryRunner | None = None,
                    deadline=None) -> ResultSet:
        """Batch entry point (see :meth:`BatchScanExecutor.search_many`)."""
        return self._executor.search_many(queries, k, runner=runner,
                                          deadline=deadline)

    def run_workload(self, workload: Workload,
                     runner: QueryRunner | None = None) -> ResultSet:
        """Execute a workload through the batch path.

        Unlike the base implementation this deduplicates queries and
        reuses the memo — rows still come back one per input query, in
        workload order, so result sets stay comparable.
        """
        return self._executor.search_many(
            list(workload.queries), workload.k, runner=runner
        )
