"""Zero-copy mmap segments for compiled artifacts.

Compiling a corpus or a flat trie is the expensive step of every cold
start, and *pickling* one to process-pool workers multiplies its
resident memory by the worker count. A **segment** removes both costs:
the compiled artifact is serialized once into a versioned flat binary
file — a small JSON header describing ``numpy`` arrays, then the raw
array bytes at aligned offsets — and loaded back as ``mmap``-backed
views. Loading is metadata-only (the OS pages array bytes in lazily,
shared across every process that maps the file), so:

* cold start is near-instant — no re-encode, no re-bucket, no trie
  rebuild;
* N pool workers share ~1× corpus memory instead of N× — each worker
  opens the segment (see :class:`SegmentRef`) instead of unpickling a
  private copy.

File format (version :data:`SEGMENT_VERSION`)::

    bytes 0-3    magic  b"RSEG"
    bytes 4-7    format version, uint32 little-endian
    bytes 8-15   header length H, uint64 little-endian
    bytes 16-..  header: H bytes of UTF-8 JSON
                   {"kind": "corpus" | "flat-trie",
                    "meta": {...artifact-specific...},
                    "arrays": [{"name", "dtype", "shape", "offset",
                                "nbytes"}, ...]}
    then         each array's raw little-endian bytes at its
                 64-byte-aligned absolute ``offset``

Strings are stored as one concatenated UTF-8 blob plus an ``int64``
offsets array and decoded **on access** (:class:`LazyStrings`), so a
loaded artifact keeps no per-string Python objects until a match
actually needs one.

The public entry points are :func:`save_segment` / :func:`load_segment`
(dispatching on artifact type), the process-global :data:`segment_cache`
(keyed by absolute path + mtime + size, so a rewritten file is reloaded
automatically) and :class:`SegmentRef`, the picklable pointer the
executors ship to pool workers in place of the artifact itself.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import SegmentError

#: Current segment format version; bumped on any layout change.
SEGMENT_VERSION = 1

#: Leading magic bytes of every segment file.
SEGMENT_MAGIC = b"RSEG"

#: Array payloads start at multiples of this (covers any numpy dtype's
#: alignment and keeps rows cache-line friendly).
SEGMENT_ALIGN = 64

#: Artifact kinds a segment can hold.
SEGMENT_KINDS = ("corpus", "flat-trie")


class LazyStrings(Sequence):
    """A read-only string table decoding from a shared UTF-8 blob.

    ``blob`` is a ``uint8`` array (typically an ``mmap`` view) holding
    every string's UTF-8 bytes back to back; ``offsets`` is an
    ``int64`` array of ``count + 1`` boundaries. Strings materialize
    per access and are not cached — a match decodes its one string, a
    full iteration decodes each exactly once.
    """

    __slots__ = ("_blob", "_offsets")

    def __init__(self, blob: np.ndarray, offsets: np.ndarray) -> None:
        self._blob = blob
        self._offsets = offsets

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self[i] for i in range(*index.indices(len(self))))
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"string index {index} out of range")
        start = int(self._offsets[index])
        end = int(self._offsets[index + 1])
        return self._blob[start:end].tobytes().decode("utf-8")

    def __repr__(self) -> str:
        return f"LazyStrings(count={len(self)})"


class IndexedStrings(Sequence):
    """A bucket's view of a :class:`LazyStrings` table via string ids."""

    __slots__ = ("_base", "_ids")

    def __init__(self, base: LazyStrings, ids: np.ndarray) -> None:
        self._base = base
        self._ids = ids

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self[i] for i in range(*index.indices(len(self))))
        return self._base[int(self._ids[int(index)])]

    def __repr__(self) -> str:
        return f"IndexedStrings(count={len(self)})"


def _string_table(strings) -> tuple[np.ndarray, np.ndarray]:
    """Encode a string sequence into (UTF-8 blob, int64 offsets)."""
    encoded = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        offsets[1:] = np.cumsum([len(b) for b in encoded])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    return blob, offsets


# ----------------------------------------------------------------------
# Writer / reader core
# ----------------------------------------------------------------------


def _write_segment(path: str | os.PathLike, kind: str, meta: dict,
                   arrays: dict[str, np.ndarray]) -> None:
    records = []
    blobs = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        records.append({
            "name": name,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": 0,  # patched below
            "nbytes": int(array.nbytes),
        })
        blobs.append(array)
    header = {"kind": kind, "meta": meta, "arrays": records}

    # The header length shifts offsets, and offsets live in the header;
    # iterate until the layout fixes itself (the second pass converges —
    # offsets only grow with header size, monotonically).
    header_bytes = b""
    for _ in range(8):
        cursor = 16 + len(header_bytes)
        for record in records:
            cursor = (cursor + SEGMENT_ALIGN - 1) // SEGMENT_ALIGN \
                * SEGMENT_ALIGN
            record["offset"] = cursor
            cursor += record["nbytes"]
        candidate = json.dumps(header, separators=(",", ":")).encode("utf-8")
        if len(candidate) == len(header_bytes):
            header_bytes = candidate
            break
        header_bytes = candidate
    else:  # pragma: no cover - layout always converges in two passes
        raise SegmentError("segment header layout did not converge",
                           path=str(path))

    with open(path, "wb") as handle:
        handle.write(SEGMENT_MAGIC)
        handle.write(SEGMENT_VERSION.to_bytes(4, "little"))
        handle.write(len(header_bytes).to_bytes(8, "little"))
        handle.write(header_bytes)
        for record, array in zip(records, blobs):
            handle.seek(record["offset"])
            handle.write(array.tobytes())


def _read_segment(path: str | os.PathLike) -> tuple[dict, dict]:
    """Map a segment file; returns ``(header, arrays)`` with mmap views."""
    try:
        with open(path, "rb") as handle:
            prelude = handle.read(16)
            if len(prelude) < 16:
                raise SegmentError("file too short to be a segment",
                                   path=str(path))
            if prelude[:4] != SEGMENT_MAGIC:
                raise SegmentError(
                    f"bad magic {prelude[:4]!r}; not a segment file",
                    path=str(path))
            version = int.from_bytes(prelude[4:8], "little")
            if version != SEGMENT_VERSION:
                raise SegmentError(
                    f"segment format version {version} is not supported "
                    f"(this build reads version {SEGMENT_VERSION})",
                    path=str(path))
            header_len = int.from_bytes(prelude[8:16], "little")
            header_bytes = handle.read(header_len)
            if len(header_bytes) < header_len:
                raise SegmentError("truncated segment header",
                                   path=str(path))
    except OSError as error:
        raise SegmentError(f"cannot read segment: {error}",
                           path=str(path)) from error
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SegmentError(f"corrupted segment header: {error}",
                           path=str(path)) from error
    if header.get("kind") not in SEGMENT_KINDS:
        raise SegmentError(
            f"unknown segment kind {header.get('kind')!r}; expected one "
            f"of {SEGMENT_KINDS}", path=str(path))

    mapped = np.memmap(path, dtype=np.uint8, mode="r")
    arrays: dict[str, np.ndarray] = {}
    for record in header.get("arrays", ()):
        offset = record["offset"]
        nbytes = record["nbytes"]
        if offset + nbytes > mapped.size:
            raise SegmentError(
                f"array {record['name']!r} extends past end of file",
                path=str(path))
        view = mapped[offset:offset + nbytes].view(record["dtype"])
        arrays[record["name"]] = view.reshape(record["shape"])
    return header, arrays


# ----------------------------------------------------------------------
# CompiledCorpus <-> segment
# ----------------------------------------------------------------------


def _corpus_payload(corpus) -> tuple[dict, dict]:
    from repro.distance.packed import pack_bucket

    alphabet = corpus.alphabet
    strings = tuple(corpus.strings)
    sid = {string: index for index, string in enumerate(strings)}
    blob, offsets = _string_table(strings)

    lengths = []
    counts = []
    row_bytes = []
    codes_parts = []
    packed_parts = []
    freq_parts = []
    sid_parts = []
    for bucket in corpus.buckets:
        bulk = bucket.packed
        if bulk is None:
            bulk = pack_bucket(bucket.strings, alphabet,
                               encoded=bucket.encoded)
        lengths.append(bucket.length)
        counts.append(len(bucket))
        row_bytes.append(bulk.packed.shape[1])
        codes_parts.append(bulk.codes.reshape(-1))
        packed_parts.append(bulk.packed.reshape(-1))
        freq_parts.append(np.asarray(bucket.frequencies, dtype=np.int64)
                          .reshape(-1))
        sid_parts.append(np.array([sid[s] for s in bucket.strings],
                                  dtype=np.int64))

    from repro.distance.packed import code_dtype

    dtype = code_dtype(alphabet) if alphabet is not None \
        else np.dtype(np.uint8)
    meta = {
        "alphabet": None if alphabet is None else {
            "name": alphabet.name, "symbols": alphabet.symbols},
        "tracked": corpus.tracked,
        "total_strings": corpus.total_strings,
        "bucket_lengths": lengths,
        "bucket_counts": counts,
        "bucket_row_bytes": row_bytes,
    }
    arrays = {
        "strings_blob": blob,
        "strings_offsets": offsets,
        "codes": (np.concatenate(codes_parts) if codes_parts
                  else np.zeros(0, dtype=dtype)),
        "packed": (np.concatenate(packed_parts) if packed_parts
                   else np.zeros(0, dtype=np.uint8)),
        "frequencies": (np.concatenate(freq_parts) if freq_parts
                        else np.zeros(0, dtype=np.int64)),
        "sids": (np.concatenate(sid_parts) if sid_parts
                 else np.zeros(0, dtype=np.int64)),
    }
    return meta, arrays


def _corpus_from_segment(header: dict, arrays: dict, path: str):
    from repro.data.alphabet import Alphabet
    from repro.distance.packed import PackedBucket
    from repro.scan.corpus import CompiledCorpus, LengthBucket

    meta = header["meta"]
    alphabet = None
    if meta["alphabet"] is not None:
        alphabet = Alphabet(meta["alphabet"]["name"],
                            meta["alphabet"]["symbols"])
    tracked = meta["tracked"]
    width = len(tracked)
    table = LazyStrings(arrays["strings_blob"], arrays["strings_offsets"])

    buckets = []
    code_cursor = bit_cursor = freq_cursor = sid_cursor = 0
    codes_flat = arrays["codes"]
    packed_flat = arrays["packed"]
    freq_flat = arrays["frequencies"]
    sids_flat = arrays["sids"]
    for length, count, rb in zip(meta["bucket_lengths"],
                                 meta["bucket_counts"],
                                 meta["bucket_row_bytes"]):
        codes = codes_flat[code_cursor:code_cursor + count * length] \
            .reshape(count, length)
        code_cursor += count * length
        packed_rows = packed_flat[bit_cursor:bit_cursor + count * rb] \
            .reshape(count, rb)
        bit_cursor += count * rb
        frequencies = freq_flat[freq_cursor:freq_cursor + count * width] \
            .reshape(count, width)
        freq_cursor += count * width
        sids = sids_flat[sid_cursor:sid_cursor + count]
        sid_cursor += count
        buckets.append(LengthBucket(
            length=length,
            strings=IndexedStrings(table, sids),
            encoded=(),
            frequencies=frequencies,
            packed=PackedBucket(codes, packed_rows, length, alphabet),
        ))

    corpus = CompiledCorpus.__new__(CompiledCorpus)
    corpus._alphabet = alphabet
    corpus._tracked = tracked
    corpus._total_strings = meta["total_strings"]
    corpus._strings = table
    corpus._packed = True
    corpus._buckets = tuple(buckets)
    corpus._lengths = tuple(b.length for b in buckets)
    corpus._segment_path = os.path.abspath(path)
    return corpus


# ----------------------------------------------------------------------
# FlatTrie <-> segment
# ----------------------------------------------------------------------

_TRIE_INT_FIELDS = (
    "label_offsets", "label_codes", "child_offsets", "child_ids",
    "child_first", "sub_min", "sub_max", "terminal_count", "terminal_sid",
)


def _trie_payload(flat) -> tuple[dict, dict]:
    alphabet = flat.alphabet
    blob, offsets = _string_table(flat.strings)
    meta = {
        "alphabet": None if alphabet is None else {
            "name": alphabet.name, "symbols": alphabet.symbols},
        "tracked": flat.tracked_symbols,
        "case_insensitive": flat.case_insensitive_frequencies,
        "string_count": flat.string_count,
        "max_depth": flat.max_depth,
        "has_frequencies": flat.has_frequencies,
    }
    arrays = {
        "strings_blob": blob,
        "strings_offsets": offsets,
    }
    for field in _TRIE_INT_FIELDS:
        arrays[field] = np.asarray(getattr(flat, f"_{field}"),
                                   dtype=np.int64)
    if flat.has_frequencies:
        arrays["freq_min"] = np.asarray(flat._freq_min, dtype=np.int64)
        arrays["freq_max"] = np.asarray(flat._freq_max, dtype=np.int64)
    return meta, arrays


def _trie_from_segment(header: dict, arrays: dict, path: str):
    from repro.data.alphabet import Alphabet
    from repro.index.flat import FlatTrie

    meta = header["meta"]
    flat = FlatTrie.__new__(FlatTrie)
    alphabet = None
    if meta["alphabet"] is not None:
        alphabet = Alphabet(meta["alphabet"]["name"],
                            meta["alphabet"]["symbols"])
    flat._alphabet = alphabet
    flat._tracked = meta["tracked"]
    flat._case_insensitive = meta["case_insensitive"]
    flat._string_count = meta["string_count"]
    flat._max_depth = meta["max_depth"]
    for field in _TRIE_INT_FIELDS:
        setattr(flat, f"_{field}", arrays[field])
    flat._strings = LazyStrings(arrays["strings_blob"],
                                arrays["strings_offsets"])
    if meta["has_frequencies"]:
        flat._freq_min = arrays["freq_min"]
        flat._freq_max = arrays["freq_max"]
    else:
        flat._freq_min = None
        flat._freq_max = None
    flat._segment_path = os.path.abspath(path)
    return flat


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def save_segment(artifact, path: str | os.PathLike) -> str:
    """Serialize a compiled artifact to a segment file.

    ``artifact`` is a :class:`repro.scan.corpus.CompiledCorpus` or a
    :class:`repro.index.flat.FlatTrie`. Returns the absolute path
    written. The file is self-describing; reload it with
    :func:`load_segment` (any storage mode — an unpacked corpus is
    packed on the way out, since segments always store the array form).
    """
    from repro.index.flat import FlatTrie
    from repro.scan.corpus import CompiledCorpus

    if isinstance(artifact, CompiledCorpus):
        kind = "corpus"
        meta, arrays = _corpus_payload(artifact)
    elif isinstance(artifact, FlatTrie):
        kind = "flat-trie"
        meta, arrays = _trie_payload(artifact)
    else:
        raise SegmentError(
            f"cannot save a {type(artifact).__name__} as a segment; "
            f"expected CompiledCorpus or FlatTrie")
    _write_segment(path, kind, meta, arrays)
    return os.path.abspath(path)


def load_segment(path: str | os.PathLike):
    """Load a segment back as its compiled artifact, mmap-backed.

    The returned object's array fields are views into the mapped file
    (zero-copy; the OS pages them in on demand and shares them across
    processes), its strings decode lazily on access, and its
    ``segment_path`` property points back at the file — which is what
    lets the batch executors ship a :class:`SegmentRef` to pool workers
    instead of pickling the artifact.

    Raises
    ------
    SegmentError
        On bad magic, an unsupported format version, an unknown kind,
        or a truncated/corrupted file.
    """
    header, arrays = _read_segment(path)
    if header["kind"] == "corpus":
        return _corpus_from_segment(header, arrays, str(path))
    return _trie_from_segment(header, arrays, str(path))


class SegmentCache:
    """A per-process cache of loaded segments, keyed by file identity.

    The key is ``(absolute path, mtime_ns, size)`` — overwriting a
    segment file invalidates its cache entry on the next access, and
    two callers asking for the same path share one mmap-backed
    artifact. This is what makes :class:`SegmentRef` resolution cheap:
    a pool worker maps each segment once, however many tasks arrive.
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[tuple[int, int], object]] = {}

    def get(self, path: str | os.PathLike):
        """The loaded artifact for ``path``, reloading if the file changed."""
        key = os.path.abspath(path)
        try:
            stat = os.stat(key)
        except OSError as error:
            raise SegmentError(f"cannot stat segment: {error}",
                               path=key) from error
        stamp = (stat.st_mtime_ns, stat.st_size)
        entry = self._entries.get(key)
        if entry is not None and entry[0] == stamp:
            return entry[1]
        artifact = load_segment(key)
        self._entries[key] = (stamp, artifact)
        return artifact

    def invalidate(self, path: str | os.PathLike | None = None) -> None:
        """Drop one path's entry (or every entry with no argument)."""
        if path is None:
            self._entries.clear()
        else:
            self._entries.pop(os.path.abspath(path), None)

    def __len__(self) -> int:
        return len(self._entries)


#: The process-global cache :class:`SegmentRef` resolution goes through.
segment_cache = SegmentCache()


@dataclass(frozen=True)
class SegmentRef:
    """A picklable pointer to a segment file.

    The batch executors substitute one of these for a segment-backed
    corpus/trie when shipping tasks to a process pool: the pickle
    payload is just the path, and each worker resolves it through its
    own :data:`segment_cache` — mapping the file once per process
    instead of receiving a full pickled copy per task.
    """

    path: str

    def resolve(self):
        """The mmap-backed artifact (cached per process)."""
        return segment_cache.get(self.path)
