"""The raw-speed layer: packed storage, vector kernels, mmap segments.

The paper's method is "optimize the hot loop stage by stage, gate each
stage with a benchmark"; this package holds the stages that trade
Python-object flexibility for machine-level speed:

* **Packed corpora** — ``CompiledCorpus(packed=True)`` stores length
  buckets as contiguous ``numpy`` arrays
  (:class:`repro.distance.packed.PackedBucket`), the paper's section-6
  dictionary compression in bulk (~2.6x for 3-bit DNA).
* **Vectorized kernels** — :mod:`repro.distance.vectorized` runs the
  Myers recurrence over a whole bucket per step; selected via
  ``kernel="auto"|"scalar"|"vectorized"`` on the scan executors.
* **Segments** (this package) — compiled artifacts serialized to
  versioned flat binaries and loaded back as zero-copy ``mmap`` views:
  near-instant cold start, and ~1× resident memory across process-pool
  workers via :class:`SegmentRef`.

See ``docs/SPEED.md`` for the operator-facing guide and the segment
format specification.
"""

from __future__ import annotations

import os

from repro.speed.segment import (
    SEGMENT_ALIGN,
    SEGMENT_KINDS,
    SEGMENT_MAGIC,
    SEGMENT_VERSION,
    IndexedStrings,
    LazyStrings,
    SegmentCache,
    SegmentRef,
    load_segment,
    save_segment,
    segment_cache,
)

__all__ = [
    "SEGMENT_ALIGN",
    "SEGMENT_KINDS",
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "IndexedStrings",
    "LazyStrings",
    "SegmentCache",
    "SegmentRef",
    "load_segment",
    "save_segment",
    "segment_cache",
    "load_or_build_corpus_segment",
]


def load_or_build_corpus_segment(dataset, path, *, alphabet=None,
                                 tracked=None):
    """A segment-backed compiled corpus for ``dataset`` at ``path``.

    If ``path`` already holds a segment, it is mmap-loaded through the
    process-global :data:`segment_cache` (near-instant). Otherwise the
    corpus is compiled in packed mode, saved to ``path``, and the
    mmap-backed load is returned — so callers always get an artifact
    whose ``segment_path`` is set and whose arrays live in the page
    cache, whichever branch ran. :class:`repro.service.ShardedCorpus`
    uses this per shard for warm cold-starts.
    """
    from repro.scan.corpus import CompiledCorpus

    if not os.path.exists(path):
        parent = os.path.dirname(os.path.abspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        corpus = CompiledCorpus(dataset, alphabet=alphabet,
                                tracked=tracked, packed=True)
        save_segment(corpus, path)
    return segment_cache.get(path)
