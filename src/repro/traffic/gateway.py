"""The asyncio gateway: open-loop arrivals over the blocking service.

:class:`repro.service.Service` answers on the caller's thread — a
closed loop, where a slow answer *slows the arrival of the next
question* and the measured latency flatters the system (coordinated
omission). Real traffic is open-loop: requests arrive on their own
schedule whether or not the last one finished. :class:`AsyncService`
is the adapter between the two worlds, and the place the whole
traffic stack composes:

1. **cache** — a hit answers from memory before anything else runs
   (:class:`repro.traffic.cache.ResultCache`; only complete results
   live there, so a hit is always a full exact answer);
2. **shedding** — the queue-depth watermark policy
   (:class:`repro.traffic.shedding.LoadShedder`) decides admit /
   degrade-to-floor / fast-reject *before* any deadline is burned;
3. **execution** — admitted requests run on the per-shard worker
   pools (:class:`repro.traffic.pools.ShardPools`) when attached, or
   through the service's degradation ladder otherwise, off the event
   loop either way;
4. **observability** — ``service.queue_depth`` and
   ``service.cache.size`` gauges, ``service.gateway.*`` counters, a
   gateway-latency histogram, and a :meth:`AsyncService.report` that
   folds in the cache, shedder, pool and underlying-service series.

The gateway also drives the pools' §3.6 adaptive re-fit: every
``refit_interval`` completions it calls :meth:`ShardPools.refit`, so
crew sizes track the workload with a single decision maker and no
timer thread.
"""

from __future__ import annotations

import asyncio
import time
from typing import Sequence

from repro.core.deadline import Budget, Deadline
from repro.core.request import SearchOptions, SearchRequest, as_request
from repro.exceptions import ReproError, ServiceOverloaded
from repro.obs.events import EventLog
from repro.obs.hist import Histogram
from repro.obs.registry import MetricsRegistry
from repro.obs.report import SearchReport, build_report
from repro.obs.tracing import (TraceContext, Tracer, bound, emit_span,
                               use_trace)
from repro.service.plans import FilterOnlyPlan
from repro.service.service import Service, ServiceResult
from repro.traffic.cache import ResultCache
from repro.traffic.pools import ShardPools
from repro.traffic.shedding import LoadShedder, ShedDecision

#: Counters the gateway maintains (``service.gateway.*`` namespace).
GATEWAY_COUNTERS = (
    "service.gateway.submitted",
    "service.gateway.cache_answers",
    "service.gateway.pool_answers",
    "service.gateway.ladder_answers",
    "service.gateway.floor_answers",
    "service.gateway.rejections",
    "service.gateway.invalidation_events",
)

#: Completions between two adaptive pool re-fits.
DEFAULT_REFIT_INTERVAL = 64


class AsyncService:
    """Async facade over a :class:`repro.service.Service`.

    Parameters
    ----------
    service:
        The blocking service underneath (its corpus, ladder and
        admission stay authoritative for ladder execution).
    cache:
        Optional hot-query :class:`ResultCache`; consulted first. When
        the service serves a *live* :class:`repro.live.Corpus`, the
        gateway subscribes to its mutation events and invalidates the
        cache on every insert (drop everything — an insert can only
        add matches) and delete (drop the entries mentioning the
        string), so a hit is never staler than the corpus.
    shedder:
        Optional :class:`LoadShedder`; without one every request is
        admitted (the service's own slot pool still applies).
    pools:
        Optional :class:`ShardPools`; admitted requests then execute
        on the shard crews instead of the caller-side ladder.
    metrics:
        Optional registry mirroring gateway gauges and counters; also
        attached to a live corpus underneath so its ``live.*`` gauges
        land in the same registry.
    refit_interval:
        Completions between adaptive :meth:`ShardPools.refit` calls.
    tracer:
        Optional :class:`repro.obs.tracing.Tracer`. The gateway mints
        one :class:`TraceContext` per submit — the root of that
        request's span tree — and threads it through the cache check,
        the shed decision, and whichever execution path runs (pools,
        ladder or floor), across the asyncio-to-thread boundary. The
        tracer is also attached to the underlying service so ladder
        spans join the same tree.
    events:
        Optional :class:`repro.obs.events.EventLog`. The gateway
        stamps admission/shed/cache lines with the submit's trace_id;
        the log is also attached to the service and any live corpus
        underneath, so ladder-rung, flush and compaction lines land in
        the same stream.

    Examples
    --------
    >>> import asyncio
    >>> service = Service(["Berlin", "Bern", "Ulm"], shards=2)
    >>> gateway = AsyncService(service, cache=ResultCache())
    >>> result = asyncio.run(gateway.submit("Berlino", 2))
    >>> result.status
    'complete'
    """

    def __init__(self, service: Service, *,
                 cache: ResultCache | None = None,
                 shedder: LoadShedder | None = None,
                 pools: ShardPools | None = None,
                 metrics: MetricsRegistry | None = None,
                 refit_interval: int = DEFAULT_REFIT_INTERVAL,
                 tracer: Tracer | None = None,
                 events: EventLog | None = None) -> None:
        if refit_interval < 1:
            raise ReproError(
                f"refit_interval must be positive, got {refit_interval}"
            )
        self._service = service
        self._cache = cache
        self._shedder = shedder
        self._pools = pools
        self._metrics = metrics
        self._refit_interval = refit_interval
        self._tracer = tracer
        self._events = events
        self._floor = FilterOnlyPlan()
        self._counters = dict.fromkeys(GATEWAY_COUNTERS, 0)
        self._hists = {"gateway.submit_seconds": Histogram()}
        self._pending = 0
        self._completions = 0
        self._last_seconds = 0.0
        self._invalidation_source = None
        source = getattr(service.corpus, "source", None)
        self._live_source = (source if source is not None
                             and getattr(source, "mutable", False)
                             else None)
        if tracer is not None:
            service.attach_tracer(tracer)
        if events is not None:
            service.attach_events(events)
        if self._live_source is not None \
                and (metrics is not None or events is not None):
            # One registry, one log for the whole stack: live.* gauges
            # and flush/compaction lines join the gateway's series.
            self._live_source.attach_observability(
                metrics=metrics, events=events)
        if cache is not None and self._live_source is not None:
            # The write path's cache contract: a mutation must drop
            # every cached answer it could change before the next
            # lookup. Inserts can only *add* matches, so they clear
            # everything; deletes only remove matches, so they drop
            # just the entries that mention the deleted string.
            self._live_source.subscribe(self._on_corpus_event)
            self._invalidation_source = self._live_source

    def _on_corpus_event(self, event) -> None:
        """Invalidate cached results on a live-corpus mutation.

        Runs on the mutating caller's thread (corpus events are
        synchronous); the cache is internally locked, so this is safe
        from any thread. Flush/compact events change layout, not
        logical contents, and are ignored.
        """
        cache = self._cache
        if cache is None or event.kind not in ("insert", "delete"):
            return
        self._count("service.gateway.invalidation_events")
        if event.kind == "insert":
            cache.invalidate()
            dropped = "all"
        else:
            cache.invalidate(event.string)
            dropped = event.string
        # trace_id defaults to the mutating caller's ambient trace, so
        # a traced insert's invalidation joins that insert's tree.
        self._emit_event("cache_invalidation", mutation=event.kind,
                         dropped=dropped, size=len(cache))
        self._set_gauges()

    @property
    def service(self) -> Service:
        """The blocking service underneath."""
        return self._service

    @property
    def cache(self) -> ResultCache | None:
        """The attached result cache, if any."""
        return self._cache

    @property
    def shedder(self) -> LoadShedder | None:
        """The attached load shedder, if any."""
        return self._shedder

    @property
    def pools(self) -> ShardPools | None:
        """The attached shard pools, if any."""
        return self._pools

    @property
    def tracer(self) -> Tracer | None:
        """The attached tracer, if any."""
        return self._tracer

    @property
    def events(self) -> EventLog | None:
        """The attached event log, if any."""
        return self._events

    def _emit_event(self, kind: str, *, trace_id: str | None = None,
                    **fields) -> None:
        """One event line (no-op without an attached log)."""
        if self._events is not None:
            self._events.emit(kind, trace_id=trace_id, **fields)

    def queue_depth(self) -> int:
        """Requests admitted by the gateway but not yet answered."""
        return self._pending

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``service.gateway.*`` counters."""
        return dict(self._counters)

    def _count(self, name: str, value: int = 1) -> None:
        self._counters[name] += value
        if self._metrics is not None:
            self._metrics.inc(name, value)

    def _set_gauges(self) -> None:
        if self._metrics is None:
            return
        self._metrics.gauge("service.queue_depth", self._pending)
        if self._cache is not None:
            self._metrics.gauge("service.cache.size", len(self._cache))
        if self._pools is not None:
            self._metrics.gauge(
                "pool.workers", sum(self._pools.workers().values()))

    # ----------------------------------------------------------------

    async def submit(self, query: str | SearchRequest,
                     k: int | None = None, *,
                     deadline: Deadline | Budget | None = None,
                     backend: str | None = None,
                     options: SearchOptions | None = None
                     ) -> ServiceResult:
        """Answer one request through cache, shedding and execution.

        Raises :class:`repro.exceptions.ServiceOverloaded` (with a
        ``retry_after_ms`` hint) when the shedder's reject watermark is
        breached. A shed-to-floor answer comes back as an honest
        ``candidates`` result, exactly like a ladder bottom-out.

        With a tracer attached, each call mints a fresh root context:
        the whole submit becomes one ``gateway.submit`` span whose
        children cover the cache probe and the execution path, across
        the event-loop-to-thread (and, under process pools, the
        thread-to-process) boundary — one tree per request. The shed
        decision rides the context's baggage (``shed=admit|degrade``),
        which is how ladder exemplars learn about it downstream.
        """
        request = as_request(query, k, deadline=deadline,
                             backend=backend, options=options)
        if request.is_batch:
            raise ReproError(
                "AsyncService.submit answers one query per call; use "
                "submit_many for workloads"
            )
        tracer = self._tracer
        context = tracer.mint() if tracer is not None else None
        trace_id = context.trace_id if context is not None else ""
        wall = time.time()
        submit_started = time.perf_counter()
        self._count("service.gateway.submitted")
        if self._cache is not None:
            lookup_started = time.perf_counter()
            hit = self._cache.get(request)
            self._cache_span(tracer, context, wall,
                             time.perf_counter() - lookup_started, hit)
            if hit is not None:
                self._count("service.gateway.cache_answers")
                self._emit_event("cache_hit", trace_id=trace_id,
                                 query=request.query)
                self._set_gauges()
                self._finish_root(tracer, context, wall, submit_started,
                                  outcome="cache")
                return hit
            self._emit_event("cache_miss", trace_id=trace_id,
                             query=request.query)
        decision = self._decide()
        if self._shedder is not None:
            self._emit_event("shed", trace_id=trace_id,
                             action=decision.action,
                             queue_depth=decision.queue_depth)
        if context is not None:
            context = context.with_baggage(shed=decision.action)
        if decision.action == "reject":
            self._count("service.gateway.rejections")
            self._set_gauges()
            self._finish_root(tracer, context, wall, submit_started,
                              outcome="rejected")
            hint = (f"; retry in ~{decision.retry_after_ms:.0f}ms"
                    if decision.retry_after_ms is not None else "")
            raise ServiceOverloaded(
                f"gateway shedding at queue depth "
                f"{decision.queue_depth}; submit rejected{hint}",
                capacity=decision.queue_depth,
                in_flight=decision.queue_depth,
                retry_after_ms=decision.retry_after_ms,
            )
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        self._pending += 1
        self._set_gauges()
        outcome = "error"
        try:
            if decision.action == "degrade":
                self._count("service.gateway.floor_answers")
                result = await loop.run_in_executor(
                    None, bound(tracer, context, self._run_floor,
                                request))
            elif self._pools is not None:
                self._count("service.gateway.pool_answers")
                # Capture the trace on the ticket synchronously (no
                # await between install and submit), so pool workers
                # parent their shard spans under this request's root.
                with use_trace(tracer, context):
                    ticket = self._pools.submit(request)
                result = await loop.run_in_executor(None, ticket.result)
            else:
                self._count("service.gateway.ladder_answers")
                result = await loop.run_in_executor(
                    None, bound(tracer, context, self._service.submit,
                                request))
            outcome = result.status
        finally:
            self._pending -= 1
            seconds = time.perf_counter() - started
            self._last_seconds = seconds
            self._hists["gateway.submit_seconds"].record(seconds)
            if self._shedder is not None:
                self._shedder.observe_completion(seconds)
            self._completions += 1
            if self._pools is not None \
                    and self._completions % self._refit_interval == 0:
                self._pools.refit()
            self._finish_root(tracer, context, wall, submit_started,
                              outcome=outcome)
            self._set_gauges()
        if self._cache is not None:
            self._cache.put(request, result)
            self._set_gauges()
        return result

    def _cache_span(self, tracer: Tracer | None,
                    context: TraceContext | None, wall: float,
                    seconds: float, hit: ServiceResult | None) -> None:
        """One child span for the cache probe (hit or miss)."""
        if tracer is None or context is None:
            return
        tracer.record_span(
            "gateway.cache", context.child(), wall, seconds,
            tags={"outcome": "hit" if hit is not None else "miss"})

    def _finish_root(self, tracer: Tracer | None,
                     context: TraceContext | None, wall: float,
                     started: float, *, outcome: str) -> None:
        """Record the whole-submit root span (explicit-timing twin)."""
        if tracer is None or context is None:
            return
        tracer.record_span(
            "gateway.submit", context, wall,
            time.perf_counter() - started, tags={"outcome": outcome})

    async def submit_many(self, requests: Sequence[SearchRequest], *,
                          arrivals: Sequence[float] | None = None
                          ) -> list:
        """Run a workload of requests, optionally on an arrival schedule.

        ``arrivals`` gives each request's offset in seconds from the
        call (an **open-loop** schedule: request *i* launches at
        ``arrivals[i]`` whether or not earlier ones finished — the
        load-generation discipline that keeps latency honest under
        saturation). Without it every request launches immediately.

        Returns one entry per request, in request order; a rejected
        submit's entry is its :class:`ServiceOverloaded` (or other
        exception) instance rather than a raise, so a replay records
        rejections alongside answers.
        """
        if arrivals is not None and len(arrivals) != len(requests):
            raise ReproError(
                f"arrivals ({len(arrivals)}) and requests "
                f"({len(requests)}) must align"
            )

        async def timed(request: SearchRequest, offset: float):
            if offset > 0:
                await asyncio.sleep(offset)
            return await self.submit(request)

        tasks = [
            timed(request,
                  arrivals[index] if arrivals is not None else 0.0)
            for index, request in enumerate(requests)
        ]
        return await asyncio.gather(*tasks, return_exceptions=True)

    # ----------------------------------------------------------------

    def _decide(self) -> ShedDecision:
        depth = self._pending
        if self._shedder is None:
            return ShedDecision(action="admit", queue_depth=depth)
        return self._shedder.decide(depth)

    def _run_floor(self, request: SearchRequest) -> ServiceResult:
        """The shed path: straight to the filter-only floor, no queue."""
        started = time.perf_counter()
        outcome = self._floor.run(self._service.corpus, request.query,
                                  request.k, request.deadline)
        emit_span("gateway.floor", time.perf_counter() - started,
                  {"plan": outcome.plan})
        return ServiceResult(
            query=request.query, k=request.k, status="candidates",
            matches=tuple(outcome.matches), verified=False,
            plan=f"{outcome.plan}[shed]", attempts=1,
        )

    # ----------------------------------------------------------------

    def report(self, *, queries: int = 1, k: int = 0,
               matches: int = 0) -> SearchReport:
        """One validated report over the whole traffic stack.

        Counters fold together the gateway's own series, the cache's
        ``service.cache.*``, the shedder's ``service.shed.*``, the
        pools' ``pool.*`` and the underlying service's ``service.*``;
        histograms carry gateway latency next to the service and pool
        distributions; the ``gauges`` section snapshots
        ``service.queue_depth``, ``service.cache.size``, pool worker
        counts and — when the service fronts a live corpus — the
        ``live.memtable_size`` / ``live.segments`` /
        ``live.compactions_in_flight`` write-path gauges.
        """
        counters: dict[str, float] = dict(self._counters)
        counters.update(self._service.counters_snapshot())
        hists: dict[str, Histogram] = {
            name: hist.copy() for name, hist in self._hists.items()
        }
        hists.update(self._service.hists_snapshot())
        gauges: dict[str, float] = {
            "service.queue_depth": float(self._pending),
        }
        if self._cache is not None:
            counters.update(self._cache.counters_snapshot())
            gauges["service.cache.size"] = float(len(self._cache))
        if self._shedder is not None:
            counters.update(self._shedder.counters_snapshot())
        if self._pools is not None:
            counters.update(self._pools.counters_snapshot())
            hists.update(self._pools.hists_snapshot())
            gauges["pool.workers"] = float(
                sum(self._pools.workers().values()))
        live = (self._live_source.live_corpus
                if self._live_source is not None else None)
        if live is not None:
            gauges["live.memtable_size"] = float(live.memtable_size)
            gauges["live.segments"] = float(len(live.segment_sizes()))
            gauges["live.compactions_in_flight"] = float(
                live.compactions_in_flight)
        parts = ["gateway"]
        if self._cache is not None:
            parts.append("cache")
        if self._shedder is not None:
            parts.append("shedding")
        parts.append("pools" if self._pools is not None else "ladder")
        return build_report(
            backend="traffic",
            engine="traffic[gateway]",
            mode="service",
            queries=queries,
            k=k,
            matches=matches,
            seconds=self._last_seconds,
            counters=counters,
            histograms=hists,
            gauges=gauges,
            choice_backend="traffic",
            choice_reason=" + ".join(parts),
        )
