"""repro.traffic — open-loop traffic serving over the query service.

The layer between a request stream and :mod:`repro.service`: an
asyncio gateway (:class:`AsyncService`) accepting open-loop arrivals,
a normalized hot-query result cache (:class:`ResultCache`),
queue-depth load shedding ahead of the deadline ladder
(:class:`LoadShedder`) and per-shard worker pools sized by the paper's
§3.6 adaptive 70/30 rules (:class:`ShardPools`,
:class:`AdaptivePoolSizer`). See docs/TRAFFIC.md for the contract.
"""

from repro.traffic.cache import CACHE_COUNTERS, ResultCache, cache_key
from repro.traffic.gateway import (
    DEFAULT_REFIT_INTERVAL,
    GATEWAY_COUNTERS,
    AsyncService,
)
from repro.traffic.pools import (
    DEFAULT_BATCH_LIMIT,
    POOL_COUNTERS,
    POOL_KINDS,
    AdaptivePoolSizer,
    PoolTicket,
    ShardLoad,
    ShardPools,
)
from repro.traffic.shedding import (
    SHED_ACTIONS,
    SHED_COUNTERS,
    DrainRateEstimator,
    LoadShedder,
    ShedDecision,
    Watermarks,
)

__all__ = [
    "AsyncService",
    "ResultCache",
    "cache_key",
    "LoadShedder",
    "Watermarks",
    "DrainRateEstimator",
    "ShedDecision",
    "ShardPools",
    "ShardLoad",
    "PoolTicket",
    "AdaptivePoolSizer",
    "CACHE_COUNTERS",
    "GATEWAY_COUNTERS",
    "POOL_COUNTERS",
    "POOL_KINDS",
    "SHED_COUNTERS",
    "SHED_ACTIONS",
    "DEFAULT_BATCH_LIMIT",
    "DEFAULT_REFIT_INTERVAL",
]
