"""The hot-query result cache: normalized keys, bounded LRU, TTL.

Open-loop traffic is never uniform — real query streams are heavily
skewed (a few hot misspellings account for most submits), so answering
the second occurrence of a hot query from memory buys more than any
kernel optimization can. :class:`ResultCache` memoizes **complete**
:class:`repro.service.ServiceResult` values:

* **normalized keys** — the key is derived from the request's
  *canonical* identity (:meth:`repro.core.request.SearchRequest.canonical_key`)
  with the backend hint dropped: a complete answer is the exact
  ``<= k`` match set, which is backend-independent by the library's
  verification contract, so ``backend="compiled"`` and
  ``backend=None`` share one entry. The deadline is execution
  context, never part of the key — a cached complete answer satisfies
  any deadline, because it costs one dictionary lookup.
* **bounded LRU + TTL** — at most ``maxsize`` entries, least recently
  *used* evicted first; an entry older than ``ttl_seconds`` is dropped
  at lookup time (counted as an expiration *and* a miss). The clock is
  injectable so tests control time.
* **honest contents** — only results with ``result.complete`` (exact
  full answers: status ``complete`` or ``degraded``) are stored.
  Partial and candidate results depend on how much deadline their
  submit had left; caching them would replay one caller's bad luck to
  every later caller.
* **counters** — every operation moves a ``service.cache.*`` counter
  (:data:`CACHE_COUNTERS`), and the gateway mirrors them plus a
  ``service.cache.size`` gauge into its report, so hit rates are
  observable with the same machinery as every other series.
* **invalidation hooks** — :meth:`ResultCache.invalidate` drops every
  entry whose result mentions a given dataset string (or everything,
  with no argument). The live-corpus write path drives it: a gateway
  over a mutable :class:`repro.live.Corpus` subscribes to its
  mutation events and invalidates on every insert/delete, so a hit
  is never staler than the corpus (see ``docs/LIVE.md``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable

from repro.core.request import SearchRequest
from repro.exceptions import ReproError

#: Counters the cache maintains (``service.cache.*`` namespace; the
#: gateway folds them into its report's open counters section).
CACHE_COUNTERS = (
    "service.cache.hits",
    "service.cache.misses",
    "service.cache.stores",
    "service.cache.skips",
    "service.cache.evictions",
    "service.cache.expirations",
    "service.cache.invalidations",
)

#: Default entry bound — small enough to stay cache-friendly, large
#: enough to hold any realistic hot set.
DEFAULT_MAXSIZE = 1024


def cache_key(request: SearchRequest) -> Hashable:
    """The normalized cache key of one single-query request.

    The canonical request identity minus the backend hint (complete
    answers are backend-independent). Options that could change the
    match set stay in the key via the canonical form's options field.
    """
    query, k, _backend, options = request.canonical_key()
    return (query, k, options)


class ResultCache:
    """A bounded, TTL-aware LRU of complete service results.

    Parameters
    ----------
    maxsize:
        Maximum entries (must be positive); the LRU bound.
    ttl_seconds:
        Entry lifetime; ``None`` disables expiry. An expired entry is
        dropped (and counted) the first time it is looked up.
    clock:
        Injectable monotonic clock, for deterministic TTL tests.

    Examples
    --------
    >>> from repro.service.service import ServiceResult
    >>> cache = ResultCache(maxsize=2)
    >>> request = SearchRequest("Berlino", 2)
    >>> result = ServiceResult(query="Berlino", k=2, status="complete",
    ...                        matches=(), verified=True, plan="flat",
    ...                        attempts=1)
    >>> cache.put(request, result)
    True
    >>> cache.get(request) is result
    True
    >>> cache.counters_snapshot()["service.cache.hits"]
    1
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE, *,
                 ttl_seconds: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if maxsize < 1:
            raise ReproError(
                f"cache maxsize must be positive, got {maxsize}"
            )
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ReproError(
                f"ttl_seconds must be positive (or None), got "
                f"{ttl_seconds}"
            )
        self._maxsize = maxsize
        self._ttl = ttl_seconds
        self._clock = clock
        # key -> (result, stored_at)
        self._entries: OrderedDict[Hashable, tuple] = OrderedDict()
        self._lock = threading.Lock()
        self._counters = dict.fromkeys(CACHE_COUNTERS, 0)

    @property
    def maxsize(self) -> int:
        """The configured LRU bound."""
        return self._maxsize

    @property
    def ttl_seconds(self) -> float | None:
        """The configured entry lifetime (``None`` = no expiry)."""
        return self._ttl

    def __len__(self) -> int:
        return len(self._entries)

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``service.cache.*`` counters since construction."""
        with self._lock:
            return dict(self._counters)

    # ----------------------------------------------------------------

    def get(self, request: SearchRequest):
        """The cached complete result, or ``None`` (a countable miss).

        A hit refreshes the entry's LRU position but not its TTL age —
        a stale-but-hot answer still expires on schedule.
        """
        key = cache_key(request)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._counters["service.cache.misses"] += 1
                return None
            result, stored_at = entry
            if self._ttl is not None \
                    and self._clock() - stored_at >= self._ttl:
                del self._entries[key]
                self._counters["service.cache.expirations"] += 1
                self._counters["service.cache.misses"] += 1
                return None
            self._entries.move_to_end(key)
            self._counters["service.cache.hits"] += 1
            return result

    def put(self, request: SearchRequest, result) -> bool:
        """Store a complete result; returns whether it was stored.

        Non-complete results (partials, candidate sets) are refused —
        counted under ``service.cache.skips`` — because their contents
        depend on the submitting caller's deadline, not the query.
        """
        if not getattr(result, "complete", False):
            with self._lock:
                self._counters["service.cache.skips"] += 1
            return False
        key = cache_key(request)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (result, self._clock())
            self._counters["service.cache.stores"] += 1
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._counters["service.cache.evictions"] += 1
        return True

    # ----------------------------------------------------------------

    def invalidate(self, string: str | None = None) -> int:
        """Drop entries whose answer could involve ``string``.

        The hook the live-corpus write path calls on insert or
        delete (:meth:`repro.traffic.AsyncService` wires it to the
        corpus's mutation events): with a ``string``, every cached
        result that matched it is dropped (an insert can only *add*
        matches, so conservative callers pass ``None`` to drop
        everything); returns how many entries were removed.
        """
        with self._lock:
            if string is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                doomed = [
                    key for key, (result, _) in self._entries.items()
                    if any(match.string == string
                           for match in result.matches)
                ]
                for key in doomed:
                    del self._entries[key]
                removed = len(doomed)
            self._counters["service.cache.invalidations"] += removed
        return removed
