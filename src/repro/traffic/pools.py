"""Per-shard worker pools: batch draining, §3.6 adaptive sizing.

The service executes a submit inline on the caller's thread; a traffic
gateway needs the opposite — callers enqueue and *workers* execute, so
arrival rate and service rate decouple and a queue forms where the
backlog is measurable. :class:`ShardPools` gives every shard of a
:class:`repro.service.ShardedCorpus` its own bounded crew of workers:

* **batch draining** — a worker that wakes up does not take one task;
  it drains up to ``batch_limit`` queued tasks and serves them through
  the shard's :class:`repro.scan.executor.BatchScanExecutor` in one
  call, so a backlog is answered with the batch machinery's amortized
  costs (duplicate queries deduplicated, the vectorized kernel fed
  whole buckets, the result memo warm). On a single-core host this —
  not parallel scheduling — is where the pool's throughput advantage
  over one-task-per-wakeup service comes from, and the deeper the
  backlog the bigger the amortization; the bench reports it as such.
* **adaptive sizing** — the paper's §3.6 master–slave rules
  (:class:`repro.parallel.adaptive.ManagerRules`: open a worker above
  70 % utilization, close one below 30 %) re-applied here to
  *per-shard* crews. Utilization is re-fit online from the pool's
  :mod:`repro.obs` series — busy-seconds timers per shard over the
  wall-clock window since the last fit — by a pure
  :class:`AdaptivePoolSizer`, so skewed shards get workers where the
  work is while cold shards shrink to the minimum. Only the caller of
  :meth:`ShardPools.refit` mutates crew sizes (the paper's answer to
  resize races: one decision maker).
* **zero-copy handoff** — with ``kind="process"``, workers are
  processes primed with a :class:`repro.speed.SegmentRef`: each child
  mmaps the shard's segment file instead of unpickling a private
  corpus copy, so N workers cost ~1x resident corpus memory.

A submit returns a :class:`PoolTicket`; ticket resolution mirrors the
sharding failure mode — every shard answers in full or not at all, and
a deadline that expires at the merge only forfeits the shards still in
queue (``status="partial"``, verified matches kept).
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
from dataclasses import dataclass
from time import perf_counter, time
from typing import Mapping, Sequence

from repro.core.deadline import Deadline
from repro.core.request import SearchRequest
from repro.exceptions import ReproError
from repro.obs.hist import Histogram
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import current_trace, worker_span
from repro.parallel.adaptive import ManagerRules
from repro.scan.corpus import CompiledCorpus
from repro.scan.executor import BatchScanExecutor
from repro.service.service import ServiceResult
from repro.service.sharding import ShardedCorpus, merge_matches

#: Worker-pool kinds.
POOL_KINDS = ("thread", "process")

#: Default per-wakeup drain bound — deep enough for real amortization,
#: bounded so one worker cannot starve its siblings of a whole backlog.
DEFAULT_BATCH_LIMIT = 32

#: How long an idle worker blocks on its queue before re-checking its
#: stop flag (seconds); retirement latency is one interval.
IDLE_POLL_SECONDS = 0.05

#: Counters the pools maintain (``pool.*`` namespace).
POOL_COUNTERS = (
    "pool.submitted",
    "pool.served",
    "pool.batches",
    "pool.batched_tasks",
    "pool.workers_opened",
    "pool.workers_closed",
)


# -- process-kind worker side -------------------------------------------

_WORKER_EXECUTOR: BatchScanExecutor | None = None


def _process_worker_init(segment_path: str) -> None:
    """Prime one pool process: mmap the shard segment, build the executor.

    Runs once per worker process. The :class:`repro.speed.SegmentRef`
    resolves through the process-global segment cache, so the corpus
    arrays are mmap views shared with every sibling worker.
    """
    global _WORKER_EXECUTOR
    from repro.speed import SegmentRef

    _WORKER_EXECUTOR = BatchScanExecutor(SegmentRef(segment_path).resolve())


def _process_serve(queries: Sequence[str], k: int,
                   traces: Sequence[Mapping | None] | None = None):
    """Serve one drained batch inside a primed worker process.

    ``traces`` ships one serialized :class:`repro.obs.tracing
    .TraceContext` (or ``None``) per drained ticket. When absent the
    return value keeps its original shape — the plain row list; when
    present it becomes ``(rows, spans)``, where ``spans`` holds one
    ``pool.worker.batch`` span dict per sampled ticket, stamped with
    this worker's pid/tid so the trace export stitches the batch onto
    the child process's lane.
    """
    if traces is None:
        result = _WORKER_EXECUTOR.search_many(list(queries), k)
        return list(result.rows)
    wall = time()
    started = perf_counter()
    result = _WORKER_EXECUTOR.search_many(list(queries), k)
    seconds = perf_counter() - started
    spans: list[dict] = []
    for shipped in traces:
        spans.extend(worker_span(
            "pool.worker.batch", shipped, wall, seconds,
            tags={"queries": str(len(queries)), "k": str(k)},
        ))
    return list(result.rows), spans


# -- adaptive sizing ----------------------------------------------------

@dataclass(frozen=True)
class ShardLoad:
    """One shard crew's observed load over a fit window."""

    shard: int
    workers: int
    utilization: float


class AdaptivePoolSizer:
    """The §3.6 open/close rules re-fit to per-shard crews, purely.

    Given one :class:`ShardLoad` per shard, :meth:`resize` returns the
    new crew sizes: a shard above ``rules.open_threshold`` utilization
    opens one worker (hottest first, while the optional
    ``total_budget`` allows), a shard below ``rules.close_threshold``
    closes one, and every crew stays within ``[rules.min_threads,
    rules.max_threads]``. One worker per shard per fit — the same
    damping the paper's master applies per sample interval.

    >>> sizer = AdaptivePoolSizer(ManagerRules(max_threads=4))
    >>> sizer.resize([ShardLoad(0, 1, 0.9), ShardLoad(1, 2, 0.1)])
    {0: 2, 1: 1}
    """

    def __init__(self, rules: ManagerRules = ManagerRules(), *,
                 total_budget: int | None = None) -> None:
        if total_budget is not None and total_budget < 1:
            raise ReproError(
                f"total_budget must be positive, got {total_budget}"
            )
        self._rules = rules
        self._total_budget = total_budget

    @property
    def rules(self) -> ManagerRules:
        """The open/close thresholds in force."""
        return self._rules

    @property
    def total_budget(self) -> int | None:
        """Optional cap on workers summed over every shard."""
        return self._total_budget

    def resize(self, loads: Sequence[ShardLoad]) -> dict[int, int]:
        """New crew size per shard id."""
        rules = self._rules
        sizes = {load.shard: load.workers for load in loads}
        # Close first: a freed slot can fund an open under a budget.
        for load in sorted(loads, key=lambda item: item.utilization):
            if load.utilization < rules.close_threshold \
                    and sizes[load.shard] > rules.min_threads:
                sizes[load.shard] -= 1
        total = sum(sizes.values())
        for load in sorted(loads, key=lambda item: -item.utilization):
            if load.utilization <= rules.open_threshold:
                break
            if sizes[load.shard] >= rules.max_threads:
                continue
            if self._total_budget is not None \
                    and total >= self._total_budget:
                break
            sizes[load.shard] += 1
            total += 1
        return sizes


# -- tickets ------------------------------------------------------------

class PoolTicket:
    """One submitted request's merge state across the shard crews.

    Workers fulfill one shard each; :meth:`result` waits for all of
    them (bounded by the request's wall-clock deadline, when it has
    one) and merges. Missing shards at expiry cost exactly their rows:
    the merged answer of the completed shards is returned as a
    ``partial`` — verified, a strict subset of the exact answer.

    ``trace`` carries the submitter's sampled ``(tracer, context)``
    pair (``None`` otherwise) so worker threads — which run on their
    own stacks, outside the submitter's ambient trace — can parent
    their shard spans under the submitting span.
    """

    def __init__(self, request: SearchRequest, shard_count: int,
                 plan: str, trace: tuple | None = None) -> None:
        self.request = request
        self.enqueued_at = perf_counter()
        self.trace = trace
        self._plan = plan
        self._rows: list[tuple | None] = [None] * shard_count
        self._remaining = shard_count
        self._error: BaseException | None = None
        self._finished = False
        self._done = threading.Event()
        self._lock = threading.Lock()

    @property
    def done(self) -> bool:
        """Whether every shard has answered (or one has failed)."""
        return self._done.is_set()

    def _fulfill(self, shard: int, row: tuple) -> bool:
        """Record one shard's row; ``True`` iff this call finished it."""
        with self._lock:
            if self._finished:
                return False
            if self._rows[shard] is None:
                self._rows[shard] = tuple(row)
                self._remaining -= 1
            if self._remaining <= 0:
                self._finished = True
                self._done.set()
                return True
            return False

    def _fail(self, shard: int, error: BaseException) -> bool:
        """Record a failure; ``True`` iff this call finished the ticket."""
        with self._lock:
            if self._finished:
                return False
            self._error = error
            self._finished = True
            self._done.set()
            return True

    def result(self, timeout: float | None = None) -> ServiceResult:
        """Wait for the shard crews and merge, honestly labeled.

        The wait is additionally bounded by the request's wall-clock
        deadline when it carries one; a work-unit
        :class:`repro.core.deadline.Budget` does not translate to a
        wait and is ignored here.
        """
        deadline = self.request.deadline
        if isinstance(deadline, Deadline):
            remaining = max(0.0, deadline.remaining())
            timeout = remaining if timeout is None \
                else min(timeout, remaining)
        self._done.wait(timeout)
        with self._lock:
            if self._error is not None:
                raise self._error
            rows = [row for row in self._rows if row is not None]
            complete = self._remaining <= 0
        matches = merge_matches(rows)
        return ServiceResult(
            query=self.request.query, k=self.request.k,
            status="complete" if complete else "partial",
            matches=matches, verified=True,
            plan=self._plan if complete else "", attempts=1,
        )


# -- the pools ----------------------------------------------------------

class _ShardCrew:
    """One shard's queue, workers and executor (thread or process)."""

    def __init__(self, shard: int, strings: tuple[str, ...], *,
                 kind: str, kernel: str, process_workers: int,
                 segment_path: str | None) -> None:
        self.shard = shard
        self.queue: queue_module.Queue = queue_module.Queue()
        self.stop_flags: list[threading.Event] = []
        self.threads: list[threading.Thread] = []
        self.busy_seconds = 0.0
        self.process_pool = None
        if not strings:
            # Nothing to scan; tasks resolve to empty rows (mirrors
            # ShardedCorpus.searcher_for returning None).
            self.executor = None
        elif kind == "process":
            from concurrent.futures import ProcessPoolExecutor

            from repro.speed import load_or_build_corpus_segment

            # Build (or reuse) the segment up front in the parent so
            # worker inits only ever mmap an existing file.
            load_or_build_corpus_segment(strings, segment_path)
            self.segment_path = segment_path
            self.executor = None
            self.process_pool = ProcessPoolExecutor(
                max_workers=process_workers,
                initializer=_process_worker_init,
                initargs=(segment_path,),
            )
        else:
            if segment_path is not None:
                from repro.speed import load_or_build_corpus_segment

                corpus = load_or_build_corpus_segment(strings, segment_path)
            else:
                corpus = CompiledCorpus(strings)
            self.executor = BatchScanExecutor(corpus, kernel=kernel)

    @property
    def workers(self) -> int:
        return sum(1 for thread in self.threads if thread.is_alive())


class ShardPools:
    """Queue-fed worker crews, one per shard of a sharded corpus.

    Parameters
    ----------
    corpus:
        The sharded data side (or the strings to shard here).
    shards:
        Shard count when building the corpus here.
    kind:
        ``"thread"`` (workers scan in-process; default) or
        ``"process"`` (workers scan in child processes primed with a
        :class:`repro.speed.SegmentRef`; requires ``segment_dir``).
    workers_per_shard:
        Initial crew size per shard.
    batch_limit:
        Most tasks one worker drains per wakeup. ``1`` disables batch
        amortization — the static configuration benchmarks compare
        against.
    sizer:
        The :class:`AdaptivePoolSizer` :meth:`refit` consults; pass
        ``None`` for static crews (refit becomes a no-op).
    kernel:
        Distance-kernel selection for the shard executors.
    segment_dir:
        Directory of per-shard segment files (``shard-NNNN.seg``;
        built on demand). Mandatory for ``kind="process"``.
    metrics:
        Optional registry mirroring the pool's counters and timers.
    """

    def __init__(self, corpus: ShardedCorpus | Sequence[str], *,
                 shards: int = 4,
                 kind: str = "thread",
                 workers_per_shard: int = 1,
                 batch_limit: int = DEFAULT_BATCH_LIMIT,
                 sizer: AdaptivePoolSizer | None = None,
                 kernel: str = "auto",
                 segment_dir: str | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if kind not in POOL_KINDS:
            raise ReproError(
                f"unknown pool kind {kind!r}; expected one of {POOL_KINDS}"
            )
        if kind == "process" and segment_dir is None:
            raise ReproError(
                "process pools need segment_dir: workers attach via "
                "SegmentRef, never by pickled corpus"
            )
        if workers_per_shard < 1:
            raise ReproError(
                f"workers_per_shard must be positive, got "
                f"{workers_per_shard}"
            )
        if batch_limit < 1:
            raise ReproError(
                f"batch_limit must be positive, got {batch_limit}"
            )
        if not isinstance(corpus, ShardedCorpus):
            corpus = ShardedCorpus(corpus, shards)
        self._corpus = corpus
        self._kind = kind
        self._batch_limit = batch_limit
        self._sizer = sizer
        self._metrics = metrics
        self._counters = dict.fromkeys(POOL_COUNTERS, 0)
        self._hists = {
            "pool.batch_seconds": Histogram(),
            "pool.batch_size": Histogram(),
        }
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False
        self._fit_epoch = perf_counter()
        self._fit_busy: dict[int, float] = {}
        self._crews: list[_ShardCrew] = []
        for shard in range(corpus.shard_count):
            path = None
            if segment_dir is not None:
                os.makedirs(segment_dir, exist_ok=True)
                path = os.path.join(segment_dir, f"shard-{shard:04d}.seg")
            crew = _ShardCrew(shard, corpus.shard(shard), kind=kind,
                              kernel=kernel,
                              process_workers=workers_per_shard,
                              segment_path=path)
            self._crews.append(crew)
            self._fit_busy[shard] = 0.0
            for _ in range(workers_per_shard):
                self._spawn(crew, count=False)

    # -- introspection --------------------------------------------------

    @property
    def corpus(self) -> ShardedCorpus:
        """The sharded data side."""
        return self._corpus

    @property
    def kind(self) -> str:
        """``"thread"`` or ``"process"``."""
        return self._kind

    @property
    def batch_limit(self) -> int:
        """Most tasks one worker drains per wakeup."""
        return self._batch_limit

    def workers(self) -> dict[int, int]:
        """Live worker count per shard."""
        return {crew.shard: crew.workers for crew in self._crews}

    def queue_depth(self) -> int:
        """Requests submitted but not yet fully served."""
        with self._lock:
            return self._pending

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``pool.*`` counters since construction."""
        with self._lock:
            return dict(self._counters)

    def hists_snapshot(self) -> dict[str, Histogram]:
        """Cumulative batch-shape histograms since construction."""
        with self._lock:
            return {name: hist.copy()
                    for name, hist in self._hists.items()}

    def _count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] += value
        if self._metrics is not None:
            self._metrics.inc(name, value)

    # -- lifecycle ------------------------------------------------------

    def _spawn(self, crew: _ShardCrew, *, count: bool = True) -> None:
        stop_flag = threading.Event()
        thread = threading.Thread(
            target=self._worker, args=(crew, stop_flag), daemon=True,
        )
        crew.stop_flags.append(stop_flag)
        crew.threads.append(thread)
        thread.start()
        if count:
            self._count("pool.workers_opened")

    def _retire(self, crew: _ShardCrew) -> None:
        for flag, thread in zip(crew.stop_flags, crew.threads):
            if thread.is_alive() and not flag.is_set():
                flag.set()
                self._count("pool.workers_closed")
                return

    def close(self) -> None:
        """Stop every worker and process pool (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for crew in self._crews:
            for flag in crew.stop_flags:
                flag.set()
        for crew in self._crews:
            for thread in crew.threads:
                thread.join()
            if crew.process_pool is not None:
                crew.process_pool.shutdown(wait=True)

    def __enter__(self) -> "ShardPools":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- submission -----------------------------------------------------

    def submit(self, request: SearchRequest) -> PoolTicket:
        """Enqueue one request onto every shard crew."""
        if request.is_batch:
            raise ReproError(
                "ShardPools.submit takes one query per ticket; submit "
                "batch requests one at a time"
            )
        with self._lock:
            if self._closed:
                raise ReproError("submit on a closed ShardPools")
            self._pending += 1
        self._count("pool.submitted")
        tracer, context = current_trace()
        trace = ((tracer, context)
                 if tracer is not None and context is not None
                 and context.sampled else None)
        ticket = PoolTicket(request, self._corpus.shard_count,
                            plan=f"pool[{self._kind}]", trace=trace)
        for crew in self._crews:
            crew.queue.put(ticket)
        return ticket

    # -- the worker loop ------------------------------------------------

    def _worker(self, crew: _ShardCrew,
                stop_flag: threading.Event) -> None:
        while not stop_flag.is_set():
            try:
                first = crew.queue.get(timeout=IDLE_POLL_SECONDS)
            except queue_module.Empty:
                continue
            batch = [first]
            while len(batch) < self._batch_limit:
                try:
                    batch.append(crew.queue.get_nowait())
                except queue_module.Empty:
                    break
            started = perf_counter()
            self._serve(crew, batch)
            seconds = perf_counter() - started
            with self._lock:
                crew.busy_seconds += seconds
                self._hists["pool.batch_seconds"].record(seconds)
                self._hists["pool.batch_size"].record(len(batch))
            if self._metrics is not None:
                self._metrics.observe(
                    f"pool.shard[{crew.shard}].busy", seconds)
            self._count("pool.batches")
            self._count("pool.batched_tasks", len(batch))

    def _serve(self, crew: _ShardCrew, batch: list[PoolTicket]) -> None:
        """Answer one drained batch, grouped by k for the batch scan.

        Sampled tickets get one ``pool.shard[N]`` span each (a child of
        the submitting span, pre-minted here so process workers can
        parent under it), and process crews ship one
        ``pool.worker.batch`` span per sampled ticket back alongside
        the rows.
        """
        by_k: dict[int, list[PoolTicket]] = {}
        for ticket in batch:
            by_k.setdefault(ticket.request.k, []).append(ticket)
        for k, tickets in by_k.items():
            queries = [ticket.request.query for ticket in tickets]
            contexts = [
                ticket.trace[1].child() if ticket.trace is not None
                else None
                for ticket in tickets
            ]
            traced = any(context is not None for context in contexts)
            wall = time()
            started = perf_counter()
            spans: Sequence[Mapping] = ()
            try:
                if crew.process_pool is None and crew.executor is None:
                    rows = [() for _ in queries]
                elif crew.process_pool is not None:
                    if traced:
                        shipped = [
                            context.to_dict() if context is not None
                            else None
                            for context in contexts
                        ]
                        rows, spans = crew.process_pool.submit(
                            _process_serve, queries, k, shipped).result()
                    else:
                        rows = crew.process_pool.submit(
                            _process_serve, queries, k).result()
                else:
                    rows = list(
                        crew.executor.search_many(queries, k).rows)
            except BaseException as error:
                for ticket in tickets:
                    self._task_done(ticket._fail(crew.shard, error))
                continue
            if traced:
                self._record_shard_spans(
                    crew, tickets, contexts, wall,
                    perf_counter() - started, len(queries), k, spans)
            for ticket, row in zip(tickets, rows):
                self._task_done(ticket._fulfill(crew.shard, row))

    def _record_shard_spans(self, crew: _ShardCrew,
                            tickets: Sequence[PoolTicket],
                            contexts: Sequence,
                            wall: float, seconds: float,
                            batch: int, k: int,
                            spans: Sequence[Mapping]) -> None:
        """Record one shard span per sampled ticket, rejoin worker spans.

        Worker spans carry their trace_id, so they fold back into the
        tracer of whichever ticket shipped their parent context —
        drained batches can mix tickets from different traces.
        """
        tracers = {}
        for ticket, context in zip(tickets, contexts):
            if context is None:
                continue
            tracer = ticket.trace[0]
            tracers[context.trace_id] = tracer
            tracer.record_span(
                f"pool.shard[{crew.shard}]", context, wall, seconds,
                tags={"kind": self._kind, "batch": str(batch),
                      "k": str(k)},
            )
        for span in spans:
            tracer = tracers.get(span.get("trace_id"))
            if tracer is not None:
                tracer.adopt((span,))

    def _task_done(self, finished_now: bool) -> None:
        if finished_now:
            with self._lock:
                self._pending -= 1
            self._count("pool.served")

    # -- adaptive refit -------------------------------------------------

    def loads(self) -> list[ShardLoad]:
        """Per-shard utilization over the window since the last refit.

        Utilization is ``busy worker-seconds / (window x workers)`` —
        the same busy-over-alive proxy the paper's master samples, read
        from the pool's cumulative :mod:`repro.obs` busy-seconds series
        instead of an instantaneous poll.
        """
        now = perf_counter()
        with self._lock:
            window = max(now - self._fit_epoch, 1e-9)
            loads = []
            for crew in self._crews:
                busy = crew.busy_seconds - self._fit_busy[crew.shard]
                workers = max(crew.workers, 1)
                loads.append(ShardLoad(
                    shard=crew.shard, workers=workers,
                    utilization=min(1.0, busy / (window * workers)),
                ))
        return loads

    def refit(self) -> dict[int, int]:
        """Re-fit crew sizes from the observed window; returns them.

        A no-op (returning current sizes) without a sizer — the static
        configuration. Only ever call from one thread at a time; like
        the paper's master, the single decision maker is what makes
        resizing race-free.
        """
        loads = self.loads()
        now = perf_counter()
        with self._lock:
            self._fit_epoch = now
            for crew in self._crews:
                self._fit_busy[crew.shard] = crew.busy_seconds
        current = {load.shard: load.workers for load in loads}
        if self._sizer is None or self._closed:
            return current
        target = self._sizer.resize(loads)
        for crew in self._crews:
            want = target[crew.shard]
            have = current[crew.shard]
            while have < want:
                self._spawn(crew)
                have += 1
            while have > want:
                self._retire(crew)
                have -= 1
        return target
