"""Load shedding: act on queue depth *before* the deadline ladder does.

The service's degradation ladder reacts per query — a deadline expires,
a rung fails, the submit degrades. Under sustained overload that is too
late: every queued query will expire, and the ladder burns its deadline
discovering that one submit at a time. The shedder consults **queue
depth** (the leading indicator — depth rises before latency does) at
admission and decides per request:

* **admit** — depth below the shed watermark: run the full ladder;
* **degrade** — depth between the watermarks: skip straight to the
  filter-only floor. The caller gets an *unverified candidate* answer
  in O(corpus) integer comparisons instead of joining a queue it would
  time out in; the labeling contract (``status="candidates"``,
  ``verified=False``) keeps the downgrade honest.
* **reject** — depth at or above the reject watermark: fail fast with
  :class:`repro.exceptions.ServiceOverloaded` carrying a
  ``retry_after_ms`` hint estimated from the measured queue drain rate
  (depth ahead of the caller x seconds per drained request).

Decisions are pure (:meth:`LoadShedder.decide` reads a depth, returns a
:class:`ShedDecision`) so tests drive them without a live queue, and
the drain-rate estimator takes an injectable clock for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError

#: Counters the shedder maintains (``service.shed.*`` namespace).
SHED_COUNTERS = (
    "service.shed.admitted",
    "service.shed.degraded",
    "service.shed.rejected",
)

#: Decision kinds, best to worst.
SHED_ACTIONS = ("admit", "degrade", "reject")

#: Exponential smoothing weight of the newest drain observation.
DEFAULT_DRAIN_ALPHA = 0.2

#: Fallback per-request drain estimate before any completion has been
#: observed (a conservative guess beats no hint at all).
DEFAULT_DRAIN_SECONDS = 0.05


@dataclass(frozen=True)
class Watermarks:
    """The two queue-depth thresholds of the shedding policy.

    ``shed_depth`` is where degradation to the filter-only floor
    starts; ``reject_depth`` is where fast rejection starts. Below
    ``shed_depth`` every request is admitted in full.
    """

    shed_depth: int = 32
    reject_depth: int = 128

    def __post_init__(self) -> None:
        if self.shed_depth < 1:
            raise ReproError(
                f"shed_depth must be positive, got {self.shed_depth}"
            )
        if self.reject_depth < self.shed_depth:
            raise ReproError(
                f"reject_depth ({self.reject_depth}) must be >= "
                f"shed_depth ({self.shed_depth})"
            )


class DrainRateEstimator:
    """An EWMA of seconds-per-drained-request, for retry hints.

    Every completed request reports its service seconds through
    :meth:`observe`; :meth:`seconds_per_request` is the smoothed
    estimate and :meth:`retry_after_ms` scales it by the queue depth a
    rejected caller would be waiting behind. Before any observation the
    estimator answers with a fixed conservative default — a weak hint,
    but strictly more useful than none.
    """

    def __init__(self, *, alpha: float = DEFAULT_DRAIN_ALPHA,
                 default_seconds: float = DEFAULT_DRAIN_SECONDS) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ReproError(
                f"alpha must be in (0, 1], got {alpha}"
            )
        if default_seconds <= 0:
            raise ReproError(
                f"default_seconds must be positive, got {default_seconds}"
            )
        self._alpha = alpha
        self._default = default_seconds
        self._ewma: float | None = None
        self._observations = 0

    @property
    def observations(self) -> int:
        """How many completions have been folded in."""
        return self._observations

    def observe(self, seconds: float) -> None:
        """Fold one completed request's service seconds in."""
        if seconds < 0:
            raise ReproError(
                f"service seconds must be non-negative, got {seconds}"
            )
        if self._ewma is None:
            self._ewma = seconds
        else:
            self._ewma += self._alpha * (seconds - self._ewma)
        self._observations += 1

    def seconds_per_request(self) -> float:
        """The smoothed drain estimate (the default until observed)."""
        return self._ewma if self._ewma is not None else self._default

    def retry_after_ms(self, queue_depth: int) -> float:
        """Estimated wait for ``queue_depth`` requests to drain, in ms.

        At least one request's worth — even an empty queue needs the
        in-flight request to finish before a slot frees.
        """
        return max(1, queue_depth) * self.seconds_per_request() * 1000.0


@dataclass(frozen=True)
class ShedDecision:
    """One admission decision, with the evidence it was made on.

    ``action`` is one of :data:`SHED_ACTIONS`; ``retry_after_ms`` is
    set only on ``reject`` (the hint the overload error should carry).
    """

    action: str
    queue_depth: int
    retry_after_ms: float | None = None

    @property
    def admitted(self) -> bool:
        """Whether the request runs the full ladder."""
        return self.action == "admit"


class LoadShedder:
    """Watermark policy + drain estimator + ``service.shed.*`` counters.

    >>> shedder = LoadShedder(Watermarks(shed_depth=2, reject_depth=4))
    >>> shedder.decide(0).action
    'admit'
    >>> shedder.decide(2).action
    'degrade'
    >>> shedder.decide(4).action
    'reject'
    """

    def __init__(self, watermarks: Watermarks = Watermarks(), *,
                 estimator: DrainRateEstimator | None = None) -> None:
        self._watermarks = watermarks
        self._estimator = estimator if estimator is not None \
            else DrainRateEstimator()
        self._counters = dict.fromkeys(SHED_COUNTERS, 0)

    @property
    def watermarks(self) -> Watermarks:
        """The configured thresholds."""
        return self._watermarks

    @property
    def estimator(self) -> DrainRateEstimator:
        """The drain-rate estimator fed by completed requests."""
        return self._estimator

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``service.shed.*`` counters since construction."""
        return dict(self._counters)

    def observe_completion(self, seconds: float) -> None:
        """Report one completed request, refining the drain estimate."""
        self._estimator.observe(seconds)

    def decide(self, queue_depth: int) -> ShedDecision:
        """The admission decision at the given queue depth."""
        marks = self._watermarks
        if queue_depth >= marks.reject_depth:
            self._counters["service.shed.rejected"] += 1
            return ShedDecision(
                action="reject", queue_depth=queue_depth,
                retry_after_ms=self._estimator.retry_after_ms(
                    queue_depth - marks.reject_depth + 1),
            )
        if queue_depth >= marks.shed_depth:
            self._counters["service.shed.degraded"] += 1
            return ShedDecision(action="degrade", queue_depth=queue_depth)
        self._counters["service.shed.admitted"] += 1
        return ShedDecision(action="admit", queue_depth=queue_depth)
