"""Corpus sharding: the dataset split into independently searchable parts.

A deadline that expires mid-scan over one monolithic corpus loses
everything past the abort point. Sharding changes the failure mode:
the corpus is partitioned into ``shards`` independently searchable
pieces, each shard answers in full or not at all, and an expiry only
costs the shards that had not finished — every completed shard's
matches are exact and keepable. With the default round-robin scheme
each shard is a statistically representative sample of the corpus, so
even a heavily truncated answer covers the whole key space rather than
one contiguous slice of it.

Shards execute *serially* here: the abort point is then well-defined
(shard ``i`` died, shards ``0..i-1`` completed) and partial results are
deterministic — the property the service tests pin down with
work-unit :class:`repro.core.deadline.Budget` deadlines. Wall-clock
parallelism across shards belongs to the runner layer, not this one.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable

from repro.core.deadline import Budget, Deadline
from repro.core.indexed import IndexedSearcher
from repro.core.result import Match
from repro.core.searcher import Searcher
from repro.core.sequential import SequentialScanSearcher
from repro.exceptions import DeadlineExceeded, ReproError
from repro.obs.tracing import emit_span
from repro.parallel.partition import partition_dataset

#: Plan kinds a shard can serve, mapping 1:1 onto the library's
#: searchers (see :meth:`ShardedCorpus.searcher_for`).
SHARD_PLAN_KINDS = ("flat", "compiled", "sequential")


class _ShardView:
    """One consistent partitioning: strings, parts, searcher cache.

    :class:`ShardedCorpus` swaps a whole view atomically on refresh
    instead of mutating parts/searchers in place, so a search that
    captured a view at entry keeps a coherent old-or-new picture even
    while a concurrent submit re-partitions. The searcher cache is
    per-view — a dict, safe under CPython's atomic dict ops; two
    threads racing to build the same shard searcher at worst build it
    twice, which is idempotent.
    """

    __slots__ = ("strings", "parts", "searchers")

    def __init__(self, strings: tuple[str, ...],
                 parts: list[tuple[str, ...]]) -> None:
        self.strings = strings
        self.parts = parts
        self.searchers: dict[tuple[str, int], Searcher | None] = {}


class ShardedCorpus:
    """The dataset partitioned into independently searchable shards.

    Parameters
    ----------
    dataset:
        The strings to search (duplicates allowed; every occurrence
        lands in exactly one shard), or a :class:`repro.live.Corpus`.
        A mutable corpus is re-partitioned automatically whenever its
        epoch drifts (see :meth:`refresh`).
    shards:
        Number of partitions (``>= 1``).
    scheme:
        ``"round_robin"`` (default; shards sample the corpus evenly)
        or ``"balanced"`` (contiguous runs, better prefix locality).
    segment_dir:
        Optional directory of per-shard segment files (see
        :mod:`repro.speed`). With it set, the ``"compiled"`` plan
        mmap-loads ``shard-NNNN.seg`` when present and compiles + saves
        it when not — so every cold start after the first is
        near-instant and shards share page-cache memory across
        processes.

    Shard searchers are built lazily, per ``(plan, shard)`` pair, and
    cached — a service that only ever runs the flat plan never pays for
    compiled-scan construction.

    Examples
    --------
    >>> corpus = ShardedCorpus(["Berlin", "Bern", "Ulm"], shards=2)
    >>> corpus.shard_count
    2
    >>> [m.string for m in corpus.search("Berlino", 2)]
    ['Berlin']
    """

    def __init__(self, dataset: Iterable[str], shards: int = 4, *,
                 scheme: str = "round_robin",
                 segment_dir: str | None = None) -> None:
        from repro.live.facade import Corpus

        if shards < 1:
            raise ReproError(
                f"shards must be positive, got {shards}"
            )
        if isinstance(dataset, Corpus):
            self._source: Corpus | None = dataset
            self._source_epoch = dataset.epoch
            strings = dataset.snapshot()
        else:
            self._source = None
            self._source_epoch = 0
            strings = tuple(dataset)
        self._shards = shards
        self._scheme = scheme
        self._segment_dir = segment_dir
        self._refresh_lock = threading.Lock()
        self._view = _ShardView(strings, [
            tuple(part) for part in
            partition_dataset(strings, shards, scheme=scheme)
        ])

    @property
    def strings(self) -> tuple[str, ...]:
        """The full dataset, in input order."""
        return self._view.strings

    @property
    def source(self):
        """The :class:`repro.live.Corpus` behind the shards, if any."""
        return self._source

    def refresh(self) -> bool:
        """Re-partition when a live source corpus drifted.

        Polled at the top of every :meth:`search` (and usable directly
        by owners such as :class:`repro.service.Service`): when the
        source's epoch moved since the last snapshot, the strings are
        re-snapshotted, re-partitioned into a fresh :class:`_ShardView`
        (with an empty searcher cache) and the view is swapped in
        atomically. Returns whether a refresh happened.

        Safe under concurrent submits: a lock serializes competing
        refreshes (with a double-check so the losers return cheaply),
        and readers only ever see a complete old or new view — never
        parts from one partitioning and searchers from another. The
        epoch is captured *before* the snapshot, so a mutation racing
        the snapshot at worst triggers one redundant refresh later,
        never a missed one.
        """
        if self._source is None or not self._source.mutable:
            return False
        if self._source.epoch == self._source_epoch:
            return False
        with self._refresh_lock:
            epoch = self._source.epoch
            if epoch == self._source_epoch:
                return False
            strings = self._source.snapshot()
            self._view = _ShardView(strings, [
                tuple(part) for part in
                partition_dataset(strings, self._shards,
                                  scheme=self._scheme)
            ])
            self._source_epoch = epoch
        return True

    @property
    def shard_count(self) -> int:
        """Number of partitions."""
        return len(self._view.parts)

    @property
    def scheme(self) -> str:
        """The partitioning scheme in use."""
        return self._scheme

    def shard(self, index: int) -> tuple[str, ...]:
        """The strings of one shard."""
        return self._view.parts[index]

    def searcher_for(self, plan: str, index: int) -> Searcher | None:
        """The (cached) searcher serving ``plan`` on shard ``index``.

        ``None`` for an empty shard — there is nothing to search and
        some structures cannot be built over zero strings.
        """
        return self._view_searcher(self._view, plan, index)

    def _view_searcher(self, view: _ShardView, plan: str,
                       index: int) -> Searcher | None:
        """Build (or fetch) ``view``'s searcher for one (plan, shard)."""
        if plan not in SHARD_PLAN_KINDS:
            raise ReproError(
                f"unknown shard plan {plan!r}; expected one of "
                f"{SHARD_PLAN_KINDS}"
            )
        key = (plan, index)
        if key in view.searchers:
            return view.searchers[key]
        part = view.parts[index]
        searcher: Searcher | None
        if not part:
            searcher = None
        elif plan == "flat":
            searcher = IndexedSearcher(part, index="flat")
        elif plan == "compiled":
            from repro.scan.searcher import CompiledScanSearcher

            # A live source re-partitions on drift; stale per-shard
            # segment files would then serve deleted strings, so the
            # segment path only applies to immutable sources.
            live_source = (self._source is not None
                           and self._source.mutable)
            if self._segment_dir is not None and not live_source:
                import os

                from repro.speed import load_or_build_corpus_segment

                corpus = load_or_build_corpus_segment(
                    part, os.path.join(self._segment_dir,
                                       f"shard-{index:04d}.seg"))
                searcher = CompiledScanSearcher(corpus)
            else:
                searcher = CompiledScanSearcher(part)
        else:
            searcher = SequentialScanSearcher(
                part, kernel="bitparallel", order="length"
            )
        view.searchers[key] = searcher
        return searcher

    def search(self, query: str, k: int, *, plan: str = "flat",
               deadline: Deadline | Budget | None = None
               ) -> tuple[Match, ...]:
        """All dataset strings within distance ``k``, merged over shards.

        Shards run serially, all against the *shared* ``deadline``. On
        expiry the raised :class:`DeadlineExceeded` carries, as
        ``partial``, the merged matches of every *completed* shard plus
        whatever the lagging shard had verified — still a strict subset
        of the exact answer — with ``scope="shards"`` and
        ``completed``/``total`` counting shards.
        """
        self.refresh()
        # One view captured at entry: a concurrent refresh swapping
        # self._view mid-loop cannot mix partitionings in this search.
        view = self._view
        merged: list[tuple[Match, ...]] = []
        total = len(view.parts)
        for index in range(total):
            # Pre-check between shards: a shard small enough never to
            # hit an amortized poll must not run on a dead deadline.
            if deadline is not None and deadline.spend(0):
                raise DeadlineExceeded(
                    f"sharded {plan} search for {query!r} (k={k}) "
                    f"found its deadline expired before shard {index} "
                    f"of {total}",
                    partial=merge_matches(merged), scope="shards",
                    completed=index, total=total,
                )
            searcher = self._view_searcher(view, plan, index)
            if searcher is None:
                continue
            started = time.perf_counter()
            try:
                row = searcher.search(query, k, deadline=deadline)
            except DeadlineExceeded as error:
                emit_span(f"shard[{index}]",
                          time.perf_counter() - started,
                          {"plan": plan, "outcome": "deadline"})
                partial = merge_matches(merged + [tuple(error.partial)])
                raise DeadlineExceeded(
                    f"sharded {plan} search for {query!r} (k={k}) "
                    f"exceeded its deadline on shard {index} of {total} "
                    f"({len(partial)} verified matches kept)",
                    partial=partial, scope="shards",
                    completed=index, total=total,
                ) from error
            emit_span(f"shard[{index}]", time.perf_counter() - started,
                      {"plan": plan})
            merged.append(tuple(row))
        return merge_matches(merged)


def merge_matches(rows: Iterable[Iterable[Match]]) -> tuple[Match, ...]:
    """Merge per-shard match rows into one deduplicated, sorted row.

    A string duplicated in the dataset may land in several shards and
    match in each; the merge keeps one entry per string. Distances to
    the same string are equal by definition, but the minimum is kept
    anyway so a mixed-verification merge stays conservative.
    """
    best: dict[str, int] = {}
    for row in rows:
        for match in row:
            prior = best.get(match.string)
            if prior is None or match.distance < prior:
                best[match.string] = match.distance
    return tuple(sorted(
        Match(string, distance) for string, distance in best.items()
    ))
