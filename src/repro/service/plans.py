"""Degradation plans: the rungs of the service's fallback ladder.

A resilient service does not have one way to answer a query — it has an
ordered ladder of plans, each cheaper (or more robust) than the one
above, and walks down when a rung fails or its deadline expires:

1. **flat** — the compiled flat-trie index, the fastest exact path in
   the index regime;
2. **compiled** — the compiled-corpus batch scan, exact and immune to
   trie-shaped pathologies (deep common prefixes, huge alphabets);
3. **filter-only** — the last resort: a k-relaxed, length-filter-only
   pass that returns *unverified candidates*. It never computes an
   edit distance, costs O(corpus) integer comparisons, and by design
   ignores the deadline — the bottom rung must always produce an
   answer, and its cost is bounded and tiny.

Every plan returns a :class:`PlanResult` that says whether its matches
are *verified* (true edit distances, subset of the exact answer) or
mere candidates (superset guarantees only). The service surfaces that
flag untouched so a caller can never mistake a candidate set for a
verified one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deadline import Budget, Deadline
from repro.core.result import Match
from repro.service.sharding import SHARD_PLAN_KINDS, ShardedCorpus

__all__ = [
    "PlanResult",
    "BackendPlan",
    "FilterOnlyPlan",
    "default_ladder",
]


@dataclass(frozen=True)
class PlanResult:
    """One plan's answer.

    Attributes
    ----------
    plan:
        The producing plan's name.
    matches:
        Sorted, deduplicated matches.
    verified:
        ``True`` when every match carries its exact edit distance and
        the set is exactly the ``<= k`` answer; ``False`` for
        candidate sets, whose ``distance`` fields are lower bounds.
    """

    plan: str
    matches: tuple[Match, ...]
    verified: bool


@dataclass(frozen=True)
class BackendPlan:
    """An exact rung: one shard-plan kind run over the sharded corpus.

    ``kind`` is one of :data:`repro.service.sharding.SHARD_PLAN_KINDS`.
    Raises :class:`repro.exceptions.DeadlineExceeded` (with merged
    per-shard partials) when the shared deadline expires.
    """

    kind: str

    def __post_init__(self) -> None:
        if self.kind not in SHARD_PLAN_KINDS:
            from repro.exceptions import ReproError

            raise ReproError(
                f"unknown backend plan kind {self.kind!r}; expected "
                f"one of {SHARD_PLAN_KINDS}"
            )

    @property
    def name(self) -> str:
        return self.kind

    def run(self, corpus: ShardedCorpus, query: str, k: int,
            deadline: Deadline | Budget | None) -> PlanResult:
        matches = corpus.search(query, k, plan=self.kind,
                                deadline=deadline)
        return PlanResult(plan=self.name, matches=matches, verified=True)


@dataclass(frozen=True)
class FilterOnlyPlan:
    """The bottom rung: k-relaxed length filtering, no verification.

    Admits every dataset string whose length differs from the query's
    by at most ``k + relax`` — a sound *superset* of the exact answer
    (length difference lower-bounds edit distance), relaxed by
    ``relax`` extra edits so borderline strings survive for a later
    verification pass. The reported ``distance`` of each candidate is
    its length-difference lower bound, not an edit distance.

    Deliberately deadline-blind: it is the plan of last resort, runs in
    O(corpus) integer comparisons, and must always return.
    """

    relax: int = 0

    @property
    def name(self) -> str:
        return "filter-only"

    def run(self, corpus: ShardedCorpus, query: str, k: int,
            deadline: Deadline | Budget | None) -> PlanResult:
        bound = k + self.relax
        length = len(query)
        candidates: dict[str, int] = {}
        for string in corpus.strings:
            gap = len(string) - length
            if gap < 0:
                gap = -gap
            if gap <= bound and string not in candidates:
                candidates[string] = gap
        matches = tuple(sorted(
            Match(string, gap) for string, gap in candidates.items()
        ))
        return PlanResult(plan=self.name, matches=matches, verified=False)


def default_ladder() -> tuple[BackendPlan, BackendPlan, FilterOnlyPlan]:
    """The standard three-rung ladder: flat → compiled → filter-only."""
    return (BackendPlan("flat"), BackendPlan("compiled"),
            FilterOnlyPlan())
