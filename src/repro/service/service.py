"""The deadline-aware resilient query service.

:class:`Service` is the operational wrapper the library was missing:
where :class:`repro.core.engine.SearchEngine` answers "which algorithm
should serve this data", the service answers "what happens when the
answer must arrive *by then*". It composes four mechanisms:

* **admission control** — a bounded in-flight slot pool; a submit that
  finds no free slot is rejected immediately with
  :class:`repro.exceptions.ServiceOverloaded` instead of queueing
  unboundedly (fail fast beats fail slow);
* **sharded execution** — queries run over a
  :class:`repro.service.sharding.ShardedCorpus`, so an expiring
  deadline only forfeits the shards that had not finished;
* **a degradation ladder** — an ordered tuple of plans
  (:mod:`repro.service.plans`); when a rung raises, the service backs
  off (bounded exponential, capped by the remaining wall-clock
  deadline) and tries the next rung, down to a filter-only pass that
  always answers;
* **observability** — ``service.*`` counters and per-attempt spans
  through :mod:`repro.obs`, and a :meth:`Service.report` that emits
  the standard validated :class:`repro.obs.SearchReport` with
  ``mode="service"``.

The result is always a :class:`ServiceResult` that says *exactly* what
the caller got: ``complete`` (exact, first rung), ``degraded`` (exact,
lower rung), ``partial`` (verified subset rescued from an expiry) or
``candidates`` (unverified filter-only superset). Verified flags are
never inflated — a partial or candidate answer can be acted on, but
cannot be mistaken for the full exact answer.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.deadline import Budget, Deadline
from repro.core.planner import Planner, PlannerPolicy
from repro.core.request import SearchOptions, SearchRequest, as_request
from repro.core.result import Match
from repro.exceptions import (
    DeadlineExceeded,
    PartialResultError,
    ReproError,
    ServiceOverloaded,
)
from repro.obs.events import EventLog
from repro.obs.hist import Histogram
from repro.obs.recorder import FlightRecorder, QueryExemplar
from repro.obs.registry import NULL, MetricsRegistry
from repro.obs.report import SearchReport, build_report
from repro.obs.tracing import (
    Tracer,
    current_context,
    current_trace_id,
    trace_span,
)
from repro.service.plans import default_ladder
from repro.service.sharding import ShardedCorpus

#: Result statuses, best to worst.
SERVICE_STATUSES = ("complete", "degraded", "partial", "candidates")

#: Counters the service reports (``service.*`` namespace; open
#: counters section of the standard report schema).
SERVICE_COUNTERS = (
    "service.submitted",
    "service.accepted",
    "service.rejected",
    "service.completed",
    "service.degraded",
    "service.partial",
    "service.candidates",
    "service.deadline_expirations",
    "service.retries",
    "service.attempts",
    "service.corpus_refreshes",
)

#: Default bounded-queue capacity (concurrent in-flight submits).
DEFAULT_CAPACITY = 8

#: Default extra attempts per rung after the first.
DEFAULT_RETRY_BUDGET = 1

#: Exponential backoff: first retry sleeps ``base``, then doubles.
DEFAULT_BACKOFF_BASE = 0.005

#: Backoff never exceeds this many seconds per sleep.
DEFAULT_BACKOFF_CAP = 0.05


@dataclass(frozen=True)
class ServiceResult:
    """What one submit produced, honestly labeled.

    Attributes
    ----------
    query:
        The submitted query.
    k:
        The edit-distance threshold.
    status:
        One of :data:`SERVICE_STATUSES` — ``complete`` (exact answer
        from the preferred rung), ``degraded`` (exact answer from a
        lower rung), ``partial`` (verified subset of the exact answer,
        rescued from a deadline expiry) or ``candidates`` (unverified
        filter-only superset; distances are lower bounds).
    matches:
        Sorted, deduplicated matches.
    verified:
        ``True`` iff every match carries a true edit distance
        ``<= k``. ``partial`` results are verified but incomplete.
    plan:
        Name of the plan that produced the matches (``""`` when an
        expiry left only merged partials).
    attempts:
        Total plan executions performed for this submit.
    """

    query: str
    k: int
    status: str
    matches: tuple[Match, ...]
    verified: bool
    plan: str
    attempts: int

    @property
    def complete(self) -> bool:
        """Whether the matches are the full exact answer."""
        return self.status in ("complete", "degraded")


class Service:
    """Deadline-aware similarity-search service over one dataset.

    Parameters
    ----------
    dataset:
        The strings to serve, a prebuilt :class:`ShardedCorpus`, or a
        :class:`repro.live.Corpus` (frozen or live). A live corpus is
        tracked by epoch: every submit re-shards and refreshes the
        planner statistics when the corpus drifted since the last one.
    shards:
        Shard count when building the corpus here.
    capacity:
        Maximum concurrent in-flight submits; the bounded queue. A
        submit beyond it raises :class:`ServiceOverloaded` immediately.
    retry_budget:
        Extra attempts per rung after the first, for transient errors.
        Deadline expiry never retries the same rung — it degrades.
    backoff_base / backoff_cap:
        Bounded exponential backoff between retries, in seconds; each
        sleep is additionally capped by the remaining wall-clock
        deadline.
    plans:
        The degradation ladder, best rung first. Defaults to
        :func:`repro.service.plans.default_ladder`. Injectable for
        tests (any object with ``name`` and
        ``run(corpus, query, k, deadline)``).
    scheme:
        Dataset partition scheme (see :class:`ShardedCorpus`).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` for spans; the
        always-on ``service.*`` counters do not need it.
    recorder:
        Optional :class:`repro.obs.FlightRecorder`. Every degradation
        event — deadline expiry, retry, overload rejection, degraded
        or partial answer — force-records an exemplar (the ladder's
        audit trail), and slow complete submits compete for the
        slowlog like any engine query. Exemplars carry the ambient
        trace_id, the planner's chosen rung and (when the gateway
        stamped one into baggage) the shed decision.
    tracer:
        Optional :class:`repro.obs.Tracer`. When a submit arrives with
        no ambient trace (standalone use, outside the gateway), the
        service mints a root context on it so the ladder still produces
        a span tree; submits already inside a trace (the gateway's)
        just add child spans to it.
    events:
        Optional :class:`repro.obs.EventLog` receiving ``admission``
        and ``ladder_rung`` lines, each stamped with the ambient
        trace_id.
    sleep:
        Injectable sleep function (tests pass a recorder).

    Examples
    --------
    >>> service = Service(["Berlin", "Bern", "Ulm"], shards=2)
    >>> result = service.submit("Berlino", 2)
    >>> result.status
    'complete'
    >>> [m.string for m in result.matches]
    ['Berlin']
    """

    def __init__(self, dataset: Iterable[str] | ShardedCorpus, *,
                 shards: int = 4,
                 capacity: int = DEFAULT_CAPACITY,
                 retry_budget: int = DEFAULT_RETRY_BUDGET,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 plans: Sequence | None = None,
                 scheme: str = "round_robin",
                 metrics: MetricsRegistry | None = None,
                 recorder: FlightRecorder | None = None,
                 tracer: Tracer | None = None,
                 events: EventLog | None = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if capacity < 1:
            raise ReproError(
                f"capacity must be positive, got {capacity}"
            )
        if retry_budget < 0:
            raise ReproError(
                f"retry_budget must be >= 0, got {retry_budget}"
            )
        if isinstance(dataset, ShardedCorpus):
            self._corpus = dataset
        else:
            self._corpus = ShardedCorpus(dataset, shards, scheme=scheme)
        self._plans = tuple(plans) if plans is not None \
            else default_ladder()
        if not self._plans:
            raise ReproError("the plan ladder must have at least one rung")
        self._capacity = capacity
        self._retry_budget = retry_budget
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._slots = threading.BoundedSemaphore(capacity)
        self._in_flight = 0
        self._metrics = metrics if metrics is not None else NULL
        self._recorder = recorder
        self._tracer = tracer
        self._events = events
        self._sleep = sleep
        self._counters = dict.fromkeys(SERVICE_COUNTERS, 0)
        self._hists = {"service.submit_seconds": Histogram()}
        self._counters_lock = threading.Lock()
        self._last_seconds = 0.0
        self._planner: Planner | None = None
        self._planner_lock = threading.Lock()

    @property
    def corpus(self) -> ShardedCorpus:
        """The sharded data side."""
        return self._corpus

    @property
    def capacity(self) -> int:
        """The bounded queue's size."""
        return self._capacity

    @property
    def in_flight(self) -> int:
        """Submits currently holding an admission slot."""
        return self._in_flight

    @property
    def plans(self) -> tuple:
        """The degradation ladder, best rung first."""
        return self._plans

    @property
    def planner(self) -> Planner:
        """The cost-model planner ordering the ladder's rungs.

        Built lazily (the ANALYZE pass walks the whole corpus once);
        shared by every submit, so its online corrections accumulate
        across the service's lifetime.
        """
        with self._planner_lock:
            if self._planner is None:
                self._planner = Planner(self._corpus.strings)
            return self._planner

    def attach_metrics(self, registry: MetricsRegistry | None) -> None:
        """Attach (or detach, with ``None``) a span/timer registry."""
        self._metrics = registry if registry is not None else NULL

    def attach_recorder(self, recorder: FlightRecorder | None) -> None:
        """Attach (or detach, with ``None``) a flight recorder."""
        self._recorder = recorder

    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Attach (or detach, with ``None``) a standalone-root tracer."""
        self._tracer = tracer

    def attach_events(self, events: EventLog | None) -> None:
        """Attach (or detach, with ``None``) an operational event log."""
        self._events = events

    def _emit_event(self, kind: str, **fields) -> None:
        if self._events is not None:
            self._events.emit(kind, **fields)

    @property
    def recorder(self) -> FlightRecorder | None:
        """The attached flight recorder (``None`` unless asked)."""
        return self._recorder

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``service.*`` counters since construction."""
        with self._counters_lock:
            return dict(self._counters)

    def hists_snapshot(self) -> dict[str, Histogram]:
        """Cumulative submit-latency histograms since construction."""
        with self._counters_lock:
            return {name: hist.copy()
                    for name, hist in self._hists.items()}

    def estimate_retry_after_ms(self) -> float | None:
        """How long a rejected caller should wait before retrying.

        Estimated from the queue drain rate: with every slot taken, one
        frees after roughly a mean submit's worth of work, so the mean
        of the cumulative ``service.submit_seconds`` histogram is the
        expected wait for the next free slot. ``None`` until at least
        one submit has completed (no drain rate to extrapolate from).
        """
        with self._counters_lock:
            hist = self._hists["service.submit_seconds"]
            if not hist.count:
                return None
            return hist.mean() * 1000.0

    def _count(self, name: str, value: int = 1) -> None:
        with self._counters_lock:
            self._counters[name] += value
        self._metrics.inc(name, value)

    def _sync_live_corpus(self) -> None:
        """Track a live source corpus: re-shard + refresh the planner.

        When the service serves a mutable :class:`repro.live.Corpus`,
        each submit first lets the sharded corpus re-snapshot on epoch
        drift and, when it did, refreshes the planner's ANALYZE
        statistics so the ladder ordering keeps pricing the corpus
        that actually exists. Counted under
        ``service.corpus_refreshes``.
        """
        if not self._corpus.refresh():
            return
        self._count("service.corpus_refreshes")
        with self._planner_lock:
            if self._planner is not None:
                self._planner.refresh_statistics(self._corpus.strings)

    def _record_event(self, query: str, k: int, seconds: float,
                      kind: str, *, matches: int = -1,
                      note: str = "") -> None:
        """Force-record a ladder event on the flight recorder, if any.

        Forced records bypass the latency threshold — every degrade,
        retry, expiry and overload leaves an exemplar; the recorder's
        ring is bounded, so this stays safe always-on.
        """
        recorder = self._recorder
        if recorder is not None:
            recorder.record(QueryExemplar(
                query=query, k=k, backend="service[ladder]",
                seconds=seconds, matches=matches, kind=kind, note=note,
                trace_id=current_trace_id(),
            ), force=True)

    # ----------------------------------------------------------------

    def submit(self, query: str | SearchRequest, k: int | None = None,
               *, deadline: Deadline | Budget | None = None,
               backend: str | None = None,
               options: SearchOptions | None = None,
               plan: PlannerPolicy | None = None) -> ServiceResult:
        """Answer one query through admission, ladder and deadline.

        Accepts the legacy positional form or a single
        :class:`SearchRequest`. ``plan=`` takes a
        :class:`repro.core.planner.PlannerPolicy` hint for the ladder
        ordering (the ``backend=`` string spelling is deprecated); by
        default the cost-model planner picks the first rung per query.
        Raises :class:`ServiceOverloaded` when all ``capacity`` slots
        are taken, and :class:`PartialResultError` when the answer is
        not the full exact one and ``options.allow_partial`` is
        ``False`` (the refused result rides on the error's ``result``
        attribute).
        """
        request = as_request(query, k, deadline=deadline,
                             backend=backend, options=options,
                             plan=plan)
        if request.is_batch:
            raise ReproError(
                "Service.submit answers one query per call; submit "
                "batch queries one at a time"
            )
        self._count("service.submitted")
        self._sync_live_corpus()
        if not self._slots.acquire(blocking=False):
            self._count("service.rejected")
            self._record_event(
                request.query, request.k, 0.0, "overload",
                note=f"rejected at capacity {self._capacity}",
            )
            self._emit_event("admission", outcome="rejected",
                             in_flight=self._capacity,
                             capacity=self._capacity)
            retry_after = self.estimate_retry_after_ms()
            hint = (f"; retry in ~{retry_after:.0f}ms"
                    if retry_after is not None else "")
            raise ServiceOverloaded(
                f"service at capacity ({self._capacity} in flight); "
                f"submit rejected{hint}",
                capacity=self._capacity, in_flight=self._capacity,
                retry_after_ms=retry_after,
            )
        self._in_flight += 1
        started = time.perf_counter()
        try:
            self._count("service.accepted")
            self._emit_event("admission", outcome="accepted",
                             in_flight=self._in_flight,
                             capacity=self._capacity)
            with self._metrics.trace("service.submit"):
                result = self._traced_ladder(request, started)
        finally:
            self._in_flight -= 1
            self._slots.release()
            self._last_seconds = time.perf_counter() - started
            with self._counters_lock:
                self._hists["service.submit_seconds"].record(
                    self._last_seconds)
        recorder = self._recorder
        if recorder is not None and result.status == "complete" \
                and recorder.interested(self._last_seconds):
            # Non-complete outcomes already left forced event
            # exemplars inside the ladder; complete submits compete
            # for the slowlog on latency like any engine query.
            recorder.record(QueryExemplar(
                query=request.query, k=request.k,
                backend="service[ladder]", seconds=self._last_seconds,
                matches=len(result.matches),
                stages={"service.submit": self._last_seconds},
                note=f"plan={result.plan}",
                trace_id=current_trace_id(),
            ))
        if not result.complete and not request.options.allow_partial:
            raise PartialResultError(
                f"query {request.query!r} (k={request.k}) produced a "
                f"{result.status} result and allow_partial is off",
                result=result,
            )
        return result

    def _ordered_plans(self, request: SearchRequest) -> tuple:
        """The ladder, reordered for this request.

        A forced :class:`PlannerPolicy` strategy promotes its rung to
        the front, exactly like the old ``backend=`` hints. Otherwise
        the cost-model planner scores the request's shape and promotes
        the rung matching its choice — the ladder stays a *degradation*
        ladder (every rung below remains reachable), the planner only
        decides where it starts.
        """
        strategy = request.policy.strategy
        if strategy is None:
            qplan = self.planner.plan_queries(
                [request.query], request.k,
                deadline=request.deadline is not None,
            )
            strategy = qplan.strategy
        hint = {"indexed": "flat", "qgram": "flat",
                "compiled": "compiled",
                "sequential": "sequential"}.get(strategy or "")
        if hint is None:
            return self._plans
        promoted = [plan for plan in self._plans
                    if getattr(plan, "name", "") == hint]
        rest = [plan for plan in self._plans
                if getattr(plan, "name", "") != hint]
        return tuple(promoted + rest)

    def _backoff(self, retry: int,
                 deadline: Deadline | Budget | None) -> None:
        """Sleep before a retry: bounded exponential, deadline-capped."""
        delay = min(self._backoff_cap,
                    self._backoff_base * (2 ** retry))
        if isinstance(deadline, Deadline):
            remaining = deadline.remaining()
            if remaining <= 0:
                return
            delay = min(delay, remaining)
        if delay > 0:
            self._sleep(delay)

    def _traced_ladder(self, request: SearchRequest,
                       started: float) -> ServiceResult:
        """Run the ladder inside a request span.

        Standalone submits (no gateway upstream) mint their own root on
        the attached tracer so the ladder still yields a span tree;
        submits already inside an ambient trace nest under it instead.
        """
        if self._tracer is not None and current_context() is None:
            with self._tracer.root("service.submit"):
                return self._run_ladder(request, started)
        with trace_span("service.submit"):
            return self._run_ladder(request, started)

    def _ladder_note(self, plans: tuple) -> str:
        """The planner/shed context every ladder exemplar carries.

        Names the rung the planner chose to start from; when the
        gateway stamped its shed decision into the request baggage
        (``shed=none`` / ``shed=degrade`` ...), that rides along too —
        a slowlog line then explains both *why* the ladder started
        where it did and what admission pressure shaped the request.
        """
        chosen = getattr(plans[0], "name", plans[0].__class__.__name__)
        note = f"chosen={chosen}"
        context = current_context()
        shed = (context.baggage_value("shed", "")
                if context is not None else "")
        if shed:
            note += f", shed={shed}"
        return note

    def _run_ladder(self, request: SearchRequest,
                    started: float) -> ServiceResult:
        query = request.query
        k = request.k
        deadline = request.deadline
        plans = self._ordered_plans(request)
        ladder_note = self._ladder_note(plans)
        best_partial: tuple[Match, ...] | None = None
        attempts = 0
        for rung, plan in enumerate(plans):
            name = getattr(plan, "name", plan.__class__.__name__)
            for retry in range(self._retry_budget + 1):
                attempts += 1
                self._count("service.attempts")
                try:
                    with self._metrics.trace(f"service.attempt[{name}]"), \
                            trace_span(f"service.attempt[{name}]",
                                       {"rung": str(rung),
                                        "retry": str(retry)}):
                        outcome = plan.run(self._corpus, query, k,
                                           deadline)
                except DeadlineExceeded as error:
                    self._count("service.deadline_expirations")
                    partial = tuple(error.partial)
                    if best_partial is None \
                            or len(partial) > len(best_partial):
                        best_partial = partial
                    self._record_event(
                        query, k, time.perf_counter() - started,
                        "deadline", matches=len(partial),
                        note=f"plan={name}, rescued {len(partial)} "
                             f"partial matches ({ladder_note})",
                    )
                    self._emit_event("ladder_rung", rung=rung,
                                     plan=name, outcome="deadline",
                                     rescued=len(partial))
                    break  # expiry degrades; retrying the rung cannot help
                except ReproError:
                    if retry >= self._retry_budget:
                        self._emit_event("ladder_rung", rung=rung,
                                         plan=name, outcome="error")
                        break
                    self._count("service.retries")
                    self._record_event(
                        query, k, time.perf_counter() - started,
                        "retry",
                        note=f"plan={name}, retry {retry + 1} of "
                             f"{self._retry_budget} ({ladder_note})",
                    )
                    self._backoff(retry, deadline)
                    continue
                if not outcome.verified:
                    status, counter = "candidates", "service.candidates"
                elif rung == 0:
                    status, counter = "complete", "service.completed"
                else:
                    status, counter = "degraded", "service.degraded"
                self._count(counter)
                self._emit_event("ladder_rung", rung=rung, plan=name,
                                 outcome=status,
                                 matches=len(outcome.matches))
                if status != "complete":
                    self._record_event(
                        query, k, time.perf_counter() - started,
                        status, matches=len(outcome.matches),
                        note=f"plan={outcome.plan}, rung {rung} "
                             f"({ladder_note})",
                    )
                return ServiceResult(
                    query=query, k=k, status=status,
                    matches=tuple(outcome.matches),
                    verified=outcome.verified,
                    plan=outcome.plan, attempts=attempts,
                )
        # Every rung failed. Surface the best verified partial (it is
        # still a strict subset of the exact answer).
        self._count("service.partial")
        matches = best_partial if best_partial is not None else ()
        self._record_event(
            query, k, time.perf_counter() - started, "partial",
            matches=len(matches),
            note=f"every rung failed after {attempts} attempts "
                 f"({ladder_note})",
        )
        self._emit_event("ladder_rung", rung=len(plans), plan="",
                         outcome="partial", matches=len(matches))
        return ServiceResult(
            query=query, k=k, status="partial",
            matches=matches, verified=True, plan="", attempts=attempts,
        )

    # ----------------------------------------------------------------

    def report(self, *, queries: int = 1, k: int = 0,
               matches: int = 0) -> SearchReport:
        """A standard validated report of the service's counters.

        ``mode="service"``; the ``counters`` section holds the
        cumulative ``service.*`` series and the ``histograms`` section
        summarizes the cumulative ``service.submit_seconds``
        distribution. Benchmarks embed this in their ``BENCH_*.json``
        records like any engine report.
        """
        return build_report(
            backend="service",
            engine="service[ladder]",
            mode="service",
            queries=queries,
            k=k,
            matches=matches,
            seconds=self._last_seconds,
            counters=self.counters_snapshot(),
            histograms=self.hists_snapshot(),
            choice_backend="service",
            choice_reason=(
                f"degradation ladder over {self._corpus.shard_count} "
                f"shards: " + " -> ".join(
                    getattr(plan, "name", "?") for plan in self._plans)
            ),
        )
