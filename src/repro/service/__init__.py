"""repro.service — the deadline-aware resilient query service.

The operational layer over the library's engines: unified
:class:`repro.core.request.SearchRequest` submits, wall-clock
(:class:`repro.core.deadline.Deadline`) or work-unit
(:class:`repro.core.deadline.Budget`) deadlines with honest partial
results, a sharded corpus so expiries only forfeit lagging shards, a
degradation ladder down to a filter-only pass that always answers, and
bounded admission control. See docs/SERVICE.md for the full contract.
"""

from repro.service.plans import (
    BackendPlan,
    FilterOnlyPlan,
    PlanResult,
    default_ladder,
)
from repro.service.service import (
    DEFAULT_CAPACITY,
    SERVICE_COUNTERS,
    SERVICE_STATUSES,
    Service,
    ServiceResult,
)
from repro.service.sharding import (
    SHARD_PLAN_KINDS,
    ShardedCorpus,
    merge_matches,
)

__all__ = [
    "Service",
    "ServiceResult",
    "ShardedCorpus",
    "merge_matches",
    "BackendPlan",
    "FilterOnlyPlan",
    "PlanResult",
    "default_ladder",
    "SERVICE_COUNTERS",
    "SERVICE_STATUSES",
    "SHARD_PLAN_KINDS",
    "DEFAULT_CAPACITY",
]
