"""The live-corpus layer: LSM write path + the unified Corpus facade.

* :class:`Corpus` — the one way to acquire data: ``Corpus.frozen(...)``
  (compile once), ``Corpus.live(...)`` (mutable, LSM-backed) or
  ``Corpus.open(path)`` (restore from disk). Engines, services, shards
  and the CLI all accept it.
* :class:`LiveCorpus` — the write path itself: memtable, tombstone
  multiset, immutable compiled segments, size-tiered compaction
  (inline or background), epoch + mutation events, deadline-threaded
  fan-out search.

See ``docs/LIVE.md`` for the architecture, compaction policy and the
API migration table.
"""

from __future__ import annotations

from repro.live.corpus import (
    COMPACTION_MODES,
    DEFAULT_FANOUT,
    DEFAULT_FLUSH_THRESHOLD,
    MANIFEST_NAME,
    CorpusEvent,
    LiveCorpus,
    LiveSegment,
)
from repro.live.facade import Corpus

__all__ = [
    "COMPACTION_MODES",
    "DEFAULT_FANOUT",
    "DEFAULT_FLUSH_THRESHOLD",
    "MANIFEST_NAME",
    "Corpus",
    "CorpusEvent",
    "LiveCorpus",
    "LiveSegment",
]
