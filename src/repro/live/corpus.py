"""The LSM write path: a memtable in front of immutable compiled segments.

The compiled engines (:class:`repro.scan.CompiledCorpus`,
:class:`repro.index.flat.FlatTrie`) are freeze-once by design — every
data-side cost is paid at compile time, which is exactly why they are
fast and exactly why they cannot absorb a write. :class:`LiveCorpus`
keeps them that way and adds mutability *around* them, the way
log-structured merge trees do:

* a small mutable **memtable** (a plain multiset) absorbs
  :meth:`~LiveCorpus.insert`; once it holds ``flush_threshold``
  distinct strings it is compiled into a fresh immutable segment;
* **deletes** cancel a pending memtable copy when one exists and
  otherwise land in a **tombstone multiset** — the segment files are
  never touched;
* **compaction** merges the ``fanout`` smallest same-level segments
  into one exponentially larger segment, dropping dead strings
  (tombstone purging) during the single O(n) pass. It can run inline
  (deterministic, for tests) or on a background thread that only takes
  the corpus lock for the final segment-list swap, so searches are
  never blocked for the duration of a merge;
* **search** fans out over the memtable plus every segment and merges
  the per-part rows with the shard-merge machinery
  (:func:`repro.service.sharding.merge_matches`), threading one shared
  deadline through all parts exactly like
  :class:`repro.service.ShardedCorpus` threads it through shards;
* every mutation bumps an **epoch** and notifies subscribers, which is
  how the traffic cache (:meth:`repro.traffic.cache.ResultCache.invalidate`)
  and the planner's statistics stay honest as the corpus drifts.

With a ``segment_dir``, flushed and compacted segments are persisted
through :mod:`repro.speed` (the RSEG flat-binary format, mmap-loaded on
reopen) plus a small JSON manifest, so :meth:`LiveCorpus.open` restores
the corpus near-instantly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.deadline import Budget, Deadline
from repro.core.result import Match
from repro.distance.banded import check_threshold, edit_distance_bounded
from repro.exceptions import DeadlineExceeded, ReproError, SegmentError
from repro.obs.events import EventLog
from repro.obs.registry import NULL, MetricsRegistry
from repro.obs.tracing import current_trace, emit_span, trace_span, \
    use_trace
from repro.scan.corpus import CompiledCorpus
from repro.scan.searcher import CompiledScanSearcher
from repro.service.sharding import merge_matches

#: Cumulative counters the live corpus maintains once observability is
#: attached (``live.*`` namespace; see :meth:`LiveCorpus.attach_observability`).
LIVE_COUNTERS = (
    "live.inserts",
    "live.deletes",
    "live.flushes",
    "live.compactions",
    "live.tombstones_purged",
    "live.searches",
    "live.segments_visited",
)

#: Distinct memtable strings that trigger an automatic flush.
DEFAULT_FLUSH_THRESHOLD = 256

#: Same-level segments that trigger a compaction (the size-tier ratio:
#: each level's segments are ~``fanout`` times larger than the last).
DEFAULT_FANOUT = 4

#: Compaction execution modes.
COMPACTION_MODES = ("inline", "background")

#: Manifest file name inside a live segment directory.
MANIFEST_NAME = "MANIFEST.json"

#: Manifest format version (bumped on incompatible layout changes).
MANIFEST_FORMAT = 1


@dataclass(frozen=True)
class CorpusEvent:
    """One mutation notification delivered to subscribers.

    Attributes
    ----------
    kind:
        ``"insert"``, ``"delete"``, ``"flush"`` or ``"compact"``.
    string:
        The mutated string for insert/delete events; ``None`` for
        flush/compact (they change layout, not logical contents).
    epoch:
        The corpus epoch after the mutation.
    """

    kind: str
    string: str | None
    epoch: int


@dataclass(frozen=True)
class LiveSegment:
    """One immutable compiled segment of a :class:`LiveCorpus`.

    ``members`` gives O(1) membership for tombstone reconciliation;
    ``level`` is the size tier (``size`` in units of the flush
    threshold, log base ``fanout``).
    """

    corpus: CompiledCorpus
    searcher: CompiledScanSearcher
    members: frozenset
    size: int
    level: int
    sequence: int
    path: str | None = None


class LiveCorpus:
    """A mutable corpus: memtable + tombstones + compiled segments.

    Parameters
    ----------
    dataset:
        Initial contents (duplicates accumulate, like
        :class:`repro.core.updatable.UpdatableIndex`). Compiled into
        the first segment immediately.
    flush_threshold:
        Distinct memtable strings before an automatic flush.
    fanout:
        Same-level segments before a compaction merges them; also the
        size ratio between levels.
    compaction:
        ``"inline"`` runs merges synchronously inside the mutating
        call (deterministic; the default), ``"background"`` runs them
        on a daemon thread that only locks for the final swap.
    segment_dir:
        Optional directory; segments are persisted there in the
        :mod:`repro.speed` format plus a JSON manifest, and
        :meth:`open` restores the corpus from it.
    packed:
        Compile in-memory segments in packed (numpy) mode. Segments
        written to ``segment_dir`` are always stored packed (the
        format stores arrays), whatever this says.

    Examples
    --------
    >>> corpus = LiveCorpus(["Bern", "Ulm"], flush_threshold=4)
    >>> corpus.insert("Berlin")
    >>> corpus.delete("Ulm")
    >>> [m.string for m in corpus.search("Bern", 2)]
    ['Berlin', 'Bern']
    >>> corpus.epoch
    2
    """

    def __init__(self, dataset: Iterable[str] = (), *,
                 flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
                 fanout: int = DEFAULT_FANOUT,
                 compaction: str = "inline",
                 segment_dir: str | None = None,
                 packed: bool = False) -> None:
        if flush_threshold < 1:
            raise ReproError(
                f"flush_threshold must be positive, got {flush_threshold}"
            )
        if fanout < 2:
            raise ReproError(
                f"fanout must be >= 2, got {fanout}"
            )
        if compaction not in COMPACTION_MODES:
            raise ReproError(
                f"unknown compaction mode {compaction!r}; expected one "
                f"of {COMPACTION_MODES}"
            )
        self._flush_threshold = flush_threshold
        self._fanout = fanout
        self._compaction_mode = compaction
        self._segment_dir = segment_dir
        self._packed = packed
        self._lock = threading.RLock()
        self._contents: Counter[str] = Counter()
        self._memtable: Counter[str] = Counter()
        self._tombstones: Counter[str] = Counter()
        self._segments: tuple[LiveSegment, ...] = ()
        self._epoch = 0
        self._seq = 0
        self._listeners: list[Callable[[CorpusEvent], None]] = []
        self._compacting = False
        self._compaction_thread: threading.Thread | None = None
        self._metrics: MetricsRegistry = NULL
        self._events: EventLog | None = None
        self._gauged_levels: set[int] = set()
        self.flushes = 0
        self.compactions = 0
        self.tombstones_purged = 0
        if segment_dir is not None:
            os.makedirs(segment_dir, exist_ok=True)
        seeds = []
        for string in dataset:
            if not string:
                raise ReproError("cannot index an empty string")
            self._contents[string] += 1
            seeds.append(string)
        if seeds:
            segment = self._build_segment(tuple(dict.fromkeys(seeds)))
            self._segments = (segment,)
        if segment_dir is not None:
            self._save_manifest()

    # ------------------------------------------------------------------
    # introspection

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter (bumped by insert/delete only)."""
        return self._epoch

    @property
    def flush_threshold(self) -> int:
        """Distinct memtable strings before an automatic flush."""
        return self._flush_threshold

    @property
    def fanout(self) -> int:
        """Same-level segments before a compaction."""
        return self._fanout

    @property
    def compaction_mode(self) -> str:
        """``"inline"`` or ``"background"``."""
        return self._compaction_mode

    @property
    def segment_dir(self) -> str | None:
        """The persistence directory, if configured."""
        return self._segment_dir

    @property
    def segment_count(self) -> int:
        """Number of immutable compiled segments."""
        return len(self._segments)

    @property
    def memtable_size(self) -> int:
        """Distinct strings waiting in the memtable."""
        return len(self._memtable)

    @property
    def tombstone_count(self) -> int:
        """Pending deletes not yet reconciled by a compaction."""
        return sum(self._tombstones.values())

    @property
    def compactions_in_flight(self) -> int:
        """Whether a compaction merge is running right now (0 or 1)."""
        return 1 if self._compacting else 0

    def __len__(self) -> int:
        return sum(self._contents.values())

    @property
    def distinct(self) -> int:
        """Distinct strings currently visible."""
        return len(self._contents)

    def __contains__(self, string: str) -> bool:
        return self._contents.get(string, 0) > 0

    def count(self, string: str) -> int:
        """Multiplicity of ``string`` in the current contents."""
        return self._contents.get(string, 0)

    def snapshot(self) -> tuple[str, ...]:
        """The distinct visible strings, in stable insertion order."""
        with self._lock:
            return tuple(self._contents)

    def segment_sizes(self) -> tuple[int, ...]:
        """Per-segment distinct-string counts (newest last)."""
        return tuple(segment.size for segment in self._segments)

    def describe(self) -> dict:
        """A JSON-friendly structural summary."""
        with self._lock:
            return {
                "kind": "live",
                "strings": len(self),
                "distinct": self.distinct,
                "epoch": self._epoch,
                "memtable": self.memtable_size,
                "tombstones": self.tombstone_count,
                "segments": list(self.segment_sizes()),
                "levels": [segment.level for segment in self._segments],
                "flushes": self.flushes,
                "compactions": self.compactions,
                "tombstones_purged": self.tombstones_purged,
                "flush_threshold": self._flush_threshold,
                "fanout": self._fanout,
                "compaction": self._compaction_mode,
                "segment_dir": self._segment_dir,
            }

    # ------------------------------------------------------------------
    # observability

    def attach_observability(self, *,
                             metrics: MetricsRegistry | None = None,
                             events: EventLog | None = None) -> None:
        """Wire the write path into the obs substrate.

        ``metrics`` receives the ``live.*`` counters
        (:data:`LIVE_COUNTERS`), gauges (memtable size, segment counts
        per tier, tombstone ratio, compactions in flight) and
        histograms (flush/compaction duration, mutation stall time,
        per-search segments visited); ``events`` receives the
        ``flush`` / ``compaction_start`` / ``compaction_swap`` /
        ``epoch`` event lines, each stamped with the ambient trace_id.
        Both are optional and independent; passing ``None`` leaves the
        corresponding attachment unchanged. Request *spans* need no
        attachment — they ride the ambient trace context of the calling
        thread (:func:`repro.obs.tracing.trace_span`).
        """
        if metrics is not None:
            self._metrics = metrics
        if events is not None:
            self._events = events
        with self._lock:
            self._update_gauges_locked()

    @property
    def metrics(self) -> MetricsRegistry:
        """The attached registry (:data:`repro.obs.registry.NULL` when
        none)."""
        return self._metrics

    def _update_gauges_locked(self) -> None:
        """Refresh every ``live.*`` gauge (call with the lock held)."""
        metrics = self._metrics
        if not metrics.enabled:
            return
        metrics.gauge("live.memtable_size", len(self._memtable))
        metrics.gauge("live.segments", len(self._segments))
        metrics.gauge("live.tombstones",
                      sum(self._tombstones.values()))
        visible = len(self._contents)
        metrics.gauge(
            "live.tombstone_ratio",
            (sum(self._tombstones.values()) / visible) if visible
            else 0.0)
        metrics.gauge("live.compactions_in_flight",
                      1 if self._compacting else 0)
        # Per-tier segment counts: levels that emptied are written as 0
        # once (last-write-wins gauges never expire on their own).
        levels: Counter[int] = Counter(
            segment.level for segment in self._segments)
        for level in self._gauged_levels - set(levels):
            metrics.gauge(f"live.segments.l{level}", 0)
        for level, count in levels.items():
            metrics.gauge(f"live.segments.l{level}", count)
        self._gauged_levels = set(levels)

    def _emit_event(self, kind: str, **fields) -> None:
        """One event line (no-op until an event log is attached)."""
        if self._events is not None:
            self._events.emit(kind, **fields)

    # ------------------------------------------------------------------
    # subscriptions

    def subscribe(self, callback: Callable[[CorpusEvent], None]) -> None:
        """Register a mutation listener (called on the mutating thread)."""
        with self._lock:
            if callback not in self._listeners:
                self._listeners.append(callback)

    def unsubscribe(self, callback: Callable[[CorpusEvent], None]) -> None:
        """Remove a previously registered listener (idempotent)."""
        with self._lock:
            if callback in self._listeners:
                self._listeners.remove(callback)

    def _notify(self, kind: str, string: str | None) -> None:
        """Fire one event outside the lock (listeners may re-enter)."""
        listeners = tuple(self._listeners)
        if not listeners:
            return
        event = CorpusEvent(kind=kind, string=string, epoch=self._epoch)
        for listener in listeners:
            listener(event)

    def _fire(self, events: list[tuple[str, str | None]]) -> None:
        """Deliver events queued during a locked section, in order.

        Mutating calls collect ``(kind, string)`` pairs while holding
        the corpus lock and fire them here after releasing it, so the
        stream subscribers see is ordered cause-before-effect (insert,
        then the flush it triggered, then the compaction) and listeners
        that synchronize with threads needing the corpus lock cannot
        deadlock.
        """
        for kind, string in events:
            self._notify(kind, string)

    # ------------------------------------------------------------------
    # mutations

    def insert(self, string: str) -> None:
        """Add one string (duplicates accumulate).

        An insert first cancels a pending tombstone for the same string
        — the physical copy still in a segment then serves it again —
        and otherwise lands in the memtable. Crossing the flush
        threshold compiles the memtable into a new segment and may
        trigger a compaction.
        """
        if not string:
            raise ReproError("cannot index an empty string")
        events: list[tuple[str, str | None]] = [("insert", string)]
        stalled = 0.0
        with self._lock:
            self._contents[string] += 1
            if self._tombstones.get(string, 0) > 0:
                self._tombstones[string] -= 1
                if self._tombstones[string] == 0:
                    del self._tombstones[string]
            else:
                self._memtable[string] += 1
            self._epoch += 1
            epoch = self._epoch
            if len(self._memtable) >= self._flush_threshold:
                # Everything past the memtable append is stall: the
                # writer is paying for a flush (and, inline, for the
                # compaction it triggered) instead of returning.
                started = time.perf_counter()
                self._flush_locked(events=events)
                stalled = time.perf_counter() - started
            self._metrics.inc("live.inserts")
            self._update_gauges_locked()
        if stalled:
            self._metrics.hist("live.stall_seconds", stalled)
        self._emit_event("epoch", epoch=epoch, cause="insert")
        self._fire(events)

    def delete(self, string: str) -> None:
        """Remove one occurrence of ``string``.

        A delete prefers cancelling a pending memtable copy; otherwise
        it tombstones the copy living in a segment (purged at the next
        compaction that touches it).

        Raises
        ------
        ReproError
            If the string is not currently in the corpus.
        """
        with self._lock:
            if self._contents.get(string, 0) <= 0:
                raise ReproError(f"{string!r} is not in the corpus")
            self._contents[string] -= 1
            if self._contents[string] == 0:
                del self._contents[string]
            if self._memtable.get(string, 0) > 0:
                self._memtable[string] -= 1
                if self._memtable[string] == 0:
                    del self._memtable[string]
            else:
                self._tombstones[string] += 1
            self._epoch += 1
            epoch = self._epoch
            self._metrics.inc("live.deletes")
            self._update_gauges_locked()
        self._emit_event("epoch", epoch=epoch, cause="delete")
        self._notify("delete", string)

    def flush(self) -> bool:
        """Compile the memtable into a new segment now.

        Returns whether anything was flushed. Automatic on crossing
        ``flush_threshold``; explicit callers use it before snapshots
        or shutdown.
        """
        events: list[tuple[str, str | None]] = []
        with self._lock:
            flushed = self._flush_locked(events=events)
        self._fire(events)
        return flushed

    def _flush_locked(self, *, trigger_compaction: bool = True,
                      events: list[tuple[str, str | None]] | None = None
                      ) -> bool:
        if not self._memtable:
            return False
        flushed_strings = len(self._memtable)
        started = time.perf_counter()
        with trace_span("live.flush",
                        {"strings": str(flushed_strings)}):
            segment = self._build_segment(tuple(self._memtable))
            self._memtable.clear()
            self._segments = self._segments + (segment,)
        seconds = time.perf_counter() - started
        self.flushes += 1
        self._metrics.inc("live.flushes")
        self._metrics.hist("live.flush_seconds", seconds)
        self._emit_event("flush", strings=flushed_strings,
                         segment_level=segment.level,
                         segments=len(self._segments),
                         seconds=round(seconds, 6))
        if events is not None:
            events.append(("flush", None))
        if self._segment_dir is not None:
            self._save_manifest()
        if trigger_compaction:
            self._maybe_compact(events=events)
        self._update_gauges_locked()
        return True

    # ------------------------------------------------------------------
    # segments & compaction

    def _level_for(self, size: int) -> int:
        level = 0
        cap = max(1, self._flush_threshold)
        while size >= cap * self._fanout:
            cap *= self._fanout
            level += 1
        return level

    def _build_segment(self, strings: tuple[str, ...]) -> LiveSegment:
        """Compile one immutable segment (and persist it if configured)."""
        with self._lock:
            self._seq += 1
            sequence = self._seq
        path = None
        if self._segment_dir is not None:
            from repro.speed import save_segment, segment_cache

            path = os.path.join(self._segment_dir,
                                f"seg-{sequence:06d}.seg")
            corpus = CompiledCorpus(strings, packed=True)
            save_segment(corpus, path)
            corpus = segment_cache.get(path)
        else:
            corpus = CompiledCorpus(strings, packed=self._packed)
        return LiveSegment(
            corpus=corpus,
            searcher=CompiledScanSearcher(corpus),
            members=frozenset(strings),
            size=len(strings),
            level=self._level_for(len(strings)),
            sequence=sequence,
            path=path,
        )

    def _compaction_candidates(self) -> tuple[LiveSegment, ...]:
        """The lowest size tier holding >= ``fanout`` segments, if any."""
        levels: dict[int, list[LiveSegment]] = {}
        for segment in self._segments:
            levels.setdefault(segment.level, []).append(segment)
        for level in sorted(levels):
            group = levels[level]
            if len(group) >= self._fanout:
                return tuple(group)
        return ()

    def _maybe_compact(
            self,
            events: list[tuple[str, str | None]] | None = None) -> None:
        group = self._compaction_candidates()
        if not group:
            return
        self._emit_event("compaction_start",
                         level=group[0].level, group=len(group),
                         mode=self._compaction_mode)
        if self._compaction_mode == "background":
            if self._compacting:
                return
            self._compacting = True
            self._update_gauges_locked()
            # Capture the triggering mutation's ambient trace so the
            # compaction span (and its event lines) parent under the
            # insert that crossed the threshold, not float as a
            # separate tree.
            trace = current_trace()
            thread = threading.Thread(
                target=self._run_background_compaction,
                args=(group, trace),
                name="live-corpus-compaction", daemon=True,
            )
            self._compaction_thread = thread
            thread.start()
        else:
            self._merge_group(group, events=events)

    def _run_background_compaction(
            self, group: tuple[LiveSegment, ...],
            trace=(None, None)) -> None:
        tracer, context = trace
        try:
            with use_trace(tracer, context):
                self._merge_group(group)
        finally:
            with self._lock:
                self._compacting = False
                self._update_gauges_locked()

    def _merge_group(self, group: tuple[LiveSegment, ...],
                     events: list[tuple[str, str | None]] | None = None
                     ) -> None:
        """Merge ``group`` into one segment, purging dead strings.

        The merged corpus is built *outside* the lock (segments are
        immutable). The lock is held only for the segment-list swap and
        tombstone reconciliation, so a concurrent search observes
        either the old or the new layout, never a half-merged one.

        The contents filter used to collect survivors may be stale by
        swap time, and staleness is *not* symmetric: a string deleted
        after collection merely rides along dead (search re-filters by
        contents), but a tombstoned string **re-inserted** while the
        merge ran was dropped from the merged segment even though
        insert() cancelled its tombstone expecting the physical segment
        copy to survive. The swap therefore re-validates: any group
        string that is visible yet no longer physically present
        anywhere is re-added to the memtable.
        """
        compaction_started = time.perf_counter()
        span = trace_span("live.compaction", {
            "level": str(group[0].level), "group": str(len(group)),
            "mode": self._compaction_mode,
        })
        with span:
            self._merge_group_traced(group, events)
        self._metrics.hist("live.compaction_seconds",
                           time.perf_counter() - compaction_started)

    def _merge_group_traced(
            self, group: tuple[LiveSegment, ...],
            events: list[tuple[str, str | None]] | None) -> None:
        group_members: set[str] = set()
        survivors: list[str] = []
        seen: set[str] = set()
        contents = self._contents
        for segment in group:
            for string in segment.corpus.strings:
                group_members.add(string)
                if string not in seen and contents.get(string, 0) > 0:
                    seen.add(string)
                    survivors.append(string)
        merged = (self._build_segment(tuple(survivors))
                  if survivors else None)
        doomed_paths: list[str] = []
        with self._lock:
            identities = {id(segment) for segment in group}
            kept = [segment for segment in self._segments
                    if id(segment) not in identities]
            if merged is not None:
                kept.append(merged)
            self._segments = tuple(kept)
            for string in group_members:
                if (self._contents.get(string, 0) > 0
                        and self._memtable.get(string, 0) == 0
                        and not any(string in segment.members
                                    for segment in kept)):
                    self._memtable[string] = 1
            purged = 0
            for string in list(self._tombstones):
                if string in group_members and not any(
                        string in segment.members for segment in kept):
                    purged += self._tombstones.pop(string)
            self.tombstones_purged += purged
            self.compactions += 1
            self._metrics.inc("live.compactions")
            if purged:
                self._metrics.inc("live.tombstones_purged", purged)
            segments_after = len(kept)
            doomed_paths = [segment.path for segment in group
                            if segment.path is not None]
            if self._segment_dir is not None:
                self._save_manifest()
            self._update_gauges_locked()
        self._emit_event("compaction_swap",
                         level=group[0].level, merged=len(group),
                         segments=segments_after, purged=purged,
                         survivors=len(survivors))
        for path in doomed_paths:
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - cleanup is advisory
                pass
        if events is not None:
            events.append(("compact", None))
        else:
            # Background path: the merge thread holds no corpus lock
            # here, so direct delivery is safe.
            self._notify("compact", None)

    def compact(self) -> None:
        """Force a full merge: flush, then fold every segment into one.

        Afterwards the corpus holds at most one segment, the memtable
        is empty and the tombstone ledger is fully purged — exactly the
        layout a from-scratch rebuild would produce. Joins any
        in-flight background compaction first.
        """
        self.drain_compaction()
        events: list[tuple[str, str | None]] = []
        with self._lock:
            self._flush_locked(trigger_compaction=False, events=events)
            group = self._segments
            if group and (len(group) > 1 or self._tombstones):
                self._merge_group(group, events=events)
        self._fire(events)

    def drain_compaction(self, timeout: float | None = None) -> None:
        """Wait for an in-flight background compaction to finish."""
        thread = self._compaction_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    @property
    def compacting(self) -> bool:
        """Whether a background compaction is currently in flight."""
        thread = self._compaction_thread
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------------
    # search

    def search(self, query: str, k: int, *,
               deadline: Deadline | Budget | None = None
               ) -> tuple[Match, ...]:
        """All visible strings within distance ``k``, merged and sorted.

        Fan-out over the memtable plus every segment, all against the
        *shared* ``deadline`` (mirroring
        :meth:`repro.service.ShardedCorpus.search`). On expiry the
        raised :class:`DeadlineExceeded` carries the merged matches of
        every completed part — filtered to currently visible strings,
        still a strict subset of the exact answer — with
        ``scope="segments"`` and ``completed``/``total`` counting parts
        (the memtable is part 0).
        """
        check_threshold(k)
        with self._lock:
            segments = self._segments
            memtable = tuple(self._memtable)
        total = len(segments) + 1
        self._metrics.inc("live.searches")
        with trace_span("live.search",
                        {"segments": str(len(segments)),
                         "memtable": str(len(memtable))}):
            rows = self._search_parts(query, k, segments, memtable,
                                      deadline, total)
        return self._visible(merge_matches(rows))

    def _search_parts(self, query: str, k: int,
                      segments: tuple[LiveSegment, ...],
                      memtable: tuple[str, ...],
                      deadline, total) -> list[tuple[Match, ...]]:
        """The per-part fan-out behind :meth:`search`."""
        rows: list[tuple[Match, ...]] = []
        started = time.perf_counter()
        row = self._scan_memtable(query, k, memtable, deadline,
                                  rows, total)
        emit_span("live.memtable", time.perf_counter() - started,
                  {"strings": str(len(memtable))})
        rows.append(row)
        visited = 0
        try:
            for index, segment in enumerate(segments):
                if deadline is not None and deadline.spend(0):
                    raise DeadlineExceeded(
                        f"live search for {query!r} (k={k}) found its "
                        f"deadline expired before segment {index} of "
                        f"{len(segments)}",
                        partial=self._visible(merge_matches(rows)),
                        scope="segments", completed=index + 1,
                        total=total,
                    )
                started = time.perf_counter()
                try:
                    rows.append(tuple(segment.searcher.search(
                        query, k, deadline=deadline)))
                    visited += 1
                except DeadlineExceeded as error:
                    visited += 1
                    partial = self._visible(
                        merge_matches(rows + [tuple(error.partial)]))
                    raise DeadlineExceeded(
                        f"live search for {query!r} (k={k}) exceeded "
                        f"its deadline on segment {index} of "
                        f"{len(segments)} "
                        f"({len(partial)} verified matches kept)",
                        partial=partial, scope="segments",
                        completed=index + 1, total=total,
                    ) from error
                finally:
                    emit_span(f"live.segment[{index}]",
                              time.perf_counter() - started,
                              {"level": str(segment.level),
                               "size": str(segment.size)})
        finally:
            self._metrics.inc("live.segments_visited", visited)
            self._metrics.hist("live.search_segments_visited", visited)
        return rows

    def _scan_memtable(self, query: str, k: int,
                       memtable: tuple[str, ...],
                       deadline, rows, total) -> tuple[Match, ...]:
        """Brute-force bounded scan of the (small) memtable."""
        if deadline is not None and deadline.spend(0):
            raise DeadlineExceeded(
                f"live search for {query!r} (k={k}) found its deadline "
                f"expired before the memtable",
                partial=(), scope="segments", completed=0, total=total,
            )
        found: list[Match] = []
        interval = (deadline.check_interval
                    if deadline is not None else 0)
        pending = 0
        length = len(query)
        for string in memtable:
            if deadline is not None:
                pending += 1
                if pending >= interval:
                    expired = deadline.spend(pending)
                    pending = 0
                    if expired:
                        raise DeadlineExceeded(
                            f"live search for {query!r} (k={k}) "
                            f"exceeded its deadline in the memtable "
                            f"({len(found)} verified matches kept)",
                            partial=self._visible(
                                merge_matches(rows + [tuple(found)])),
                            scope="segments", completed=0, total=total,
                        )
            if abs(len(string) - length) > k:
                continue
            distance = edit_distance_bounded(query, string, k)
            if distance is not None:
                found.append(Match(string, distance))
        return tuple(found)

    def _visible(self, merged: tuple[Match, ...]) -> tuple[Match, ...]:
        """Filter merged rows to currently visible strings.

        This is where tombstones take effect: a string still physically
        present in a segment but logically deleted has ``contents == 0``
        and drops out here — which also makes tombstoned re-inserts
        trivially correct.
        """
        contents = self._contents
        return tuple(match for match in merged
                     if contents.get(match.string, 0) > 0)

    # ------------------------------------------------------------------
    # persistence

    def sync(self) -> None:
        """Write the manifest now (including the unflushed memtable).

        Without a ``segment_dir`` this is a no-op. Flush/compaction
        write the manifest automatically; ``sync`` additionally
        persists memtable contents that have not been flushed yet, so
        a reopen loses nothing.
        """
        if self._segment_dir is None:
            return
        with self._lock:
            self._save_manifest()

    def _save_manifest(self) -> None:
        assert self._segment_dir is not None
        manifest = {
            "format": MANIFEST_FORMAT,
            "sequence": self._seq,
            "epoch": self._epoch,
            "flush_threshold": self._flush_threshold,
            "fanout": self._fanout,
            "segments": [
                {"file": os.path.basename(segment.path),
                 "size": segment.size, "sequence": segment.sequence}
                for segment in self._segments
                if segment.path is not None
            ],
            "memtable": dict(self._memtable),
            "tombstones": dict(self._tombstones),
            "contents": dict(self._contents),
        }
        path = os.path.join(self._segment_dir, MANIFEST_NAME)
        temp = path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        os.replace(temp, path)

    @classmethod
    def open(cls, segment_dir: str, *,
             compaction: str = "inline",
             packed: bool = False) -> "LiveCorpus":
        """Restore a live corpus persisted under ``segment_dir``.

        Segments are mmap-loaded through the process-global
        :data:`repro.speed.segment_cache`; the manifest restores the
        memtable, tombstone ledger and contents multiset exactly as
        :meth:`sync` (or the last flush/compaction) left them.
        """
        from repro.speed import segment_cache

        manifest_path = os.path.join(segment_dir, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise SegmentError(
                "not a live corpus directory (no manifest)",
                path=manifest_path,
            )
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != MANIFEST_FORMAT:
            raise SegmentError(
                f"unsupported live manifest format "
                f"{manifest.get('format')!r} (expected "
                f"{MANIFEST_FORMAT})",
                path=manifest_path,
            )
        # Construct without segment_dir: __init__ would otherwise save
        # an *empty* manifest over the one just read, destroying the
        # persisted state if the process stopped before the next sync.
        corpus = cls(
            flush_threshold=manifest["flush_threshold"],
            fanout=manifest["fanout"],
            compaction=compaction,
            packed=packed,
        )
        corpus._segment_dir = segment_dir
        segments = []
        for entry in manifest["segments"]:
            path = os.path.join(segment_dir, entry["file"])
            compiled = segment_cache.get(path)
            if not isinstance(compiled, CompiledCorpus):
                raise SegmentError(
                    "live segment is not a corpus segment", path=path,
                )
            strings = tuple(compiled.strings)
            segments.append(LiveSegment(
                corpus=compiled,
                searcher=CompiledScanSearcher(compiled),
                members=frozenset(strings),
                size=len(strings),
                level=corpus._level_for(len(strings)),
                sequence=entry["sequence"],
                path=path,
            ))
        corpus._segments = tuple(segments)
        corpus._seq = manifest["sequence"]
        corpus._epoch = manifest["epoch"]
        corpus._memtable = Counter(manifest["memtable"])
        corpus._tombstones = Counter(manifest["tombstones"])
        corpus._contents = Counter(manifest["contents"])
        return corpus

    def __repr__(self) -> str:
        return (
            f"LiveCorpus(strings={len(self)}, "
            f"segments={self.segment_count}, "
            f"memtable={self.memtable_size}, "
            f"tombstones={self.tombstone_count}, epoch={self._epoch})"
        )
