"""The unified corpus facade: one handle for frozen and live data.

Before this module, every layer acquired data its own way — engines
took raw string iterables, services took iterables or a prebuilt
:class:`~repro.service.sharding.ShardedCorpus`, the speed layer took
segment paths, and the only mutable spelling was the pre-compiled-era
:class:`repro.core.updatable.UpdatableIndex`. :class:`Corpus` is the
API-redesign answer: **one** handle with three constructors,

* :meth:`Corpus.frozen` — compile once, never mutate (the paper's
  regime; wraps :class:`repro.scan.CompiledCorpus`);
* :meth:`Corpus.live` — the LSM write path
  (:class:`repro.live.corpus.LiveCorpus`): ``insert``/``delete``,
  memtable, tombstones, compacted segments;
* :meth:`Corpus.open` — restore from disk: a single ``.seg`` file
  reopens frozen (mmap, near-instant), a live segment directory
  reopens mutable.

and one uniform surface the rest of the stack consumes:
``search(query, k, deadline=...)``, ``snapshot()``, ``epoch``,
``mutable``, ``subscribe()``. :class:`repro.core.engine.SearchEngine`,
:class:`repro.service.ShardedCorpus`, :class:`repro.service.Service`
and :class:`repro.traffic.AsyncService` all accept a :class:`Corpus`
directly; mutations bump :attr:`epoch`, which those layers poll to
re-snapshot, refresh planner statistics and invalidate cached results.

The handle is also a plain iterable of its visible strings, so any
code written against "an iterable of strings" keeps working unchanged.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Iterator

from repro.core.deadline import Budget, Deadline
from repro.core.result import Match
from repro.exceptions import FrozenCorpusError, ReproError, SegmentError
from repro.live.corpus import (
    DEFAULT_FANOUT,
    DEFAULT_FLUSH_THRESHOLD,
    CorpusEvent,
    LiveCorpus,
)
from repro.scan.corpus import CompiledCorpus
from repro.scan.searcher import CompiledScanSearcher


class Corpus:
    """One handle over frozen or live corpus data.

    Built through :meth:`frozen`, :meth:`live` or :meth:`open`, never
    directly. Every data-consuming layer accepts it; mutating methods
    raise :class:`repro.exceptions.FrozenCorpusError` on a frozen
    handle.

    Examples
    --------
    >>> corpus = Corpus.frozen(["Berlin", "Bern", "Ulm"])
    >>> corpus.mutable
    False
    >>> [m.string for m in corpus.search("Berlino", 2)]
    ['Berlin']
    >>> live = Corpus.live(["Berlin", "Bern"])
    >>> live.insert("Bonn")
    >>> live.epoch
    1
    """

    def __init__(self, *, _live: LiveCorpus | None = None,
                 _compiled: CompiledCorpus | None = None) -> None:
        if (_live is None) == (_compiled is None):
            raise ReproError(
                "Corpus is not constructed directly; use "
                "Corpus.frozen(dataset), Corpus.live(dataset) or "
                "Corpus.open(path)"
            )
        self._live = _live
        self._compiled = _compiled
        self._searcher: CompiledScanSearcher | None = None
        self._members: frozenset[str] | None = None

    # ------------------------------------------------------------------
    # constructors

    @classmethod
    def frozen(cls, dataset: Iterable[str] | CompiledCorpus, *,
               alphabet=None, tracked: str | None = None,
               packed: bool = False,
               segment: str | None = None) -> "Corpus":
        """An immutable corpus, compiled once.

        ``segment`` names a :mod:`repro.speed` segment file: it is
        mmap-loaded when present and compiled + saved when not, like
        :func:`repro.speed.load_or_build_corpus_segment`. A prebuilt
        :class:`CompiledCorpus` is wrapped as-is.
        """
        if segment is not None:
            from repro.speed import load_or_build_corpus_segment

            compiled = load_or_build_corpus_segment(
                dataset, segment, alphabet=alphabet, tracked=tracked)
        elif isinstance(dataset, CompiledCorpus):
            compiled = dataset
        else:
            compiled = CompiledCorpus(dataset, alphabet=alphabet,
                                      tracked=tracked, packed=packed)
        return cls(_compiled=compiled)

    @classmethod
    def live(cls, dataset: Iterable[str] = (), *,
             flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
             fanout: int = DEFAULT_FANOUT,
             compaction: str = "inline",
             segment_dir: str | None = None,
             packed: bool = False) -> "Corpus":
        """A mutable LSM corpus (see :class:`LiveCorpus`)."""
        return cls(_live=LiveCorpus(
            dataset, flush_threshold=flush_threshold, fanout=fanout,
            compaction=compaction, segment_dir=segment_dir,
            packed=packed,
        ))

    @classmethod
    def open(cls, path: str, *, compaction: str = "inline") -> "Corpus":
        """Reopen a persisted corpus.

        A directory (holding a live manifest) reopens as a mutable
        corpus; a single segment file reopens as a frozen one, mmap-
        loaded through the process-global segment cache.
        """
        if os.path.isdir(path):
            return cls(_live=LiveCorpus.open(path, compaction=compaction))
        from repro.speed import segment_cache

        artifact = segment_cache.get(path)
        if not isinstance(artifact, CompiledCorpus):
            raise SegmentError(
                f"segment holds a {type(artifact).__name__}, not a "
                "corpus; Corpus.open expects a corpus segment or a "
                "live corpus directory", path=path,
            )
        return cls(_compiled=artifact)

    # ------------------------------------------------------------------
    # the uniform surface

    @property
    def mutable(self) -> bool:
        """Whether :meth:`insert`/:meth:`delete` are available."""
        return self._live is not None

    @property
    def kind(self) -> str:
        """``"live"`` or ``"frozen"``."""
        return "live" if self._live is not None else "frozen"

    @property
    def epoch(self) -> int:
        """Mutation counter; a frozen corpus stays at 0 forever.

        Consumers snapshot the epoch next to the data they derived
        from it and re-derive when the two drift apart.
        """
        return self._live.epoch if self._live is not None else 0

    @property
    def live_corpus(self) -> LiveCorpus | None:
        """The backing :class:`LiveCorpus` (``None`` when frozen)."""
        return self._live

    @property
    def compiled_corpus(self) -> CompiledCorpus | None:
        """The backing :class:`CompiledCorpus` (``None`` when live)."""
        return self._compiled

    def snapshot(self) -> tuple[str, ...]:
        """The distinct visible strings, in stable order.

        This is what engines/shards compile from; for a live corpus
        pair it with :attr:`epoch` to detect drift.
        """
        if self._live is not None:
            return self._live.snapshot()
        return tuple(self._compiled.strings)

    def __iter__(self) -> Iterator[str]:
        return iter(self.snapshot())

    def __len__(self) -> int:
        if self._live is not None:
            return self._live.distinct
        return self._compiled.size

    def __contains__(self, string: str) -> bool:
        if self._live is not None:
            return string in self._live
        # Frozen strings never change; build the member set once,
        # lazily, mirroring the lazily built _searcher.
        if self._members is None:
            self._members = frozenset(self._compiled.strings)
        return string in self._members

    def search(self, query: str, k: int, *,
               deadline: Deadline | Budget | None = None
               ) -> tuple[Match, ...]:
        """All visible strings within distance ``k``, sorted.

        Frozen handles answer through a (lazily built) compiled-scan
        searcher; live handles fan out over memtable + segments. Both
        honor ``deadline`` with verified partial results.
        """
        if self._live is not None:
            return self._live.search(query, k, deadline=deadline)
        if self._searcher is None:
            self._searcher = CompiledScanSearcher(self._compiled)
        return tuple(self._searcher.search(query, k, deadline=deadline))

    # ------------------------------------------------------------------
    # mutations (live only)

    def _require_live(self, operation: str) -> LiveCorpus:
        if self._live is None:
            raise FrozenCorpusError(
                f"cannot {operation} on a frozen corpus; build a "
                "mutable one with Corpus.live(...) (or reopen a live "
                "segment directory with Corpus.open(...))"
            )
        return self._live

    def insert(self, string: str) -> None:
        """Add one string (live corpora only)."""
        self._require_live("insert").insert(string)

    def delete(self, string: str) -> None:
        """Remove one occurrence of ``string`` (live corpora only)."""
        self._require_live("delete").delete(string)

    def flush(self) -> bool:
        """Flush the memtable into a segment (live corpora only)."""
        return self._require_live("flush").flush()

    def compact(self) -> None:
        """Force a full merge with tombstone purge (live corpora only)."""
        self._require_live("compact").compact()

    def sync(self) -> None:
        """Persist the manifest now (live corpora only)."""
        self._require_live("sync").sync()

    # ------------------------------------------------------------------
    # observability

    def attach_observability(self, *, metrics=None,
                             events=None) -> None:
        """Wire the live write path into the obs substrate.

        Forwards to :meth:`LiveCorpus.attach_observability`; a no-op on
        frozen corpora (they have no write path to observe), so callers
        like the gateway can attach unconditionally.
        """
        if self._live is not None:
            self._live.attach_observability(metrics=metrics,
                                            events=events)

    # ------------------------------------------------------------------
    # subscriptions

    def subscribe(self, callback: Callable[[CorpusEvent], None]) -> None:
        """Register a mutation listener; a no-op on frozen corpora.

        Frozen corpora never mutate, so accepting (and ignoring) the
        registration lets callers subscribe unconditionally.
        """
        if self._live is not None:
            self._live.subscribe(callback)

    def unsubscribe(self, callback: Callable[[CorpusEvent], None]) -> None:
        """Remove a listener; a no-op on frozen corpora."""
        if self._live is not None:
            self._live.unsubscribe(callback)

    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """A JSON-friendly structural summary of either kind."""
        if self._live is not None:
            return self._live.describe()
        summary = dict(self._compiled.describe())
        summary["kind"] = "frozen"
        return summary

    def __repr__(self) -> str:
        if self._live is not None:
            return f"Corpus.live({self._live!r})"
        return (f"Corpus.frozen(size={self._compiled.size}, "
                f"packed={self._compiled.packed})")
