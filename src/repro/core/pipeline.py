"""The iterative optimization pipeline of Figures 3 and 5.

The paper's methodology is a loop: implement an approach, verify its
results against the reference, measure it, and keep it only if it is
both correct and faster than the best approach so far. Rejected
approaches stay in the report (the paper keeps stage 5's regression in
Table III on purpose) but do not become the new baseline.

:class:`ApproachPipeline` mechanizes that loop for any list of
:class:`Approach` factories over one workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.result import ResultSet
from repro.core.searcher import QueryRunner, Searcher
from repro.core.verification import verify_result_sets
from repro.data.workload import Workload
from repro.exceptions import ReproError, VerificationError


@dataclass(frozen=True)
class Approach:
    """A named searcher configuration to evaluate.

    ``build`` constructs the searcher (build time is *not* measured —
    the paper times only query execution, section 4.1); ``runner``
    optionally supplies a parallel execution strategy.
    """

    name: str
    build: Callable[[], Searcher]
    runner: QueryRunner | None = None


@dataclass(frozen=True)
class StageOutcome:
    """What happened to one approach in the pipeline."""

    name: str
    seconds: float
    correct: bool
    accepted: bool
    error: str | None = None

    def table_row(self) -> str:
        """Render as a row of a stage table (Table III/V style)."""
        status = "accepted" if self.accepted else (
            "rejected (slower)" if self.correct else "rejected (WRONG)"
        )
        return f"{self.name:<40} {self.seconds:>9.3f} s   {status}"


class ApproachPipeline:
    """Run approaches through verify-then-accept, like the paper does.

    >>> from repro.core import SequentialScanSearcher
    >>> from repro.data.workload import make_workload
    >>> data = ["Berlin", "Bern", "Ulm", "Hamburg"]
    >>> workload = make_workload(data, 5, 1, alphabet_symbols="abcdef",
    ...                          seed=3)
    >>> pipeline = ApproachPipeline(
    ...     Approach("base",
    ...              lambda: SequentialScanSearcher(data,
    ...                                             kernel="reference")),
    ...     workload)
    >>> outcome, = pipeline.run([
    ...     Approach("banded",
    ...              lambda: SequentialScanSearcher(data, kernel="banded")),
    ... ])
    >>> outcome.correct
    True
    """

    def __init__(self, reference: Approach, workload: Workload) -> None:
        self._workload = workload
        self._reference_approach = reference
        searcher = reference.build()
        started = time.perf_counter()
        self._reference_results = searcher.run_workload(
            workload, reference.runner
        )
        self._reference_seconds = time.perf_counter() - started
        self._best_seconds = self._reference_seconds
        self._best_name = reference.name

    @property
    def reference_results(self) -> ResultSet:
        """The trusted result set every approach is compared against."""
        return self._reference_results

    @property
    def reference_seconds(self) -> float:
        """Measured time of the reference approach."""
        return self._reference_seconds

    @property
    def best(self) -> tuple[str, float]:
        """Name and time of the fastest correct approach so far."""
        return self._best_name, self._best_seconds

    def evaluate(self, approach: Approach) -> StageOutcome:
        """Run one approach: build, execute, verify, accept/reject."""
        try:
            searcher = approach.build()
        except ReproError as error:
            return StageOutcome(approach.name, 0.0, correct=False,
                                accepted=False, error=str(error))
        started = time.perf_counter()
        results = searcher.run_workload(self._workload, approach.runner)
        seconds = time.perf_counter() - started
        try:
            verify_result_sets(self._reference_results, results,
                               candidate_name=approach.name)
        except VerificationError as error:
            return StageOutcome(approach.name, seconds, correct=False,
                                accepted=False, error=str(error))
        accepted = seconds < self._best_seconds
        if accepted:
            self._best_seconds = seconds
            self._best_name = approach.name
        return StageOutcome(approach.name, seconds, correct=True,
                            accepted=accepted)

    def run(self, approaches: Sequence[Approach]) -> list[StageOutcome]:
        """Evaluate approaches in order, updating the running best."""
        return [self.evaluate(approach) for approach in approaches]

    def report(self, outcomes: Sequence[StageOutcome]) -> str:
        """Render a stage table including the reference row."""
        lines = [
            f"workload: {self._workload.name} "
            f"({len(self._workload)} queries, k={self._workload.k})",
            f"{self._reference_approach.name:<40} "
            f"{self._reference_seconds:>9.3f} s   reference",
        ]
        lines.extend(outcome.table_row() for outcome in outcomes)
        lines.append(
            f"best: {self._best_name} ({self._best_seconds:.3f} s)"
        )
        return "\n".join(lines)
