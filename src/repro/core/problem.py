"""The string similarity search problem (paper section 2.1).

Given a query ``q``, a set of strings ``X``, the edit distance ``ed``
and a threshold ``k``, return every ``x ∈ X`` with ``ed(q, x) <= k``
(equation 1). :class:`SimilaritySearchProblem` is the immutable problem
statement searchers solve; it also provides the obviously-correct
brute-force solution every optimized solver is verified against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.distance.banded import check_threshold
from repro.distance.levenshtein import edit_distance
from repro.exceptions import ReproError


@dataclass(frozen=True)
class SimilaritySearchProblem:
    """An instance of the string similarity search problem.

    Attributes
    ----------
    dataset:
        The string set ``X`` (kept as a tuple: order is meaningful for
        scan-order experiments, duplicates are legal data).
    name:
        Label used in reports ("cities", "dna", ...).

    Examples
    --------
    >>> problem = SimilaritySearchProblem(("Berlin", "Bern", "Ulm"))
    >>> problem.solve_brute_force("Berlino", 2)
    ['Berlin']
    """

    dataset: tuple[str, ...]
    name: str = "problem"

    def __init__(self, dataset: Iterable[str], name: str = "problem") -> None:
        object.__setattr__(self, "dataset", tuple(dataset))
        object.__setattr__(self, "name", name)
        for index, string in enumerate(self.dataset):
            if not string:
                raise ReproError(
                    f"dataset string at index {index} is empty; the "
                    "competition format forbids empty strings"
                )

    @property
    def size(self) -> int:
        """Number of dataset strings (duplicates included)."""
        return len(self.dataset)

    @property
    def max_length(self) -> int:
        """Longest dataset string (0 for an empty dataset)."""
        return max((len(s) for s in self.dataset), default=0)

    def solve_brute_force(self, query: str, k: int) -> list[str]:
        """Reference solution: full-matrix distance against every string.

        Returns distinct matches in lexicographic order. Deliberately
        uses only :func:`repro.distance.edit_distance` — no filters, no
        bounded kernels — so its correctness rests on one boring
        function.
        """
        check_threshold(k)
        matches = {
            candidate
            for candidate in self.dataset
            if edit_distance(query, candidate) <= k
        }
        return sorted(matches)
