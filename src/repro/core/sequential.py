"""The sequential solution (paper section 3), every stage configurable.

The paper improves one scan loop six times; here each improvement is a
constructor knob, so any rung of the ladder — and any combination the
paper did not try — can be instantiated and measured:

===================  =====================================================
Paper stage          Configuration
===================  =====================================================
1 base               ``kernel="reference"``
2 edit distance      ``kernel="banded"`` (length filter + band + abort)
3 value/reference    ``kernel="banded-reused"`` (preallocated row buffers)
4 simple data types  ``kernel="bitparallel"`` (Myers over integer words)
5 parallelism        pass a :class:`ThreadPerQueryRunner` to the workload
6 managed            pass a pool/adaptive runner to the workload
===================  =====================================================

Future-work knobs (section 6): ``order="length"`` presorts the dataset
and restricts each scan to the ``[len(q) - k, len(q) + k]`` window via
binary search; ``prefilter`` accepts any filter chain (frequency
vectors, q-gram counts) applied before the kernel.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from time import perf_counter
from typing import Iterable, Sequence

from repro.core.deadline import Budget, Deadline
from repro.core.result import Match
from repro.core.searcher import Searcher
from repro.distance.banded import (
    BandedCalculator,
    check_threshold,
    edit_distance_bounded,
)
from repro.distance.bitparallel import build_peq
from repro.distance.dispatch import bounded_distance
from repro.distance.levenshtein import edit_distance
from repro.exceptions import DeadlineExceeded, ReproError
from repro.filters.base import FilterChain
from repro.obs.hist import Histogram
from repro.obs.recorder import QueryExemplar

#: Kernel configurations in paper-ladder order.
KERNELS = (
    "reference",
    "banded",
    "banded-reused",
    "bitparallel",
    "dispatch",
)

#: How many per-query ``peq`` tables the bitparallel kernel retains.
#: Workloads repeat queries (section 5.2 runs nested prefix batches), so
#: rebuilding the table per ``search()`` call was pure waste.
PEQ_CACHE_SIZE = 256

#: Counter names this searcher reports (dotted ``scan.*`` namespace of
#: the observability layer; see docs/OBSERVABILITY.md).
SCAN_COUNTERS = (
    "scan.searches",
    "scan.candidates",
    "scan.length_rejects",
    "scan.prefilter_rejects",
    "scan.kernel_calls",
    "scan.early_aborts",
    "scan.matches",
)

#: Histogram names this searcher records (same always-on discipline as
#: the counters: one flush per search under the counters lock).
SCAN_HISTOGRAMS = (
    "scan.query_seconds",
    "scan.candidates_per_query",
    "scan.kernel_calls_per_query",
)


class SequentialScanSearcher(Searcher):
    """Scan the whole dataset per query, with staged optimizations.

    Parameters
    ----------
    dataset:
        The strings to search (order preserved; duplicates legal).
    kernel:
        One of :data:`KERNELS`; see the module docstring ladder.
    order:
        ``None`` scans in dataset order; ``"length"`` presorts by length
        and scans only the window the length filter allows (future-work
        "sorting" item).
    prefilter:
        Optional :class:`FilterChain` applied before the kernel.
        Filters must be sound (no false negatives) for results to stay
        identical — every filter in :mod:`repro.filters` is.

    Examples
    --------
    >>> searcher = SequentialScanSearcher(["Berlin", "Bern", "Ulm"])
    >>> [match.string for match in searcher.search("Berlino", 2)]
    ['Berlin']
    """

    def __init__(self, dataset: Iterable[str], *,
                 kernel: str = "dispatch",
                 order: str | None = None,
                 prefilter: FilterChain | None = None) -> None:
        if kernel not in KERNELS:
            raise ReproError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        if order not in (None, "length"):
            raise ReproError(
                f"unknown order {order!r}; expected None or 'length'"
            )
        self._dataset = tuple(dataset)
        for index, string in enumerate(self._dataset):
            if not string:
                raise ReproError(
                    f"dataset string at index {index} is empty"
                )
        self._kernel = kernel
        self._order = order
        self._prefilter = prefilter
        self.name = f"sequential[{kernel}]"
        if order:
            self.name += f"+sort({order})"

        max_length = max((len(s) for s in self._dataset), default=1)
        self._max_length = max_length
        # Stage 3's reusable buffers are per-thread: parallel runners
        # share the searcher, and DP rows must never be shared.
        self._local = threading.local()
        # Query → peq table for the bitparallel kernel. Tables are
        # read-only after construction, so sharing across threads is
        # safe; a race at worst rebuilds one table.
        self._peq_cache: dict[str, dict[str, int]] = {}
        # Cumulative work counters (scan.* namespace). Kernels count in
        # locals and flush once per search under the lock, so parallel
        # runners sharing this searcher aggregate correctly.
        self._counters = dict.fromkeys(SCAN_COUNTERS, 0)
        # Per-query latency/size distributions, flushed with the
        # counters so one lock round-trip covers both.
        self._hists = {name: Histogram() for name in SCAN_HISTOGRAMS}
        self._counters_lock = threading.Lock()
        self._metrics = None
        self._recorder = None

        if order == "length":
            self._sorted = sorted(self._dataset, key=len)
            self._sorted_lengths = [len(s) for s in self._sorted]
        else:
            self._sorted = None
            self._sorted_lengths = None

    @property
    def dataset(self) -> tuple[str, ...]:
        """The searched strings."""
        return self._dataset

    @property
    def kernel(self) -> str:
        """The configured kernel name."""
        return self._kernel

    def _candidates(self, query: str, k: int) -> Sequence[str]:
        """The strings the scan visits (all, or the length window)."""
        if self._sorted is None:
            return self._dataset
        assert self._sorted_lengths is not None
        lo = bisect_left(self._sorted_lengths, len(query) - k)
        hi = bisect_right(self._sorted_lengths, len(query) + k)
        return self._sorted[lo:hi]

    def _query_peq(self, query: str) -> dict[str, int]:
        """The query's Myers ``peq`` table, built once per distinct query."""
        peq = self._peq_cache.get(query)
        if peq is None:
            peq = build_peq(query)
            if len(self._peq_cache) >= PEQ_CACHE_SIZE:
                self._peq_cache.clear()
            self._peq_cache[query] = peq
        return peq

    def _calculator(self) -> BandedCalculator:
        calculator = getattr(self._local, "calculator", None)
        if calculator is None:
            calculator = BandedCalculator(max_length=self._max_length)
            self._local.calculator = calculator
        return calculator

    def attach_metrics(self, registry) -> None:
        """Attach a :class:`repro.obs.MetricsRegistry` (or ``None``).

        With a registry attached, every :meth:`search` call records a
        ``scan.search`` span; the always-on ``scan.*`` work counters
        are independent of this hook (see :meth:`counters_snapshot`).
        """
        self._metrics = registry

    def attach_recorder(self, recorder) -> None:
        """Attach a :class:`repro.obs.FlightRecorder` (or ``None``).

        With a recorder attached, each completed search offers a
        :class:`repro.obs.QueryExemplar` carrying its per-query work
        counters; the recorder's threshold decides what is kept.
        """
        self._recorder = recorder

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``scan.*`` work counters since construction.

        Monotonic and thread-safe: callers diff two snapshots to carve
        out one call's work (what :class:`repro.core.engine.SearchEngine`
        does to build a :class:`repro.obs.SearchReport`).
        """
        with self._counters_lock:
            return dict(self._counters)

    def hists_snapshot(self) -> dict[str, Histogram]:
        """Cumulative per-query histograms since construction.

        Same contract as :meth:`counters_snapshot`: monotonic and
        thread-safe, and two snapshots delta exactly (histogram state
        is bucketwise additive), so the engine can carve out one
        call's latency/size distribution for its report.
        """
        with self._counters_lock:
            return {name: hist.copy()
                    for name, hist in self._hists.items()}

    def _flush_counters(self, query: str, k: int, started: float,
                        candidates: int, length_rejects: int,
                        prefilter_rejects: int, kernel_calls: int,
                        early_aborts: int, matches: int) -> None:
        seconds = perf_counter() - started
        with self._counters_lock:
            counters = self._counters
            counters["scan.searches"] += 1
            counters["scan.candidates"] += candidates
            counters["scan.length_rejects"] += length_rejects
            counters["scan.prefilter_rejects"] += prefilter_rejects
            counters["scan.kernel_calls"] += kernel_calls
            counters["scan.early_aborts"] += early_aborts
            counters["scan.matches"] += matches
            hists = self._hists
            hists["scan.query_seconds"].record(seconds)
            hists["scan.candidates_per_query"].record(candidates)
            hists["scan.kernel_calls_per_query"].record(kernel_calls)
        recorder = self._recorder
        if recorder is not None and recorder.interested(seconds):
            recorder.record(QueryExemplar(
                query=query, k=k, backend=self.name, seconds=seconds,
                matches=matches, stages={"scan.search": seconds},
                counters={
                    "scan.candidates": candidates,
                    "scan.length_rejects": length_rejects,
                    "scan.prefilter_rejects": prefilter_rejects,
                    "scan.kernel_calls": kernel_calls,
                    "scan.early_aborts": early_aborts,
                },
            ))

    def search(self, query: str, k: int, *,
               deadline: Deadline | Budget | None = None) -> list[Match]:
        """All distinct dataset strings within distance ``k`` of ``query``.

        With a ``deadline`` set, the scan polls it every
        ``deadline.check_interval`` candidates and raises
        :class:`DeadlineExceeded` carrying the matches proven so far
        (a subset of the exact answer). With ``deadline=None`` the code
        path is byte-identical to before deadlines existed.
        """
        metrics = self._metrics
        if metrics is not None:
            with metrics.trace("scan.search"):
                return self._search_impl(query, k, deadline)
        return self._search_impl(query, k, deadline)

    def _search_impl(self, query: str, k: int,
                     deadline: Deadline | Budget | None = None
                     ) -> list[Match]:
        started = perf_counter()
        check_threshold(k)
        candidates = self._candidates(query, k)
        candidate_count = len(candidates)
        found: dict[str, int] = {}
        if deadline is not None:
            # Deadline runs go through a checking generator: zero cost
            # on the deadline-free path, one poll per check_interval
            # candidates otherwise. The generator closes over ``found``
            # so the exception can carry everything proven so far.
            candidates = _checked_candidates(candidates, deadline,
                                             found, query, k)
        prefilter = self._prefilter
        if prefilter is not None:
            prefilter.prepare_query(query)

        # Work counters, kept in locals through the hot loops and
        # flushed once at the end: with ``order="length"`` the strings
        # the window never visits are length-filter rejects too.
        length_rejects = (len(self._dataset) - candidate_count
                          if self._sorted is not None else 0)
        prefilter_rejects = 0
        kernel_calls = 0
        early_aborts = 0

        kernel = self._kernel
        if kernel == "reference":
            for candidate in candidates:
                if candidate in found:
                    continue
                if prefilter and not prefilter.admits(query, candidate, k):
                    prefilter_rejects += 1
                    continue
                kernel_calls += 1
                distance = edit_distance(query, candidate)
                if distance <= k:
                    found[candidate] = distance
        elif kernel == "banded":
            for candidate in candidates:
                if candidate in found:
                    continue
                if prefilter and not prefilter.admits(query, candidate, k):
                    prefilter_rejects += 1
                    continue
                kernel_calls += 1
                distance = edit_distance_bounded(query, candidate, k)
                if distance is not None:
                    found[candidate] = distance
                else:
                    early_aborts += 1
        elif kernel == "banded-reused":
            calculator = self._calculator()
            for candidate in candidates:
                if candidate in found:
                    continue
                if prefilter and not prefilter.admits(query, candidate, k):
                    prefilter_rejects += 1
                    continue
                kernel_calls += 1
                distance = calculator.distance(query, candidate, k)
                if distance is not None:
                    found[candidate] = distance
                else:
                    early_aborts += 1
        elif kernel == "bitparallel":
            # The paper's "simple data types and program methods" stage
            # re-implements the hot path by hand; the Python analog is
            # inlining Myers' scan loop here — no per-candidate method
            # dispatch, the length filter as plain arithmetic, and an
            # early abort once the running score cannot recover.
            peq_get = self._query_peq(query).get
            n = len(query)
            if n == 0:
                for candidate in candidates:
                    if len(candidate) <= k:
                        found.setdefault(candidate, len(candidate))
                    else:
                        length_rejects += 1
                self._flush_counters(query, k, started,
                                     candidate_count, length_rejects,
                                     0, 0, 0, len(found))
                return sorted(
                    (Match(s, d) for s, d in found.items())
                )
            mask = (1 << n) - 1
            last = 1 << (n - 1)
            for candidate in candidates:
                length = len(candidate)
                gap = length - n
                if candidate in found:
                    continue
                if gap > k or -gap > k:
                    length_rejects += 1
                    continue
                if prefilter and not prefilter.admits(query, candidate, k):
                    prefilter_rejects += 1
                    continue
                kernel_calls += 1
                pv = mask
                mv = 0
                score = n
                remaining = length
                for symbol in candidate:
                    eq = peq_get(symbol, 0)
                    xv = eq | mv
                    xh = (((eq & pv) + pv) ^ pv) | eq
                    ph = mv | (~(xh | pv) & mask)
                    mh = pv & xh
                    if ph & last:
                        score += 1
                    elif mh & last:
                        score -= 1
                    remaining -= 1
                    if score - remaining > k:
                        score = k + 1
                        early_aborts += 1
                        break
                    ph = ((ph << 1) | 1) & mask
                    mh = (mh << 1) & mask
                    pv = mh | (~(xv | ph) & mask)
                    mv = ph & xv
                if score <= k:
                    found[candidate] = score
        else:  # dispatch
            for candidate in candidates:
                if candidate in found:
                    continue
                if prefilter and not prefilter.admits(query, candidate, k):
                    prefilter_rejects += 1
                    continue
                kernel_calls += 1
                distance = bounded_distance(query, candidate, k)
                if distance is not None:
                    found[candidate] = distance
                else:
                    early_aborts += 1

        self._flush_counters(query, k, started,
                             candidate_count, length_rejects,
                             prefilter_rejects, kernel_calls,
                             early_aborts, len(found))
        return sorted(
            (Match(string, distance) for string, distance in found.items())
        )


def _checked_candidates(candidates: Sequence[str],
                        deadline: Deadline | Budget,
                        found: dict[str, int], query: str, k: int):
    """Yield candidates, polling the deadline every ``check_interval``.

    On expiry raises :class:`DeadlineExceeded` carrying the matches the
    enclosing scan had fully verified by then (``found`` is the scan's
    live result dict, mutated in place as the kernel proves matches).
    """
    interval = deadline.check_interval
    countdown = interval
    total = len(candidates)
    scanned = 0
    for candidate in candidates:
        yield candidate
        scanned += 1
        countdown -= 1
        if not countdown:
            countdown = interval
            if deadline.spend(interval):
                raise DeadlineExceeded(
                    f"sequential scan for {query!r} (k={k}) exceeded "
                    f"its deadline after {scanned} of {total} "
                    "candidates",
                    partial=tuple(sorted(
                        Match(string, distance)
                        for string, distance in found.items()
                    )),
                    scope="candidates",
                    completed=scanned,
                    total=total,
                )
