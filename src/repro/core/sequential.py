"""The sequential solution (paper section 3), every stage configurable.

The paper improves one scan loop six times; here each improvement is a
constructor knob, so any rung of the ladder — and any combination the
paper did not try — can be instantiated and measured:

===================  =====================================================
Paper stage          Configuration
===================  =====================================================
1 base               ``kernel="reference"``
2 edit distance      ``kernel="banded"`` (length filter + band + abort)
3 value/reference    ``kernel="banded-reused"`` (preallocated row buffers)
4 simple data types  ``kernel="bitparallel"`` (Myers over integer words)
5 parallelism        pass a :class:`ThreadPerQueryRunner` to the workload
6 managed            pass a pool/adaptive runner to the workload
===================  =====================================================

Future-work knobs (section 6): ``order="length"`` presorts the dataset
and restricts each scan to the ``[len(q) - k, len(q) + k]`` window via
binary search; ``prefilter`` accepts any filter chain (frequency
vectors, q-gram counts) applied before the kernel.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence

from repro.core.result import Match
from repro.core.searcher import Searcher
from repro.distance.banded import (
    BandedCalculator,
    check_threshold,
    edit_distance_bounded,
)
from repro.distance.bitparallel import build_peq
from repro.distance.dispatch import bounded_distance
from repro.distance.levenshtein import edit_distance
from repro.exceptions import ReproError
from repro.filters.base import FilterChain

#: Kernel configurations in paper-ladder order.
KERNELS = (
    "reference",
    "banded",
    "banded-reused",
    "bitparallel",
    "dispatch",
)

#: How many per-query ``peq`` tables the bitparallel kernel retains.
#: Workloads repeat queries (section 5.2 runs nested prefix batches), so
#: rebuilding the table per ``search()`` call was pure waste.
PEQ_CACHE_SIZE = 256


class SequentialScanSearcher(Searcher):
    """Scan the whole dataset per query, with staged optimizations.

    Parameters
    ----------
    dataset:
        The strings to search (order preserved; duplicates legal).
    kernel:
        One of :data:`KERNELS`; see the module docstring ladder.
    order:
        ``None`` scans in dataset order; ``"length"`` presorts by length
        and scans only the window the length filter allows (future-work
        "sorting" item).
    prefilter:
        Optional :class:`FilterChain` applied before the kernel.
        Filters must be sound (no false negatives) for results to stay
        identical — every filter in :mod:`repro.filters` is.

    Examples
    --------
    >>> searcher = SequentialScanSearcher(["Berlin", "Bern", "Ulm"])
    >>> [match.string for match in searcher.search("Berlino", 2)]
    ['Berlin']
    """

    def __init__(self, dataset: Iterable[str], *,
                 kernel: str = "dispatch",
                 order: str | None = None,
                 prefilter: FilterChain | None = None) -> None:
        if kernel not in KERNELS:
            raise ReproError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        if order not in (None, "length"):
            raise ReproError(
                f"unknown order {order!r}; expected None or 'length'"
            )
        self._dataset = tuple(dataset)
        for index, string in enumerate(self._dataset):
            if not string:
                raise ReproError(
                    f"dataset string at index {index} is empty"
                )
        self._kernel = kernel
        self._order = order
        self._prefilter = prefilter
        self.name = f"sequential[{kernel}]"
        if order:
            self.name += f"+sort({order})"

        max_length = max((len(s) for s in self._dataset), default=1)
        self._max_length = max_length
        # Stage 3's reusable buffers are per-thread: parallel runners
        # share the searcher, and DP rows must never be shared.
        self._local = threading.local()
        # Query → peq table for the bitparallel kernel. Tables are
        # read-only after construction, so sharing across threads is
        # safe; a race at worst rebuilds one table.
        self._peq_cache: dict[str, dict[str, int]] = {}

        if order == "length":
            self._sorted = sorted(self._dataset, key=len)
            self._sorted_lengths = [len(s) for s in self._sorted]
        else:
            self._sorted = None
            self._sorted_lengths = None

    @property
    def dataset(self) -> tuple[str, ...]:
        """The searched strings."""
        return self._dataset

    @property
    def kernel(self) -> str:
        """The configured kernel name."""
        return self._kernel

    def _candidates(self, query: str, k: int) -> Sequence[str]:
        """The strings the scan visits (all, or the length window)."""
        if self._sorted is None:
            return self._dataset
        assert self._sorted_lengths is not None
        lo = bisect_left(self._sorted_lengths, len(query) - k)
        hi = bisect_right(self._sorted_lengths, len(query) + k)
        return self._sorted[lo:hi]

    def _query_peq(self, query: str) -> dict[str, int]:
        """The query's Myers ``peq`` table, built once per distinct query."""
        peq = self._peq_cache.get(query)
        if peq is None:
            peq = build_peq(query)
            if len(self._peq_cache) >= PEQ_CACHE_SIZE:
                self._peq_cache.clear()
            self._peq_cache[query] = peq
        return peq

    def _calculator(self) -> BandedCalculator:
        calculator = getattr(self._local, "calculator", None)
        if calculator is None:
            calculator = BandedCalculator(max_length=self._max_length)
            self._local.calculator = calculator
        return calculator

    def search(self, query: str, k: int) -> list[Match]:
        """All distinct dataset strings within distance ``k`` of ``query``."""
        check_threshold(k)
        candidates = self._candidates(query, k)
        prefilter = self._prefilter
        if prefilter is not None:
            prefilter.prepare_query(query)

        found: dict[str, int] = {}
        kernel = self._kernel
        if kernel == "reference":
            for candidate in candidates:
                if candidate in found:
                    continue
                if prefilter and not prefilter.admits(query, candidate, k):
                    continue
                distance = edit_distance(query, candidate)
                if distance <= k:
                    found[candidate] = distance
        elif kernel == "banded":
            for candidate in candidates:
                if candidate in found:
                    continue
                if prefilter and not prefilter.admits(query, candidate, k):
                    continue
                distance = edit_distance_bounded(query, candidate, k)
                if distance is not None:
                    found[candidate] = distance
        elif kernel == "banded-reused":
            calculator = self._calculator()
            for candidate in candidates:
                if candidate in found:
                    continue
                if prefilter and not prefilter.admits(query, candidate, k):
                    continue
                distance = calculator.distance(query, candidate, k)
                if distance is not None:
                    found[candidate] = distance
        elif kernel == "bitparallel":
            # The paper's "simple data types and program methods" stage
            # re-implements the hot path by hand; the Python analog is
            # inlining Myers' scan loop here — no per-candidate method
            # dispatch, the length filter as plain arithmetic, and an
            # early abort once the running score cannot recover.
            peq_get = self._query_peq(query).get
            n = len(query)
            if n == 0:
                for candidate in candidates:
                    if len(candidate) <= k:
                        found.setdefault(candidate, len(candidate))
                return sorted(
                    (Match(s, d) for s, d in found.items())
                )
            mask = (1 << n) - 1
            last = 1 << (n - 1)
            for candidate in candidates:
                length = len(candidate)
                gap = length - n
                if gap > k or -gap > k or candidate in found:
                    continue
                if prefilter and not prefilter.admits(query, candidate, k):
                    continue
                pv = mask
                mv = 0
                score = n
                remaining = length
                for symbol in candidate:
                    eq = peq_get(symbol, 0)
                    xv = eq | mv
                    xh = (((eq & pv) + pv) ^ pv) | eq
                    ph = mv | (~(xh | pv) & mask)
                    mh = pv & xh
                    if ph & last:
                        score += 1
                    elif mh & last:
                        score -= 1
                    remaining -= 1
                    if score - remaining > k:
                        score = k + 1
                        break
                    ph = ((ph << 1) | 1) & mask
                    mh = (mh << 1) & mask
                    pv = mh | (~(xv | ph) & mask)
                    mv = ph & xv
                if score <= k:
                    found[candidate] = score
        else:  # dispatch
            for candidate in candidates:
                if candidate in found:
                    continue
                if prefilter and not prefilter.admits(query, candidate, k):
                    continue
                distance = bounded_distance(query, candidate, k)
                if distance is not None:
                    found[candidate] = distance

        return sorted(
            (Match(string, distance) for string, distance in found.items())
        )
