"""Cost-model query planner: ``backend="auto"`` as a calibrated decision.

The paper's whole result is that the scan-vs-index winner flips with
string length, alphabet size, threshold ``k`` and corpus size — a
*runtime* property, not a configuration constant. This module turns the
engine's old one-shot heuristic into a Postgres-style cost-based
planner:

* :class:`CostProfile` — per-unit time constants (seconds per candidate
  touched, per trie node visited, per kernel call, per vector-kernel
  row), fitted offline by :func:`calibrate` and persisted as a
  versioned JSON profile.
* :func:`collect_statistics` / :class:`CorpusStatistics` — the ANALYZE
  pass: an exact length histogram (with prefix sums, so the ±k length
  window is an exact candidate count, not a guess), alphabet size,
  the trie's node-per-depth profile and the q-gram posting volume.
* :class:`Planner` — scores all four execution strategies (sequential
  scan, compiled batch scan, flat trie, q-gram filter pipeline) for a
  request's shape (query lengths, ``k``, batch size, deadline) and
  picks the cheapest; :meth:`Planner.observe` feeds executed
  :class:`repro.obs.SearchReport` windows back into per-``(strategy,
  k)`` EWMA corrections so estimates track the actual hardware.
* :class:`QueryPlan` — the ``EXPLAIN`` output: the chosen strategy,
  every per-strategy cost estimate with its work breakdown, and the
  statistics that drove the decision. Engines serialize it into the
  report's additive ``plan`` section.
* :class:`PlannerPolicy` — the request-level spelling that replaces the
  deprecated per-call ``backend=`` string hints.

Examples
--------
>>> stats = collect_statistics(["Berlin", "Bern", "Ulm"])
>>> (stats.count, stats.trie_nodes)
(3, 10)
>>> planner = Planner(stats)
>>> plan = planner.plan(length=6, k=1)
>>> plan.strategy in STRATEGIES
True
>>> plan.estimates[0].cost == min(e.cost for e in plan.estimates)
True
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import ReproError

#: The four execution strategies the planner scores. ``"indexed"`` is
#: the compiled flat trie; ``"qgram"`` the inverted q-gram pipeline.
STRATEGIES = ("sequential", "compiled", "indexed", "qgram")

#: Stamped into persisted profiles; bump on breaking constant renames.
PROFILE_VERSION = 1

#: Columns the banded kernel touches before the early abort fires, per
#: unit of (k + 1). Random non-matching candidates accumulate roughly
#: one mismatch every couple of columns, so the abort lands near here.
ABORT_SPAN_PER_K = 2.5

#: Survival probability, per unit of required q-gram overlap, of a
#: length-window candidate against the count filter.
QGRAM_SURVIVAL = 0.35

#: Representative threshold for the dataset-level default plan.
DEFAULT_PLAN_K = 2

#: EWMA smoothing for online corrections, and their clamp range (a
#: single wild window cannot poison the model).
_EWMA_ALPHA = 0.3
_SCALE_MIN = 1.0 / 32.0
_SCALE_MAX = 32.0

#: Strategies the batch executors can serve (the compiled scan and the
#: flat-trie batch path both dedupe and memoize; the other two have no
#: batch engine — the compiled scan amortizes the same kernel anyway).
_BATCH_STRATEGIES = ("compiled", "indexed")


# --------------------------------------------------------------------
# policy: the request-level spelling


@dataclass(frozen=True)
class PlannerPolicy:
    """How a request wants its execution strategy decided.

    The replacement for per-call ``backend=`` string hints: ``plan=``
    on :class:`repro.core.request.SearchRequest` and the engine entry
    points takes one of these. The default (all fields ``None``) lets
    the planner pick.

    Attributes
    ----------
    strategy:
        Force one of :data:`STRATEGIES` (``None`` = planner decides).
    allow:
        Restrict the planner's choice to this subset (``None`` = all).

    Examples
    --------
    >>> PlannerPolicy.from_backend("compiled").strategy
    'compiled'
    >>> PlannerPolicy.from_backend("auto").is_auto
    True
    """

    strategy: str | None = None
    allow: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.strategy is not None and self.strategy not in STRATEGIES:
            raise ReproError(
                f"unknown strategy {self.strategy!r}; expected one of "
                f"{STRATEGIES}"
            )
        if self.allow is not None:
            allow = tuple(self.allow)
            for name in allow:
                if name not in STRATEGIES:
                    raise ReproError(
                        f"unknown strategy {name!r} in allow; expected "
                        f"a subset of {STRATEGIES}"
                    )
            if not allow:
                raise ReproError("allow must name at least one strategy")
            object.__setattr__(self, "allow", allow)

    @property
    def is_auto(self) -> bool:
        """Whether the planner gets to decide."""
        return self.strategy is None

    @classmethod
    def from_backend(cls, backend: str | None) -> "PlannerPolicy":
        """The policy equivalent of a legacy backend string hint."""
        if backend in (None, "auto"):
            return AUTO_POLICY
        return cls(strategy=backend)

    def allowed(self) -> tuple[str, ...]:
        """The strategies the planner may pick from."""
        if self.strategy is not None:
            return (self.strategy,)
        return self.allow if self.allow is not None else STRATEGIES


#: Shared all-defaults policy so request construction allocates nothing.
AUTO_POLICY = PlannerPolicy()


# --------------------------------------------------------------------
# the calibrated constants


@dataclass(frozen=True)
class CostProfile:
    """Per-unit time constants of the cost model, in seconds.

    Defaults are conservative laptop-class numbers; :func:`calibrate`
    fits them to the running machine and :meth:`save`/:meth:`load`
    persist them as a versioned JSON profile. The planner's online
    corrections (:meth:`Planner.observe`) then track drift without
    rewriting the profile.

    Examples
    --------
    >>> profile = CostProfile()
    >>> restored = CostProfile.from_dict(profile.to_dict())
    >>> restored == profile
    True
    """

    #: Per candidate touched by the per-query python scan, plus its
    #: per-column (banded DP) term and per-query setup.
    seq_candidate: float = 1.5e-6
    seq_char: float = 6.0e-7
    seq_setup: float = 1.0e-5
    #: Per candidate through the compiled scan's scalar kernel call,
    #: its per-column term, and the per-distinct-query setup (encoding,
    #: bucket dispatch, memo bookkeeping).
    scan_candidate: float = 4.0e-7
    scan_char: float = 1.2e-7
    scan_setup: float = 4.0e-5
    #: Per corpus row through the vectorized (packed) bucket kernel.
    scan_row: float = 8.0e-8
    #: Per flat-trie node visited, plus per-query descent setup.
    trie_node: float = 9.0e-7
    trie_setup: float = 2.0e-5
    #: Per posting-list entry scanned by the q-gram filter, plus setup.
    qgram_posting: float = 1.2e-7
    qgram_setup: float = 2.0e-5
    #: A batch-dedup memo hit (result already computed this batch).
    memo_hit: float = 2.0e-6
    version: int = PROFILE_VERSION
    source: str = "default"
    samples: int = 0

    _CONSTANTS = (
        "seq_candidate", "seq_char", "seq_setup",
        "scan_candidate", "scan_char", "scan_setup", "scan_row",
        "trie_node", "trie_setup", "qgram_posting", "qgram_setup",
        "memo_hit",
    )

    def __post_init__(self) -> None:
        for name in self._CONSTANTS:
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value <= 0 \
                    or not math.isfinite(value):
                raise ReproError(
                    f"profile constant {name} must be a positive finite "
                    f"number, got {value!r}"
                )

    def constants(self) -> dict[str, float]:
        """The per-unit constants as a plain mapping."""
        return {name: float(getattr(self, name))
                for name in self._CONSTANTS}

    def to_dict(self) -> dict[str, Any]:
        """The persisted form (see :meth:`save`)."""
        mapping: dict[str, Any] = {
            "profile_version": self.version,
            "source": self.source,
            "samples": self.samples,
        }
        mapping.update(self.constants())
        return mapping

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "CostProfile":
        """Rebuild a profile from its :meth:`to_dict` form."""
        version = mapping.get("profile_version")
        if version != PROFILE_VERSION:
            raise ReproError(
                f"unsupported cost profile version {version!r}; this "
                f"build reads version {PROFILE_VERSION}"
            )
        kwargs: dict[str, Any] = {
            name: mapping[name] for name in cls._CONSTANTS
            if name in mapping
        }
        missing = [name for name in cls._CONSTANTS
                   if name not in mapping]
        if missing:
            raise ReproError(
                "cost profile is missing constants: " + ", ".join(missing)
            )
        return cls(version=PROFILE_VERSION,
                   source=str(mapping.get("source", "loaded")),
                   samples=int(mapping.get("samples", 0)),
                   **kwargs)

    def save(self, path: str) -> str:
        """Persist the profile as JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "CostProfile":
        """Load a profile persisted by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# --------------------------------------------------------------------
# corpus statistics (the ANALYZE pass)


@dataclass(frozen=True)
class CorpusStatistics:
    """Cheap corpus statistics the planner's estimates run on.

    Collected once per dataset by :func:`collect_statistics` in one
    O(total characters) pass (plus a sort of the distinct strings).
    ``lengths``/``length_counts`` carry the exact length histogram, so
    ``candidates_in_window`` is an exact count, mirroring how database
    planners read row counts off ANALYZE histograms. ``trie_nodes`` /
    ``nodes_by_depth`` describe the *uncompressed* character trie
    (computed from sorted-neighbor common prefixes, without building
    one) — an upper-bound prior for trie work that the planner's
    online corrections tighten toward the radix-compressed reality.
    """

    count: int
    distinct: int
    alphabet_size: int
    total_chars: int
    mean_length: float
    max_length: int
    #: Sorted distinct lengths and the matching cumulative counts
    #: (``cumulative[i]`` = strings with length <= ``lengths[i]``).
    lengths: tuple[int, ...]
    cumulative: tuple[int, ...]
    #: ``nodes_by_depth[d]`` = character-trie nodes at depth ``d + 1``.
    nodes_by_depth: tuple[int, ...]
    trie_nodes: int
    qgram_q: int
    qgram_grams: int
    qgram_positions: int
    #: Per distinct length (aligned with ``lengths``): q-gram positions
    #: contributed by strings of that length, and the sum over those
    #: positions of the full-corpus posting size of the gram standing
    #: there. Their ratio is the expected posting size of a gram drawn
    #: from a string of that length — frequency-weighted, because a
    #: query's grams are more likely to be the corpus's frequent ones.
    posting_positions: tuple[int, ...] = ()
    posting_weight: tuple[int, ...] = ()

    def candidates_in_window(self, length: int, k: int) -> int:
        """Exact count of strings with length in ``[length-k, length+k]``.

        The length filter (paper eq. 5) admits exactly these, so this
        is the true candidate volume of both scan strategies.
        """
        if not self.lengths:
            return 0
        lo = bisect_left(self.lengths, length - k)
        hi = bisect_right(self.lengths, length + k)
        below = self.cumulative[lo - 1] if lo else 0
        return (self.cumulative[hi - 1] if hi else 0) - below

    @property
    def avg_posting(self) -> float:
        """Mean posting-list length of the corpus q-gram index."""
        if not self.qgram_grams:
            return 0.0
        return self.qgram_positions / self.qgram_grams

    def expected_posting(self, length: int, k: int) -> float:
        """Expected posting size of a q-gram from a length-``length``
        query.

        Conditioning on the candidate window matters on mixed corpora:
        a short city-style query only carries city-style grams (short
        postings), a long DNA read only carries 4-symbol grams (huge
        postings) — the corpus-wide mean would split the difference
        and misprice both.
        """
        if not self.posting_positions:
            return self.avg_posting
        lo = bisect_left(self.lengths, length - k)
        hi = bisect_right(self.lengths, length + k)
        positions = sum(self.posting_positions[lo:hi])
        if positions:
            return sum(self.posting_weight[lo:hi]) / positions
        total = sum(self.posting_positions)
        if total:
            return sum(self.posting_weight) / total
        return self.avg_posting

    def to_dict(self) -> dict[str, Any]:
        """The compact summary embedded in plans and reports."""
        return {
            "count": self.count,
            "distinct": self.distinct,
            "alphabet_size": self.alphabet_size,
            "mean_length": round(self.mean_length, 2),
            "max_length": self.max_length,
            "trie_nodes": self.trie_nodes,
            "qgram_grams": self.qgram_grams,
            "qgram_avg_posting": round(self.avg_posting, 2),
        }


def collect_statistics(dataset: Iterable[str], *,
                       q: int = 2) -> CorpusStatistics:
    """One ANALYZE pass over the dataset (see :class:`CorpusStatistics`).

    Examples
    --------
    >>> stats = collect_statistics(["Berlin", "Bern", "Ulm"])
    >>> stats.candidates_in_window(5, 1)
    2
    >>> stats.alphabet_size
    8
    """
    strings = [s if isinstance(s, str) else str(s) for s in dataset]
    count = len(strings)
    total_chars = sum(len(s) for s in strings)
    alphabet: set[str] = set()
    length_hist: dict[int, int] = {}
    positions = 0
    gram_counts: dict[str, int] = {}
    for s in strings:
        alphabet.update(s)
        length_hist[len(s)] = length_hist.get(len(s), 0) + 1
        if len(s) >= q:
            positions += len(s) - q + 1
            for i in range(len(s) - q + 1):
                gram = s[i:i + q]
                gram_counts[gram] = gram_counts.get(gram, 0) + 1
    lengths = tuple(sorted(length_hist))
    positions_by_length = {length: 0 for length in lengths}
    weight_by_length = {length: 0 for length in lengths}
    for s in strings:
        if len(s) >= q:
            positions_by_length[len(s)] += len(s) - q + 1
            weight_by_length[len(s)] += sum(
                gram_counts[s[i:i + q]]
                for i in range(len(s) - q + 1)
            )
    cumulative: list[int] = []
    running = 0
    for length in lengths:
        running += length_hist[length]
        cumulative.append(running)
    # Character-trie shape from sorted-neighbor common prefixes: string
    # s after predecessor p contributes one new node per character past
    # lcp(s, p). A difference array turns that into nodes-per-depth.
    distinct = sorted(set(strings))
    max_length = max(lengths) if lengths else 0
    diff = [0] * (max_length + 1)
    previous = None
    for s in distinct:
        lcp = 0
        if previous is not None:
            limit = min(len(previous), len(s))
            while lcp < limit and previous[lcp] == s[lcp]:
                lcp += 1
        if len(s) > lcp:
            diff[lcp] += 1
            diff[len(s)] -= 1 if len(s) < len(diff) else 0
        previous = s
    nodes_by_depth: list[int] = []
    running = 0
    for depth in range(max_length):
        running += diff[depth]
        nodes_by_depth.append(running)
    return CorpusStatistics(
        count=count,
        distinct=len(distinct),
        alphabet_size=len(alphabet),
        total_chars=total_chars,
        mean_length=(total_chars / count) if count else 0.0,
        max_length=max_length,
        lengths=lengths,
        cumulative=tuple(cumulative),
        nodes_by_depth=tuple(nodes_by_depth),
        trie_nodes=sum(nodes_by_depth),
        qgram_q=q,
        qgram_grams=len(gram_counts),
        qgram_positions=positions,
        posting_positions=tuple(positions_by_length[length]
                                for length in lengths),
        posting_weight=tuple(weight_by_length[length]
                             for length in lengths),
    )


# --------------------------------------------------------------------
# the EXPLAIN output


@dataclass(frozen=True)
class CostEstimate:
    """One strategy's scored cost for a request shape."""

    strategy: str
    cost: float                     # estimated seconds, total
    work: Mapping[str, float]       # unit name -> estimated count
    feasible: bool = True
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        mapping: dict[str, Any] = {
            "strategy": self.strategy,
            "cost": float(self.cost),
            "feasible": self.feasible,
            "work": {name: round(float(value), 3)
                     for name, value in self.work.items()},
        }
        if self.note:
            mapping["note"] = self.note
        return mapping


@dataclass(frozen=True)
class PlanGroup:
    """One batch slice: which query indices a strategy serves."""

    strategy: str
    indices: tuple[int, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"strategy": self.strategy, "queries": len(self.indices)}


@dataclass(frozen=True)
class QueryPlan:
    """The planner's EXPLAIN-style answer for one request.

    ``estimates`` holds every strategy's scored cost (feasible ones
    first, cheapest first); ``statistics`` the numbers that drove the
    decision; ``groups`` the per-strategy batch split (a single group
    unless splitting a mixed batch pays for the extra executor).
    """

    strategy: str
    reason: str
    k: int
    queries: int
    unique_queries: int
    estimates: tuple[CostEstimate, ...]
    statistics: Mapping[str, Any]
    groups: tuple[PlanGroup, ...]
    profile_source: str
    profile_version: int
    forced: bool = False

    @property
    def best_cost(self) -> float:
        """The chosen strategy's estimated seconds."""
        return self.cost_for(self.strategy)

    def cost_for(self, strategy: str) -> float:
        """The estimated seconds of one scored strategy."""
        for estimate in self.estimates:
            if estimate.strategy == strategy:
                return estimate.cost
        raise ReproError(f"strategy {strategy!r} was not scored")

    def to_dict(self) -> dict[str, Any]:
        """The ``plan`` section serialized into :class:`SearchReport`."""
        return {
            "strategy": self.strategy,
            "reason": self.reason,
            "k": self.k,
            "queries": self.queries,
            "unique_queries": self.unique_queries,
            "forced": self.forced,
            "estimates": [e.to_dict() for e in self.estimates],
            "statistics": dict(self.statistics),
            "groups": [g.to_dict() for g in self.groups],
            "profile": {
                "source": self.profile_source,
                "version": self.profile_version,
            },
        }

    def render(self) -> str:
        """The EXPLAIN table, human-readable."""
        header = (
            f"QueryPlan: strategy={self.strategy} k={self.k} "
            f"queries={self.queries}"
        )
        if self.unique_queries != self.queries:
            header += f" (unique {self.unique_queries})"
        if self.forced:
            header += " [forced]"
        lines = [
            header,
            f"  profile: {self.profile_source} v{self.profile_version}",
            "  rank  strategy    est. seconds  work",
        ]
        for rank, estimate in enumerate(self.estimates, start=1):
            marker = "->" if estimate.strategy == self.strategy else "  "
            work = ", ".join(
                f"{name}={value:g}"
                for name, value in estimate.work.items()
            )
            tail = "" if estimate.feasible else \
                f"  [infeasible: {estimate.note}]"
            lines.append(
                f"  {marker}{rank:>2}  {estimate.strategy:<10}  "
                f"{estimate.cost:>12.6f}  {work}{tail}"
            )
        if len(self.groups) > 1:
            split = ", ".join(
                f"{group.strategy}:{len(group.indices)}"
                for group in self.groups
            )
            lines.append(f"  batch split: {split}")
        lines.append(f"  reason: {self.reason}")
        return "\n".join(lines)


#: Keys a serialized ``plan`` report section must carry (checked by
#: :func:`repro.obs.report.validate_report` when the section appears).
PLAN_SCHEMA_KEYS = ("strategy", "reason", "k", "queries", "estimates",
                    "statistics", "profile")


def validate_plan(mapping: Mapping[str, Any]) -> list[str]:
    """Check a serialized plan section; returns the problems found."""
    problems: list[str] = []
    if not isinstance(mapping, Mapping):
        return [f"plan must be a mapping, got {type(mapping).__name__}"]
    for key in PLAN_SCHEMA_KEYS:
        if key not in mapping:
            problems.append(f"plan section missing key: {key}")
    if problems:
        return problems
    if mapping["strategy"] not in STRATEGIES:
        problems.append(
            f"plan strategy {mapping['strategy']!r} not in {STRATEGIES}"
        )
    estimates = mapping["estimates"]
    if not isinstance(estimates, list) or not estimates:
        problems.append("plan estimates must be a non-empty list")
        return problems
    for estimate in estimates:
        for key in ("strategy", "cost", "feasible"):
            if key not in estimate:
                problems.append(f"plan estimate missing key: {key}")
    return problems


# --------------------------------------------------------------------
# the planner


class Planner:
    """Score the four strategies for a request shape; pick the cheapest.

    Parameters
    ----------
    statistics:
        The corpus's :class:`CorpusStatistics` (or the dataset itself,
        which is analyzed here).
    profile:
        A :class:`CostProfile`; defaults to the built-in constants.
    packed:
        Whether the compiled corpus is packed (the vectorized bucket
        kernel applies, priced per row instead of per scalar call).

    The planner is deterministic: the same profile, statistics and
    request always produce the same plan. :meth:`observe` adds bounded
    per-``(strategy, k)`` EWMA corrections learned from executed
    reports, after which plans reflect the corrected costs — still
    deterministically, given the same observation history.
    """

    def __init__(self, statistics: CorpusStatistics | Iterable[str], *,
                 profile: CostProfile | None = None,
                 packed: bool = False) -> None:
        if not isinstance(statistics, CorpusStatistics):
            statistics = collect_statistics(statistics)
        self._stats = statistics
        self._profile = profile if profile is not None else CostProfile()
        self._packed = packed
        #: (strategy, k) -> EWMA of actual/predicted seconds.
        self._corrections: dict[tuple[str, int], float] = {}
        self._observed_windows = 0
        #: Single-query plans keyed by shape — costs depend on the
        #: query only through its length, so repeated shapes reuse the
        #: frozen plan. Invalidated whenever a correction moves.
        self._plan_cache: dict[tuple, QueryPlan] = {}

    @property
    def statistics(self) -> CorpusStatistics:
        """The ANALYZE statistics the estimates run on."""
        return self._stats

    @property
    def profile(self) -> CostProfile:
        """The per-unit constants in force."""
        return self._profile

    @property
    def observed_windows(self) -> int:
        """How many report windows have refit the corrections."""
        return self._observed_windows

    def corrections(self) -> dict[str, float]:
        """The online corrections, as ``"strategy@k" -> factor``."""
        return {
            f"{strategy}@{k}": round(factor, 4)
            for (strategy, k), factor in sorted(self._corrections.items())
        }

    def refresh_statistics(
            self, statistics: CorpusStatistics | Iterable[str]) -> None:
        """Swap in fresh ANALYZE statistics after the corpus drifted.

        The live-corpus write path calls this when its epoch moves so
        ``backend="auto"`` keeps pricing against reality. The plan
        cache is invalidated (its costs embedded the old statistics);
        the learned EWMA corrections are *kept* — they model per-unit
        kernel costs on this hardware, which survive data drift.
        """
        if not isinstance(statistics, CorpusStatistics):
            statistics = collect_statistics(statistics)
        self._stats = statistics
        self._plan_cache.clear()

    # -- per-strategy estimators -------------------------------------

    @staticmethod
    def _effective_columns(length: int, k: int) -> float:
        """DP columns a non-matching candidate costs before the abort."""
        span = ABORT_SPAN_PER_K * (k + 1)
        return max(1.0, min(float(max(length, 1)), span))

    def _correction(self, strategy: str, k: int) -> float:
        """The learned cost correction for ``(strategy, k)``.

        Exact-``k`` observations win; otherwise the strategy's mean
        across observed thresholds; 1.0 before any observation.
        """
        exact = self._corrections.get((strategy, k))
        if exact is not None:
            return exact
        factors = [factor for (name, _), factor
                   in self._corrections.items() if name == strategy]
        if factors:
            return sum(factors) / len(factors)
        return 1.0

    def _raw_trie_nodes(self, length: int, k: int) -> float:
        """Analytic prior for trie nodes visited by one query.

        Every node above depth ``k + 1`` is reachable (insertions alone
        keep any short path alive); deeper frontiers decay
        geometrically — a surviving path must keep its banded distance
        within ``k``, and each extra level keeps roughly ``2k + 1``
        band cells alive out of ``alphabet`` ways to extend.
        """
        stats = self._stats
        if not stats.nodes_by_depth:
            return 0.0
        sigma = max(2, stats.alphabet_size)
        decay = (2.0 * k + 1.0) / (2.0 * k + 1.0 + sigma)
        reach = 1.0
        visited = 0.0
        horizon = min(len(stats.nodes_by_depth), length + k)
        for index in range(horizon):
            depth = index + 1
            if depth > k + 1:
                reach *= decay
                if reach < 1e-6:
                    break
            visited += stats.nodes_by_depth[index] * reach
        return max(1.0, visited)

    def _estimate_one(self, strategy: str, length: int,
                      k: int) -> tuple[float, dict[str, float]]:
        """(seconds, work units) for one distinct query, uncorrected."""
        p = self._profile
        stats = self._stats
        window = stats.candidates_in_window(length, k)
        cols = self._effective_columns(length, k)
        if strategy == "sequential":
            cost = p.seq_setup + window * (p.seq_candidate
                                           + p.seq_char * cols)
            return cost, {"candidates": float(window), "columns": cols}
        if strategy == "compiled":
            if self._packed:
                per_candidate = p.scan_row * cols
                work = {"rows": float(window), "columns": cols}
            else:
                per_candidate = p.scan_candidate + p.scan_char * cols
                work = {"candidates": float(window), "columns": cols}
            return p.scan_setup + window * per_candidate, work
        if strategy == "indexed":
            nodes = self._raw_trie_nodes(length, k)
            return (p.trie_setup + nodes * p.trie_node,
                    {"trie_nodes": nodes})
        if strategy == "qgram":
            q = stats.qgram_q
            query_grams = max(0, length - q + 1)
            postings = query_grams * stats.expected_posting(length, k)
            required = query_grams - q * k
            if required > 0:
                survivors = window * (QGRAM_SURVIVAL ** required)
            else:
                survivors = float(window)
            cost = (p.qgram_setup + postings * p.qgram_posting
                    + survivors * (p.seq_candidate + p.seq_char * cols))
            return cost, {"postings": postings, "verify": survivors}
        raise ReproError(f"unknown strategy {strategy!r}")

    def estimate(self, strategy: str, length: int, k: int) -> float:
        """Corrected estimated seconds for one distinct query."""
        cost, _ = self._estimate_one(strategy, length, k)
        return cost * self._correction(strategy, k)

    # -- planning ----------------------------------------------------

    def plan(self, request: Any = None, *,
             length: int | None = None,
             k: int | None = None,
             queries: Sequence[str] | None = None,
             deadline: bool = False,
             batch: bool = False,
             policy: PlannerPolicy | None = None) -> QueryPlan:
        """Score every strategy for a request (or bare shape); pick one.

        Either pass a :class:`repro.core.request.SearchRequest` (its
        queries, ``k``, deadline and ``plan`` policy are read off it),
        or describe the shape directly with ``length``/``k`` (single
        query) or ``queries``/``k`` (batch).
        """
        if request is not None:
            query_list = list(request.queries)
            k = request.k
            deadline = request.deadline is not None
            batch = request.is_batch
            if policy is None:
                policy = getattr(request, "plan", None)
        elif queries is not None:
            query_list = list(queries)
            batch = batch or len(query_list) != 1
        elif length is not None:
            query_list = ["x" * max(0, int(length))]
        else:
            raise ReproError(
                "plan() needs a request, queries, or a length"
            )
        if k is None:
            raise ReproError("plan() needs k")
        policy = policy if policy is not None else AUTO_POLICY
        return self._plan_shape(query_list, k, deadline=deadline,
                                batch=batch, policy=policy)

    def plan_queries(self, queries: Sequence[str], k: int, *,
                     deadline: bool = False, batch: bool = False,
                     policy: PlannerPolicy | None = None) -> QueryPlan:
        """Plan explicit queries with explicit execution context.

        Unlike :meth:`plan` with a request, ``batch`` here means "the
        call goes through a batch *executor*" — workload mode runs
        many queries through per-query searchers, so it plans with
        ``batch=False`` and every strategy stays feasible.
        """
        return self._plan_shape(
            list(queries), k, deadline=deadline, batch=batch,
            policy=policy if policy is not None else AUTO_POLICY,
        )

    def _feasibility(self, strategy: str, *, deadline: bool,
                     batch: bool) -> tuple[bool, str]:
        if strategy == "qgram" and deadline:
            return False, "the q-gram path cannot honor deadlines"
        if batch and strategy not in _BATCH_STRATEGIES:
            return False, "no batch executor for this strategy"
        return True, ""

    def _plan_shape(self, query_list: list[str], k: int, *,
                    deadline: bool, batch: bool,
                    policy: PlannerPolicy) -> QueryPlan:
        cache_key = None
        if len(query_list) == 1:
            cache_key = (len(query_list[0]), k, deadline, batch, policy)
            cached = self._plan_cache.get(cache_key)
            if cached is not None:
                return cached
        plan = self._plan_shape_uncached(query_list, k,
                                         deadline=deadline, batch=batch,
                                         policy=policy)
        if cache_key is not None:
            if len(self._plan_cache) >= 4096:
                self._plan_cache.clear()
            self._plan_cache[cache_key] = plan
        return plan

    def _plan_shape_uncached(self, query_list: list[str], k: int, *,
                             deadline: bool, batch: bool,
                             policy: PlannerPolicy) -> QueryPlan:
        n = len(query_list)
        unique = len(set(query_list)) if n > 1 else n
        dup_hits = n - unique
        unique_ratio = (unique / n) if n else 1.0
        # Group by length: costs depend on the query only through it.
        by_length: dict[int, list[int]] = {}
        for index, query in enumerate(query_list):
            by_length.setdefault(len(query), []).append(index)
        mean_length = (sum(len(q) for q in query_list) / n) if n \
            else self._stats.mean_length
        p = self._profile
        allowed = policy.allowed()
        totals: dict[str, float] = {}
        works: dict[str, dict[str, float]] = {}
        per_group_cost: dict[int, dict[str, float]] = {}
        for strategy in STRATEGIES:
            total = 0.0
            work: dict[str, float] = {}
            correction = self._correction(strategy, k)
            for length, indices in sorted(by_length.items()):
                distinct = max(1.0, len(indices) * unique_ratio) \
                    if n else 0.0
                cost_one, work_one = self._estimate_one(strategy,
                                                        length, k)
                group_cost = distinct * cost_one * correction
                per_group_cost.setdefault(length, {})[strategy] = \
                    group_cost
                total += group_cost
                for name, value in work_one.items():
                    if name == "columns":
                        # A per-candidate width, not a volume: report
                        # the widest group rather than a meaningless
                        # sum over queries.
                        work[name] = max(work.get(name, 0.0), value)
                    else:
                        work[name] = work.get(name, 0.0) \
                            + value * distinct
            total += dup_hits * p.memo_hit
            totals[strategy] = total
            works[strategy] = work
        # Rank: feasible & allowed first, then by corrected cost.
        estimates: list[CostEstimate] = []
        for strategy in STRATEGIES:
            feasible, note = self._feasibility(strategy,
                                               deadline=deadline,
                                               batch=batch)
            if feasible and strategy not in allowed:
                feasible, note = False, "excluded by the policy"
            estimates.append(CostEstimate(
                strategy=strategy,
                cost=totals[strategy],
                work=MappingProxyType(works[strategy]),
                feasible=feasible,
                note=note,
            ))
        estimates.sort(key=lambda e: (not e.feasible, e.cost,
                                      STRATEGIES.index(e.strategy)))
        candidates = [e for e in estimates if e.feasible]
        forced = policy.strategy is not None
        if forced:
            chosen = policy.strategy
            reason = "forced by caller"
        elif candidates:
            chosen = candidates[0].strategy
            reason = self._reason(candidates, mean_length, k)
        else:
            # Nothing feasible (e.g. every strategy excluded): fall
            # back to the scan, which always answers correctly.
            chosen = "sequential"
            reason = ("no feasible strategy under the policy; "
                      "falling back to the sequential scan")
        groups = self._split_groups(by_length, per_group_cost, chosen,
                                    totals, batch=batch,
                                    deadline=deadline, forced=forced,
                                    allowed=allowed, n=n)
        statistics = dict(self._stats.to_dict())
        statistics.update({
            "query_mean_length": round(mean_length, 2),
            "unique_ratio": round(unique_ratio, 4),
            "window": self._stats.candidates_in_window(
                int(round(mean_length)), k),
            "corrections": self.corrections(),
            "observed_windows": self._observed_windows,
        })
        return QueryPlan(
            strategy=chosen,
            reason=reason,
            k=k,
            queries=n,
            unique_queries=unique,
            estimates=tuple(estimates),
            statistics=MappingProxyType(statistics),
            groups=groups,
            profile_source=self._profile.source,
            profile_version=self._profile.version,
            forced=forced,
        )

    def _reason(self, candidates: list[CostEstimate],
                mean_length: float, k: int) -> str:
        stats = self._stats
        best = candidates[0]
        if len(candidates) > 1:
            runner_up = candidates[1]
            margin = (f"{best.cost:.2e}s vs {runner_up.cost:.2e}s "
                      f"{runner_up.strategy}")
        else:
            margin = f"{best.cost:.2e}s"
        long_strings = stats.mean_length > 40
        tiny_alphabet = 0 < stats.alphabet_size <= 8
        if long_strings and tiny_alphabet:
            regime = ("the paper's DNA regime (long strings, tiny "
                      "alphabet)")
        else:
            regime = ("the paper's short-string regime (large "
                      "alphabet)")
        return (
            f"{best.strategy} estimated cheapest ({margin}) at k={k} "
            f"for mean query length {mean_length:.0f} over "
            f"{stats.count} strings ({stats.alphabet_size} symbols) — "
            f"{regime}"
        )

    def _split_groups(self, by_length: dict[int, list[int]],
                      per_group_cost: dict[int, dict[str, float]],
                      chosen: str, totals: dict[str, float], *,
                      batch: bool, deadline: bool, forced: bool,
                      allowed: tuple[str, ...],
                      n: int) -> tuple[PlanGroup, ...]:
        """The batch split: per-length-class winners, if they pay.

        Splitting runs each length class through its own cheapest
        batch-capable strategy. Only worthwhile when the combined
        estimate beats the single-strategy plan by more than the extra
        executor's setup; never under a deadline (a single serial
        execution keeps the abort point well-defined) and never when
        the strategy was forced.
        """
        all_indices = tuple(index for indices in by_length.values()
                            for index in indices)
        single = (PlanGroup(chosen, tuple(sorted(all_indices))),)
        if not batch or forced or deadline or len(by_length) < 2:
            return single
        splittable = [s for s in _BATCH_STRATEGIES if s in allowed]
        if len(splittable) < 2:
            return single
        assignment: dict[str, list[int]] = {}
        combined = 0.0
        for length, indices in sorted(by_length.items()):
            costs = per_group_cost[length]
            winner = min(splittable, key=lambda s: costs[s])
            assignment.setdefault(winner, []).extend(indices)
            combined += costs[winner]
        if len(assignment) < 2:
            return single
        overhead = self._profile.scan_setup + self._profile.trie_setup
        if combined + overhead >= 0.9 * totals[chosen]:
            return single
        return tuple(
            PlanGroup(strategy, tuple(sorted(indices)))
            for strategy, indices in sorted(assignment.items())
        )

    # -- the feedback loop -------------------------------------------

    def observe(self, report: Any) -> None:
        """Re-fit corrections from an executed report.

        Accepts a :class:`repro.obs.SearchReport` (or its ``to_dict``
        mapping). The window's actual seconds-per-query are compared
        against the model's prediction for the corpus's mean length,
        and the ``(strategy, k)`` correction moves by a bounded EWMA
        step — constants track the hardware without a recalibration.
        """
        if isinstance(report, Mapping):
            backend = report.get("backend")
            k = report.get("k")
            queries = report.get("queries") or 0
            seconds = report.get("seconds") or 0.0
            batch = report.get("batch")
            unique = (batch or {}).get("unique_queries", queries)
        else:
            backend = getattr(report, "backend", None)
            k = getattr(report, "k", None)
            queries = getattr(report, "queries", 0) or 0
            seconds = getattr(report, "seconds", 0.0) or 0.0
            batch = getattr(report, "batch", None)
            unique = getattr(batch, "unique_queries", queries) \
                if batch is not None else queries
        if backend not in STRATEGIES or k is None or queries < 1:
            return
        length = int(round(self._stats.mean_length))
        self.observe_window(backend, k, [length] * max(1, int(unique)),
                            float(seconds))

    def observe_window(self, strategy: str, k: int,
                       lengths: Sequence[int], seconds: float) -> None:
        """Precise form of :meth:`observe`: actual query lengths known.

        Engines call this after every planner-routed call with the
        distinct queries' lengths, so the correction compares the
        prediction for *exactly* the executed shape.
        """
        if strategy not in STRATEGIES or not lengths or seconds <= 0:
            return
        predicted = sum(
            self._estimate_one(strategy, length, k)[0]
            for length in lengths
        )
        if predicted <= 0:
            return
        ratio = seconds / predicted
        ratio = min(_SCALE_MAX, max(_SCALE_MIN, ratio))
        key = (strategy, k)
        prior = self._corrections.get(key)
        if prior is None:
            updated = ratio
        else:
            updated = prior + _EWMA_ALPHA * (ratio - prior)
        self._corrections[key] = updated
        self._observed_windows += 1
        # Cached plans embed the old correction; drop them — but only
        # when the correction actually moved. Once the loop converges,
        # observations stop invalidating the cache and steady-state
        # planning stays O(1) per call.
        before = prior if prior is not None else 1.0
        if abs(updated - before) > 0.02 * before:
            self._plan_cache.clear()


# --------------------------------------------------------------------
# offline calibration


def _fit_line(samples: list[tuple[float, float]],
              default_intercept: float,
              default_slope: float) -> tuple[float, float]:
    """Least-squares ``y = a + b*x`` with positivity fallbacks."""
    if len(samples) < 2:
        return default_intercept, default_slope
    n = len(samples)
    sx = sum(x for x, _ in samples)
    sy = sum(y for _, y in samples)
    sxx = sum(x * x for x, _ in samples)
    sxy = sum(x * y for x, y in samples)
    denom = n * sxx - sx * sx
    if abs(denom) < 1e-12:
        return default_intercept, default_slope
    slope = (n * sxy - sx * sy) / denom
    intercept = (sy - slope * sx) / n
    if slope <= 0:
        slope = default_slope
    if intercept <= 0:
        # All cost in the per-column term; keep a token intercept.
        intercept = min(y for _, y in samples) * 0.1 or default_intercept
    return intercept, slope


def calibrate(*, seed: int = 2013, city_count: int = 400,
              dna_count: int = 96, queries: int = 10,
              repeats: int = 2) -> CostProfile:
    """Fit the per-unit constants on this machine (a microbenchmark).

    Runs each strategy on two small synthetic corpora spanning the
    paper's regimes (short city names over a large alphabet, long DNA
    reads over four symbols), reads the executed work off the
    observability counters, and least-squares-fits the per-unit
    constants. Seconds-long; persist the result with
    :meth:`CostProfile.save` and hand it to engines/planners.
    """
    from time import perf_counter

    from repro.core.indexed import IndexedSearcher
    from repro.core.sequential import SequentialScanSearcher
    from repro.data.cities import generate_city_names
    from repro.data.dna import generate_reads
    from repro.index.qgram_index import QGramIndex
    from repro.scan.searcher import CompiledScanSearcher

    city = list(generate_city_names(city_count, seed=seed))
    dna = list(generate_reads(dna_count, seed=seed + 1))
    samples = 0
    defaults = CostProfile()

    def timed(call) -> float:
        best = math.inf
        for _ in range(max(1, repeats)):
            started = perf_counter()
            call()
            best = min(best, perf_counter() - started)
        return best

    # Compiled scan: per-candidate seconds at two column regimes.
    scan_points: list[tuple[float, float]] = []
    for corpus, k in ((city, 1), (dna, 8)):
        searcher = CompiledScanSearcher(corpus)
        probes = corpus[:queries]
        searcher.search_many(probes, k)  # warm the encoder, off-clock
        before = searcher.counters_snapshot()["scan.candidates"]
        seconds = timed(lambda s=searcher, p=probes, kk=k:
                        [s.search(q, kk) for q in p])
        candidates = (searcher.counters_snapshot()["scan.candidates"]
                      - before) / max(1, repeats)
        if candidates > 0:
            cols = Planner._effective_columns(len(corpus[0]), k)
            scan_points.append((cols, seconds / candidates))
            samples += 1
    scan_candidate, scan_char = _fit_line(
        scan_points, defaults.scan_candidate, defaults.scan_char)

    # Per-query python scan: same two points, same model.
    seq_points: list[tuple[float, float]] = []
    for corpus, k in ((city, 1), (dna, 8)):
        searcher = SequentialScanSearcher(corpus, kernel="bitparallel",
                                          order="length")
        probes = corpus[:max(3, queries // 2)]
        before = searcher.counters_snapshot()["scan.candidates"]
        seconds = timed(lambda s=searcher, p=probes, kk=k:
                        [s.search(q, kk) for q in p])
        candidates = (searcher.counters_snapshot()["scan.candidates"]
                      - before) / max(1, repeats)
        if candidates > 0:
            cols = Planner._effective_columns(len(corpus[0]), k)
            seq_points.append((cols, seconds / candidates))
            samples += 1
    seq_candidate, seq_char = _fit_line(
        seq_points, defaults.seq_candidate, defaults.seq_char)

    # Flat trie: seconds per node visited, averaged over both regimes.
    node_rates: list[float] = []
    for corpus, k in ((city, 1), (dna, 2)):
        searcher = IndexedSearcher(corpus, index="flat")
        probes = corpus[:queries]
        before = searcher.counters_snapshot()["trie.nodes_visited"]
        seconds = timed(lambda s=searcher, p=probes, kk=k:
                        [s.search(q, kk) for q in p])
        nodes = (searcher.counters_snapshot()["trie.nodes_visited"]
                 - before) / max(1, repeats)
        if nodes > 0:
            node_rates.append(seconds / nodes)
            samples += 1
    trie_node = (sum(node_rates) / len(node_rates)) if node_rates \
        else defaults.trie_node

    # Q-gram filter: k=0 on DNA makes verification negligible, so the
    # runtime is essentially the posting scans.
    index = QGramIndex(dna, q=2)
    probes = dna[:max(3, queries // 2)]
    postings = 0
    for query in probes:
        for i in range(len(query) - 1):
            postings += len(index.posting_list(query[i:i + 2]))
    seconds = timed(lambda: [index.search(q, 0) for q in probes])
    if postings > 0:
        qgram_posting = seconds / postings
        samples += 1
    else:
        qgram_posting = defaults.qgram_posting

    return replace(
        defaults,
        seq_candidate=seq_candidate, seq_char=seq_char,
        scan_candidate=scan_candidate, scan_char=scan_char,
        scan_row=max(scan_char / 2.0, 1e-9),
        trie_node=trie_node,
        qgram_posting=qgram_posting,
        source="calibrated",
        samples=samples,
    )
