"""The named stage ladders of the paper's Figures 3 and 5.

These factories produce the exact approach sequences the evaluation
tables walk through, so benchmarks, examples and tests all speak the
same stage names:

* :func:`sequential_stage_ladder` — Table III / VII rows 1–6.
* :func:`index_stage_ladder` — Table V / IX rows 1–3.

Stages 5 and 6 are parallel; on the real executors they exist mainly to
demonstrate unchanged results (the GIL hides the speedups — the
scheduler model in :mod:`repro.parallel.simulator` carries the timing
story, see DESIGN.md).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.indexed import IndexedSearcher
from repro.core.pipeline import Approach
from repro.core.sequential import SequentialScanSearcher
from repro.parallel.adaptive import AdaptiveManager, ManagerRules
from repro.parallel.executor import ThreadPerQueryRunner, ThreadPoolRunner


def sequential_stage_ladder(dataset: Sequence[str], *,
                            pool_threads: int = 8) -> list[Approach]:
    """The six sequential stages of section 3, in paper order.

    The first element is the reference/base approach (feed it to
    :class:`repro.core.pipeline.ApproachPipeline` as the reference).
    """
    data = tuple(dataset)
    return [
        Approach(
            "1) base implementation",
            lambda: SequentialScanSearcher(data, kernel="reference"),
        ),
        Approach(
            "2) calculation of the edit distance",
            lambda: SequentialScanSearcher(data, kernel="banded"),
        ),
        Approach(
            "3) value or reference",
            lambda: SequentialScanSearcher(data, kernel="banded-reused"),
        ),
        Approach(
            "4) simple data types and program methods",
            lambda: SequentialScanSearcher(data, kernel="bitparallel"),
        ),
        Approach(
            "5) parallelism (thread per query)",
            lambda: SequentialScanSearcher(data, kernel="bitparallel"),
            runner=ThreadPerQueryRunner(),
        ),
        Approach(
            "6) management of parallelism",
            lambda: SequentialScanSearcher(data, kernel="bitparallel"),
            runner=ThreadPoolRunner(threads=pool_threads),
        ),
    ]


def index_stage_ladder(dataset: Sequence[str], *,
                       pool_threads: int = 8,
                       adaptive: bool = False) -> list[Approach]:
    """The three index stages of section 4, in paper order.

    ``adaptive=True`` swaps the stage-3 runner for the master–slave
    manager instead of a fixed pool.
    """
    data = tuple(dataset)
    stage3_runner = (
        AdaptiveManager(ManagerRules(max_threads=pool_threads))
        if adaptive
        else ThreadPoolRunner(threads=pool_threads)
    )
    return [
        Approach(
            "1) base implementation (prefix tree)",
            lambda: IndexedSearcher(data, index="trie"),
        ),
        Approach(
            "2) compression",
            lambda: IndexedSearcher(data, index="compressed"),
        ),
        Approach(
            "3) management of parallelism",
            lambda: IndexedSearcher(data, index="compressed"),
            runner=stage3_runner,
        ),
    ]
