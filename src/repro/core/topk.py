"""Top-k similarity search: the ranking face of the threshold problem.

Applications that motivate the paper (query suggestion, spelling
correction) rarely know the right threshold up front — they want "the
five closest names". This module answers that with *iterative
deepening*: run the threshold search at k = 0, 1, 2, ... until enough
matches accumulate, reusing whichever searcher backend the caller
provides. Because a threshold search at distance ``d`` returns every
string at distance ``<= d``, the first threshold that yields ``count``
results provably contains the true top-k (all unseen strings are
farther away than everything reported).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.result import Match
from repro.core.searcher import Searcher
from repro.exceptions import ReproError


def search_topk(searcher: Searcher, query: str, count: int, *,
                max_k: int | None = None) -> list[Match]:
    """The ``count`` nearest dataset strings to ``query``.

    Parameters
    ----------
    searcher:
        Any :class:`repro.core.searcher.Searcher` (sequential or
        indexed) — top-k inherits its backend's performance profile.
    query:
        The probe string.
    count:
        How many matches to return (fewer if the dataset is smaller).
    max_k:
        Optional ceiling on the deepening threshold; defaults to
        ``len(query) + longest dataset string`` — the largest possible
        distance — so the search always terminates.

    Returns
    -------
    Matches ordered by distance, ties broken lexicographically, then
    trimmed to ``count`` (so ties at the cutoff distance resolve
    lexicographically).

    Examples
    --------
    >>> from repro.core.sequential import SequentialScanSearcher
    >>> searcher = SequentialScanSearcher(["Bern", "Berlin", "Bergen",
    ...                                    "Ulm"])
    >>> [m.string for m in search_topk(searcher, "Berm", 2)]
    ['Bern', 'Bergen']
    """
    if count < 1:
        raise ReproError(f"count must be at least 1, got {count}")
    if max_k is None:
        dataset: Sequence[str] | None = getattr(searcher, "dataset", None)
        if dataset is not None:
            longest = max((len(s) for s in dataset), default=0)
        else:
            longest = 256  # no dataset introspection: generous ceiling
        max_k = len(query) + longest

    k = 0
    while True:
        matches = searcher.search(query, k)
        if len(matches) >= count or k >= max_k:
            ranked = sorted(matches,
                            key=lambda m: (m.distance, m.string))
            return ranked[:count]
        # Jump straight past empty bands: the next possible distance is
        # at least k + 1, but doubling converges faster on sparse data
        # while never overshooting correctness (supersets stay sorted).
        k = max(k + 1, min(2 * k, max_k))


def nearest(searcher: Searcher, query: str) -> Match | None:
    """The single closest dataset string, or ``None`` for an empty set.

    >>> from repro.core.sequential import SequentialScanSearcher
    >>> nearest(SequentialScanSearcher(["Bern", "Ulm"]), "Berm").string
    'Bern'
    """
    matches = search_topk(searcher, query, 1)
    return matches[0] if matches else None
