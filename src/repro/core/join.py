"""String similarity join — the other half of the competition.

The datasets the paper evaluates on come from the EDBT/ICDT 2013
"String Similarity **Search/Join** Competition"; the join problem is
the search problem's batch sibling: given two string sets ``R`` and
``S`` and a threshold ``k``, return every pair ``(r, s)`` with
``ed(r, s) <= k``. A self-join (``R = S``) deduplicates a dataset.

Both of the paper's solution families extend naturally:

* **scan join** — nested loop over length-sorted inputs, restricted to
  the feasible length window (equation 5 turned into a merge band),
  with the bit-parallel kernel per candidate pair;
* **index join** — build the annotated trie over ``S`` once, then run
  one similarity descent per ``r`` (amortizing the index over all
  probes is exactly where indexes pay off, per the paper's section 4).

Self-joins exploit symmetry: only pairs ``(i, j)`` with ``i < j`` are
emitted, halving the work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.indexed import IndexedSearcher
from repro.distance.banded import check_threshold
from repro.distance.bitparallel import build_peq
from repro.exceptions import ReproError


@dataclass(frozen=True, order=True)
class JoinPair:
    """One joined pair: indexes into the inputs plus the distance.

    ``left_index``/``right_index`` refer to positions in the original
    input sequences, so duplicates join as distinct pairs (a database
    join's semantics).
    """

    left_index: int
    right_index: int
    distance: int


@dataclass(frozen=True)
class JoinResult:
    """The pairs of one join plus its workload statistics."""

    pairs: tuple[JoinPair, ...]
    candidates_examined: int
    seconds: float

    def __len__(self) -> int:
        return len(self.pairs)

    def as_string_pairs(self, left: Sequence[str],
                        right: Sequence[str]) -> list[tuple[str, str, int]]:
        """Materialize ``(left_string, right_string, distance)`` rows."""
        return [
            (left[pair.left_index], right[pair.right_index], pair.distance)
            for pair in self.pairs
        ]


def _validate(strings: Iterable[str], side: str) -> list[str]:
    validated = []
    for index, string in enumerate(strings):
        if not string:
            raise ReproError(
                f"{side} join input contains an empty string at "
                f"index {index}"
            )
        validated.append(string)
    return validated


def _myers_distance_bounded(peq_get, n: int, mask: int, last: int,
                            text: str, k: int) -> int | None:
    """Inlined bounded Myers kernel shared by the scan join paths."""
    pv = mask
    mv = 0
    score = n
    remaining = len(text)
    for symbol in text:
        eq = peq_get(symbol, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        if ph & last:
            score += 1
        elif mh & last:
            score -= 1
        remaining -= 1
        if score - remaining > k:
            return None
        ph = ((ph << 1) | 1) & mask
        mh = (mh << 1) & mask
        pv = mh | (~(xv | ph) & mask)
        mv = ph & xv
    return score if score <= k else None


def _length_sorted(strings: Sequence[str]) -> list[int]:
    """Input indexes sorted by string length (stable)."""
    return sorted(range(len(strings)), key=lambda i: len(strings[i]))


def scan_join(left: Sequence[str], right: Sequence[str] | None,
              k: int) -> JoinResult:
    """Similarity join by length-banded nested-loop scan.

    ``right=None`` performs a self-join on ``left`` (pairs with
    ``left_index < right_index`` only; a string never joins itself,
    but duplicate strings do join each other).

    Examples
    --------
    >>> result = scan_join(["Bern", "Berne", "Ulm"], None, 1)
    >>> [(p.left_index, p.right_index) for p in result.pairs]
    [(0, 1)]
    """
    check_threshold(k)
    started = time.perf_counter()
    left_strings = _validate(left, "left")
    self_join = right is None
    right_strings = left_strings if self_join else _validate(right, "right")

    right_order = _length_sorted(right_strings)
    right_lengths = [len(right_strings[i]) for i in right_order]

    pairs: list[JoinPair] = []
    examined = 0
    from bisect import bisect_left, bisect_right

    for left_index, probe in enumerate(left_strings):
        n = len(probe)
        if n == 0:
            continue
        peq_get = build_peq(probe).get
        mask = (1 << n) - 1
        last = 1 << (n - 1)
        lo = bisect_left(right_lengths, n - k)
        hi = bisect_right(right_lengths, n + k)
        for position in range(lo, hi):
            right_index = right_order[position]
            if self_join and right_index <= left_index:
                continue
            examined += 1
            distance = _myers_distance_bounded(
                peq_get, n, mask, last, right_strings[right_index], k
            )
            if distance is not None:
                pairs.append(JoinPair(left_index, right_index, distance))

    pairs.sort()
    return JoinResult(tuple(pairs), examined,
                      time.perf_counter() - started)


def index_join(left: Sequence[str], right: Sequence[str] | None,
               k: int, *, index: str = "compressed",
               tracked_symbols: str | None = None) -> JoinResult:
    """Similarity join through a (compressed) trie over the right side.

    The index is built once and probed with every left string; with
    ``tracked_symbols`` the trie additionally prunes by frequency
    vectors. Results are identical to :func:`scan_join` (the test suite
    enforces it); only the work profile differs.
    """
    check_threshold(k)
    started = time.perf_counter()
    left_strings = _validate(left, "left")
    self_join = right is None
    right_strings = left_strings if self_join else _validate(right, "right")

    searcher = IndexedSearcher(
        right_strings, index=index,
        frequency_pruning=tracked_symbols is not None,
        tracked_symbols=tracked_symbols,
    )
    # The searcher reports distinct strings; map back to all positions.
    positions: dict[str, list[int]] = {}
    for position, string in enumerate(right_strings):
        positions.setdefault(string, []).append(position)

    pairs: list[JoinPair] = []
    examined = 0
    for left_index, probe in enumerate(left_strings):
        matches = searcher.search(probe, k)
        examined += len(matches)
        for match in matches:
            for right_index in positions[match.string]:
                if self_join and right_index <= left_index:
                    continue
                pairs.append(
                    JoinPair(left_index, right_index, match.distance)
                )

    pairs.sort()
    return JoinResult(tuple(pairs), examined,
                      time.perf_counter() - started)


def prefix_join(left: Sequence[str], right: Sequence[str] | None,
                k: int, *, q: int = 2) -> JoinResult:
    """Similarity join with Ed-Join-style prefix filtering.

    Builds an inverted q-gram index over the right side and probes it
    with only each left string's ``k*q + 1`` rarest positional grams
    (see :mod:`repro.filters.prefix`). Candidates surviving the length
    window are verified with the bounded Myers kernel. Results are
    identical to :func:`scan_join`; only the candidate-generation work
    differs — dramatically so on large alphabets where rare grams are
    highly selective.
    """
    check_threshold(k)
    started = time.perf_counter()
    left_strings = _validate(left, "left")
    self_join = right is None
    right_strings = left_strings if self_join else _validate(right, "right")

    from repro.filters.prefix import gram_frequencies, prefix_grams
    from repro.filters.qgram import qgrams

    frequencies = gram_frequencies(right_strings, q)
    postings: dict[str, list[int]] = {}
    short_ids: list[int] = []
    for right_index, string in enumerate(right_strings):
        grams = set(qgrams(string, q))
        if not grams:
            short_ids.append(right_index)
        for gram in grams:
            postings.setdefault(gram, []).append(right_index)

    pairs: list[JoinPair] = []
    examined = 0
    for left_index, probe in enumerate(left_strings):
        n = len(probe)
        if n == 0:
            continue
        peq_get = build_peq(probe).get
        mask = (1 << n) - 1
        last = 1 << (n - 1)
        positional = qgrams(probe, q)
        if len(positional) <= k * q + 1:
            # The bound has no power: every length-feasible right
            # string is a candidate.
            candidates = set(range(len(right_strings)))
        else:
            prefix = prefix_grams(probe, k, q, frequencies)
            candidates = set(short_ids)
            for gram in prefix:
                candidates.update(postings.get(gram, ()))
        for right_index in candidates:
            if self_join and right_index <= left_index:
                continue
            candidate = right_strings[right_index]
            if abs(len(candidate) - n) > k:
                continue
            examined += 1
            distance = _myers_distance_bounded(
                peq_get, n, mask, last, candidate, k
            )
            if distance is not None:
                pairs.append(JoinPair(left_index, right_index, distance))

    pairs.sort()
    return JoinResult(tuple(pairs), examined,
                      time.perf_counter() - started)


def similarity_join(left: Sequence[str], right: Sequence[str] | None,
                    k: int, *, method: str = "auto") -> JoinResult:
    """Front end choosing the join algorithm by the paper's rule.

    ``method`` is ``"scan"``, ``"index"``, ``"prefix"`` or ``"auto"``
    (the cost-model planner of :mod:`repro.core.planner` scores the
    scan against the trie for the probe side's shape at this ``k``,
    mirroring :class:`repro.core.engine.SearchEngine`).
    """
    if method not in ("auto", "scan", "index", "prefix"):
        raise ReproError(
            f"unknown join method {method!r}; expected 'auto', 'scan', "
            "'index' or 'prefix'"
        )
    if method == "auto":
        from repro.core.planner import Planner, PlannerPolicy

        probe_set = list(left if right is None else right)
        queries = list(left)
        planner = Planner(probe_set)
        qplan = planner.plan_queries(
            queries or [""], k,
            policy=PlannerPolicy(allow=("sequential", "indexed")),
        )
        method = "scan" if qplan.strategy == "sequential" else "index"
    if method == "scan":
        return scan_join(left, right, k)
    if method == "prefix":
        return prefix_join(left, right, k)
    return index_join(left, right, k)


def deduplicate(strings: Sequence[str], k: int) -> list[list[int]]:
    """Cluster near-duplicate strings via a self-join.

    Returns groups of input indexes whose members are transitively
    within edit distance ``k`` of another member (single-linkage
    clusters, each sorted; singletons omitted).

    >>> deduplicate(["Bern", "Berne", "Ulm", "Hamburg"], 1)
    [[0, 1]]
    """
    result = similarity_join(strings, None, k)
    parent = list(range(len(strings)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for pair in result.pairs:
        root_a = find(pair.left_index)
        root_b = find(pair.right_index)
        if root_a != root_b:
            parent[root_b] = root_a

    groups: dict[int, list[int]] = {}
    for index in range(len(strings)):
        groups.setdefault(find(index), []).append(index)
    return sorted(
        sorted(group) for group in groups.values() if len(group) > 1
    )
