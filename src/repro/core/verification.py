"""Result verification — the paper's correctness gate (section 3.1).

Every optimized approach must return results identical to the reference
implementation before its timing counts. :func:`verify_result_sets`
performs that comparison and, on mismatch, reports exactly which
strings went missing or appeared from nowhere, per query, so a broken
kernel is debuggable from the error alone.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.result import ResultSet
from repro.exceptions import VerificationError


def verify_result_sets(reference: ResultSet, candidate: ResultSet, *,
                       candidate_name: str = "candidate",
                       check_distances: bool = True) -> None:
    """Raise :class:`VerificationError` unless the sets agree.

    Parameters
    ----------
    reference:
        Output of the trusted base implementation.
    candidate:
        Output of the approach under test.
    candidate_name:
        Used in the error message.
    check_distances:
        Also require reported distances to match (on by default — a
        right string with a wrong distance is still a kernel bug).
    """
    if reference.queries != candidate.queries:
        raise VerificationError(
            f"{candidate_name} ran different queries than the reference "
            f"({len(candidate.queries)} vs {len(reference.queries)})"
        )
    all_missing: set[str] = set()
    all_spurious: set[str] = set()
    first_detail: str | None = None

    for index, query in enumerate(reference.queries):
        expected = reference.matches_for(index)
        actual = candidate.matches_for(index)
        if expected == actual:
            continue

        expected_strings = {match.string for match in expected}
        actual_strings = {match.string for match in actual}
        missing = expected_strings - actual_strings
        spurious = actual_strings - expected_strings

        if not missing and not spurious:
            # Same strings, so rows differ only in reported distances.
            if not check_distances:
                continue
            if first_detail is None:
                wrong = [
                    (e.string, e.distance, a.distance)
                    for e, a in zip(expected, actual)
                    if e.distance != a.distance
                ]
                first_detail = (
                    f"query {index} ({query!r}): wrong distances "
                    f"(string, expected, actual) = {wrong[:5]!r}"
                )
            continue

        all_missing |= missing
        all_spurious |= spurious
        if first_detail is None:
            first_detail = (
                f"query {index} ({query!r}): "
                f"missing {sorted(missing)[:5]!r}, "
                f"spurious {sorted(spurious)[:5]!r}"
            )

    if first_detail is None:
        return
    raise VerificationError(
        f"{candidate_name} results differ from the reference: "
        f"{first_detail}",
        missing=frozenset(all_missing),
        spurious=frozenset(all_spurious),
    )


def verify_against_reference(candidate, dataset: Iterable[str],
                             workload, *,
                             candidate_name: str | None = None,
                             runner=None) -> ResultSet:
    """Run ``candidate`` on ``workload`` and gate it against the reference.

    Builds the trusted base implementation
    (:class:`repro.core.sequential.SequentialScanSearcher` with the
    ``"reference"`` kernel) over ``dataset``, executes the workload on
    both sides, and applies :func:`verify_result_sets`. This is the
    paper's section-3.1 methodology as one call, used to gate the batch
    execution engine (:mod:`repro.scan`) before its timings count.

    Parameters
    ----------
    candidate:
        Any :class:`repro.core.searcher.Searcher` (or object with the
        same ``run_workload`` signature).
    dataset:
        The strings both sides search.
    workload:
        The :class:`repro.data.workload.Workload` to execute.
    candidate_name:
        Error-message label; defaults to the candidate's ``name``.
    runner:
        Optional parallel runner for the *candidate* side (the
        reference always runs serially — it is the ground truth).

    Returns
    -------
    ResultSet
        The candidate's (verified) results, so callers can keep them.
    """
    from repro.core.sequential import SequentialScanSearcher

    reference = SequentialScanSearcher(
        dataset, kernel="reference"
    ).run_workload(workload)
    result = candidate.run_workload(workload, runner)
    verify_result_sets(
        reference, result,
        candidate_name=candidate_name or getattr(
            candidate, "name", "candidate"
        ),
    )
    return result
