"""Result values: per-query matches and whole-batch result sets.

The paper's methodology revolves around comparing *result sets* across
approaches (section 3.1: every optimization must return results
identical to the base implementation). :class:`ResultSet` is that
comparable value: per query — in input order — the set of matched
strings.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence


@dataclass(frozen=True, order=True)
class Match:
    """One matched dataset string with its exact distance.

    Sort order is by string (the order result files use), then distance.
    """

    string: str
    distance: int


class ResultSet:
    """Matches for a batch of queries, comparable across approaches.

    Stores one row per executed query, preserving query order (the
    result-file order), with each row holding the matched strings as a
    sorted tuple of :class:`Match`.

    Two result sets are equal iff they ran the same queries in the same
    order and matched exactly the same strings — distances included,
    since a wrong distance with the right string still signals a kernel
    bug.
    """

    def __init__(self, queries: Sequence[str],
                 rows: Sequence[Sequence[Match]]) -> None:
        if len(queries) != len(rows):
            raise ValueError(
                f"{len(queries)} queries but {len(rows)} result rows"
            )
        self._queries = tuple(queries)
        self._rows = tuple(tuple(sorted(row)) for row in rows)

    @property
    def queries(self) -> tuple[str, ...]:
        """The executed queries, in order."""
        return self._queries

    @property
    def rows(self) -> tuple[tuple[Match, ...], ...]:
        """Per-query sorted matches, parallel to :attr:`queries`."""
        return self._rows

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[tuple[str, tuple[Match, ...]]]:
        return iter(zip(self._queries, self._rows))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self._queries == other._queries and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._queries, self._rows))

    def matches_for(self, index: int) -> tuple[Match, ...]:
        """Matches of the ``index``-th query."""
        return self._rows[index]

    def strings_for(self, index: int) -> tuple[str, ...]:
        """Matched strings of the ``index``-th query."""
        return tuple(match.string for match in self._rows[index])

    @property
    def total_matches(self) -> int:
        """Total matches over all queries."""
        return sum(len(row) for row in self._rows)

    def by_query(self) -> Mapping[str, tuple[Match, ...]]:
        """Query → its full :class:`Match` row (last row wins for
        repeated queries).

        This is the canonical mapping accessor of the unified request
        API: it keeps distances, so a consumer can verify or re-rank
        without re-running the search. Batch comparison should still
        use the full row structure (``==``), which preserves duplicate
        queries and order.
        """
        return dict(zip(self._queries, self._rows))

    def flat(self) -> tuple[Match, ...]:
        """All matches across all rows, deduplicated and sorted.

        The "one merged answer" view a service caller wants when the
        per-query breakdown is irrelevant. Duplicate (string, distance)
        pairs collapse; the same string at different distances (from
        different queries) stays distinct because the distance is part
        of the match identity.
        """
        return tuple(sorted({match for row in self._rows
                             for match in row}))

    def as_mapping(self) -> Mapping[str, tuple[str, ...]]:
        """Deprecated: query → matched strings, distances dropped.

        .. deprecated::
            Use :meth:`by_query` (full :class:`Match` rows) and project
            to strings at the call site, or :meth:`flat` for one merged
            answer. This shape loses distances and will be removed.
        """
        warnings.warn(
            "ResultSet.as_mapping() is deprecated; use by_query() for "
            "query->Match rows or flat() for one merged answer",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            query: tuple(match.string for match in row)
            for query, row in zip(self._queries, self._rows)
        }

    def __repr__(self) -> str:
        return (
            f"ResultSet(queries={len(self._queries)}, "
            f"matches={self.total_matches})"
        )
