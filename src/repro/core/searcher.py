"""The searcher interface both solutions implement.

A searcher answers single queries (``search``) and whole workloads
(``run_workload``); the workload path accepts a pluggable runner so
every parallelism strategy of :mod:`repro.parallel` applies uniformly
to the sequential and the index-based solution — exactly how the paper
reuses its parallelism machinery across chapters 3 and 4.
"""

from __future__ import annotations

import abc
from typing import Protocol, Sequence

from repro.core.result import Match, ResultSet
from repro.data.workload import Workload


class QueryRunner(Protocol):
    """Anything that can map a function over queries (see executors)."""

    name: str

    def run(self, function, queries: Sequence[str]) -> list:  # pragma: no cover - protocol
        ...


class Searcher(abc.ABC):
    """Base class for similarity searchers."""

    #: Name used in stage tables and reports.
    name: str = "searcher"

    @abc.abstractmethod
    def search(self, query: str, k: int) -> list[Match]:
        """All dataset strings within distance ``k``, sorted by string.

        Distinct strings only — multiplicities are an index-level
        concern; the competition result format lists each string once.
        """

    def run_workload(self, workload: Workload,
                     runner: QueryRunner | None = None) -> ResultSet:
        """Execute a workload, optionally through a parallel runner.

        The runner may reorder *execution*, never *results*: rows come
        back in workload order regardless of strategy, which is what
        makes result sets comparable across all configurations.
        """
        k = workload.k
        queries = list(workload.queries)
        if runner is None:
            rows = [self.search(query, k) for query in queries]
        else:
            rows = runner.run(lambda query: self.search(query, k), queries)
        return ResultSet(queries, rows)
