"""The paper's contribution: staged similarity searchers and methodology.

This package ties the substrates together into the two competing
solutions the paper evaluates, plus the methodology it evaluates them
with:

* :class:`SequentialScanSearcher` — the sequential solution, with every
  optimization stage of section 3 available as a configuration knob.
* :class:`IndexedSearcher` — the index-based solution of section 4 over
  a (compressed) prefix trie or a q-gram index.
* :mod:`repro.core.stages` — the named stage ladders of Figures 3 and 5.
* :class:`ApproachPipeline` — the accept/reject loop: run an approach,
  verify its results against the reference, keep it only if it is both
  correct and faster.
* :class:`SearchEngine` — a user-facing facade that picks a sensible
  configuration from dataset shape (the paper's conclusion as a
  heuristic).
"""

from repro.core.engine import EngineChoice, SearchEngine
from repro.core.explain import PairExplanation, explain_pair
from repro.core.indexed import IndexedSearcher
from repro.core.planner import (
    CorpusStatistics,
    CostEstimate,
    CostProfile,
    Planner,
    PlannerPolicy,
    QueryPlan,
    calibrate,
    collect_statistics,
)
from repro.core.join import (
    JoinPair,
    JoinResult,
    deduplicate,
    index_join,
    prefix_join,
    scan_join,
    similarity_join,
)
from repro.core.pipeline import Approach, ApproachPipeline, StageOutcome
from repro.core.problem import SimilaritySearchProblem
from repro.core.result import Match, ResultSet
from repro.core.searcher import Searcher
from repro.core.sequential import SequentialScanSearcher
from repro.core.topk import nearest, search_topk
from repro.core.updatable import UpdatableIndex
from repro.core.stages import (
    index_stage_ladder,
    sequential_stage_ladder,
)
from repro.core.verification import verify_result_sets

__all__ = [
    "SimilaritySearchProblem",
    "Match",
    "ResultSet",
    "Searcher",
    "SequentialScanSearcher",
    "IndexedSearcher",
    "SearchEngine",
    "Approach",
    "ApproachPipeline",
    "StageOutcome",
    "sequential_stage_ladder",
    "index_stage_ladder",
    "verify_result_sets",
    "JoinPair",
    "JoinResult",
    "similarity_join",
    "scan_join",
    "index_join",
    "prefix_join",
    "deduplicate",
    "search_topk",
    "nearest",
    "UpdatableIndex",
    "PairExplanation",
    "explain_pair",
    "EngineChoice",
    "Planner",
    "PlannerPolicy",
    "QueryPlan",
    "CostEstimate",
    "CostProfile",
    "CorpusStatistics",
    "collect_statistics",
    "calibrate",
]
