"""SearchEngine: the user-facing facade over both solutions.

The paper's conclusion is a decision rule: short strings over a large
alphabet favour the optimized sequential scan; long strings over a tiny
alphabet favour the trie index. The rule is not a constant, though —
the winner flips with the threshold ``k``, the query length and how
many queries arrive together. :class:`SearchEngine` therefore routes
``backend="auto"`` through the calibrated cost model of
:mod:`repro.core.planner`: every strategy (per-query scan, compiled
batch scan, flat trie, q-gram pipeline) is scored against the corpus's
ANALYZE statistics and the request's shape, and the cheapest one
serves. :meth:`plan` / :meth:`explain` expose the ``EXPLAIN``-style
:class:`repro.core.planner.QueryPlan` behind any call, the same plan is
serialized into :attr:`last_report`, and every executed call feeds its
actual timings back into the planner (:meth:`Planner.observe_window`),
so the estimates track the hardware they run on.

The batch engines add the second axis: a scan-regime workload goes
through the compiled-corpus batch path (:mod:`repro.scan`); an
index-regime workload through the compiled flat-trie batch path
(:mod:`repro.index.batch`). Both deduplicate queries and amortize
query-side setup, and a mixed-length batch may be *split* between them
when the planner estimates the split pays for the extra executor.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace
from typing import Callable, Iterable

from repro.core.deadline import Budget, Deadline
from repro.core.indexed import IndexedSearcher
from repro.core.planner import (
    AUTO_POLICY,
    DEFAULT_PLAN_K,
    STRATEGIES,
    CostProfile,
    Planner,
    PlannerPolicy,
    QueryPlan,
    collect_statistics,
)
from repro.core.request import (
    SearchOptions,
    SearchRequest,
    as_request,
)
from repro.core.result import Match, ResultSet
from repro.core.searcher import QueryRunner, Searcher
from repro.core.sequential import SequentialScanSearcher
from repro.data.workload import Workload
from repro.exceptions import ReproError
from repro.obs.hist import hists_delta
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import MetricsRegistry, counter_delta
from repro.obs.report import BatchCounters, SearchReport, build_report

#: Kept for compatibility with the pre-planner decision rule (tests
#: and docs reference them); the planner's cost model supersedes them.
MEAN_LENGTH_CUTOFF = 40

#: Alphabets at or below this size count as "tiny" (DNA has 5 symbols).
SMALL_ALPHABET_CUTOFF = 8

#: Single-query windows shorter than this are dominated by Python
#: dispatch overhead, so they are not fed back into the planner's
#: corrections (multi-query windows always are).
SEARCH_FEEDBACK_FLOOR = 1e-3


@dataclass(frozen=True)
class EngineChoice:
    """Deprecated view of the engine's plan (see :attr:`choice`)."""

    backend: str
    reason: str


class SearchEngine:
    """Similarity search with planner-driven backend selection.

    Parameters
    ----------
    dataset:
        The strings to search.
    backend:
        ``"auto"`` routes every call through the cost-model planner;
        ``"sequential"``, ``"indexed"`` (the compiled flat trie),
        ``"compiled"`` (the batch-amortized scan of :mod:`repro.scan`)
        or ``"qgram"`` force a strategy.
    runner:
        Optional parallel runner used by :meth:`run_workload`.
    observe:
        Create a :class:`repro.obs.MetricsRegistry`, attach it to every
        backend the engine touches, and collect span/timer evidence in
        it (reachable as :attr:`metrics`). Off by default — the
        always-on work counters, per-query histograms and
        :attr:`last_report` do not need it.
    metrics:
        Use a caller-owned registry instead (implies ``observe``).
    recorder:
        Optional :class:`repro.obs.FlightRecorder` forwarded to every
        backend the engine touches, so slow queries leave exemplars
        (query, k, per-stage timings, work counters) no matter which
        component serves them.
    segment:
        Optional path to a corpus segment file (see
        :mod:`repro.speed`). The compiled backend then mmap-loads its
        corpus from the file — compiling and saving it first if the
        file does not exist yet — instead of compiling from scratch on
        every start. Implies ``backend="compiled"`` unless a backend
        was forced explicitly.
    profile:
        A :class:`repro.core.planner.CostProfile` (or a path to one
        persisted by :meth:`CostProfile.save`) for the planner's
        per-unit constants; defaults to the built-in profile.

    Examples
    --------
    >>> engine = SearchEngine(["Berlin", "Bern", "Ulm"])
    >>> engine.default_plan.strategy
    'sequential'
    >>> engine.explain("Berlino", 2).strategy
    'sequential'
    >>> [match.string for match in engine.search("Berlino", 2)]
    ['Berlin']
    >>> engine.last_report.matches
    1
    """

    def __init__(self, dataset: Iterable[str], *,
                 backend: str = "auto",
                 runner: QueryRunner | None = None,
                 observe: bool = False,
                 metrics: MetricsRegistry | None = None,
                 recorder: FlightRecorder | None = None,
                 segment: str | None = None,
                 profile: CostProfile | str | None = None) -> None:
        from repro.live.facade import Corpus

        if isinstance(dataset, Corpus):
            self._source: Corpus | None = dataset
            self._source_epoch = dataset.epoch
            strings = dataset.snapshot()
        else:
            self._source = None
            self._source_epoch = 0
            strings = tuple(dataset)
        if backend not in ("auto",) + STRATEGIES:
            raise ReproError(
                f"unknown backend {backend!r}; expected 'auto' or one "
                f"of {STRATEGIES}"
            )
        self._runner = runner
        self._strings = strings
        self._segment = segment
        if metrics is not None:
            self._metrics: MetricsRegistry | None = metrics
        else:
            self._metrics = MetricsRegistry() if observe else None
        self._recorder = recorder
        self._batch_searcher: Searcher | None = None
        self._batch_index = None
        self._override_searchers: dict[str, Searcher] = {}
        self._last_batch_executor = None
        self._last_call: dict | None = None
        self._last_report_cache: SearchReport | None = None
        if isinstance(profile, str):
            profile = CostProfile.load(profile)
        self._stats = collect_statistics(strings)
        self._planner = Planner(self._stats, profile=profile)
        segment_reason = None
        if backend != "auto":
            self._default_policy = PlannerPolicy(strategy=backend)
        elif segment is not None:
            self._default_policy = PlannerPolicy(strategy="compiled")
            segment_reason = ("segment-backed corpus serves the "
                             "compiled scan")
        else:
            self._default_policy = AUTO_POLICY
        representative = max(1, int(round(self._stats.mean_length)))
        self._default_plan = self._planner.plan(
            length=representative, k=DEFAULT_PLAN_K,
            policy=self._default_policy,
        )
        if segment_reason is not None:
            self._default_plan = replace(self._default_plan,
                                         reason=segment_reason)
        self._segment_reason = segment_reason
        self._searcher = self._build_default_searcher()

    def _build_default_searcher(self) -> Searcher:
        """Construct (and instrument) the default plan's searcher."""
        strategy = self._default_plan.strategy
        if strategy == "sequential":
            searcher: Searcher = SequentialScanSearcher(
                self._strings, kernel="bitparallel", order="length"
            )
        elif strategy == "compiled":
            searcher = self._make_compiled_searcher()
            self._batch_searcher = searcher
        elif strategy == "qgram":
            searcher = IndexedSearcher(self._strings, index="qgram")
        else:
            searcher = IndexedSearcher(self._strings, index="flat")
        self._attach_obs(searcher)
        return searcher

    def _sync_with_source(self) -> None:
        """Re-derive everything when a live source corpus drifted.

        Engines built over a :class:`repro.live.Corpus` poll its epoch
        at call entry. On drift: re-snapshot the strings, refresh the
        planner's ANALYZE statistics (keeping its learned
        corrections), re-plan the dataset-level default and rebuild
        the searchers lazily. Many mutations between two calls cost
        one refresh, not one per mutation.
        """
        source = self._source
        if source is None or not source.mutable:
            return
        epoch = source.epoch
        if epoch == self._source_epoch:
            return
        self._source_epoch = epoch
        self._strings = source.snapshot()
        self._stats = collect_statistics(self._strings)
        self._planner.refresh_statistics(self._stats)
        representative = max(1, int(round(self._stats.mean_length)))
        self._default_plan = self._planner.plan(
            length=representative, k=DEFAULT_PLAN_K,
            policy=self._default_policy,
        )
        if self._segment_reason is not None:
            self._default_plan = replace(self._default_plan,
                                         reason=self._segment_reason)
        self._batch_searcher = None
        self._batch_index = None
        self._override_searchers.clear()
        self._searcher = self._build_default_searcher()

    @property
    def source_corpus(self):
        """The :class:`repro.live.Corpus` behind this engine, if any."""
        return self._source

    def _attach_obs(self, component) -> None:
        """Attach the engine's registry/recorder where supported."""
        if self._metrics is not None:
            attach = getattr(component, "attach_metrics", None)
            if attach is not None:
                attach(self._metrics)
        if self._recorder is not None:
            attach = getattr(component, "attach_recorder", None)
            if attach is not None:
                attach(self._recorder)

    # ----------------------------------------------------------------
    # the planner surface

    @property
    def planner(self) -> Planner:
        """The engine's cost-model planner (see :mod:`repro.core.planner`)."""
        return self._planner

    @property
    def default_plan(self) -> QueryPlan:
        """The dataset-level plan behind the constructor's searcher.

        Scored for a representative query (the corpus's mean length at
        ``k=2``); per-call routing re-plans for each request's actual
        shape.
        """
        return self._default_plan

    def plan(self, query=None, k: int | None = None, *,
             deadline: Deadline | Budget | None = None,
             options: SearchOptions | None = None,
             plan: PlannerPolicy | None = None,
             batch: bool | None = None) -> QueryPlan:
        """The :class:`QueryPlan` a call with these arguments would use.

        Accepts the same spellings as :meth:`search`/:meth:`search_many`
        (a query string, a sequence of queries, or a
        :class:`SearchRequest`) and returns the EXPLAIN-style plan
        without executing anything.  ``batch`` overrides the executor
        mode: ``True`` scores only the batch executors, ``False`` the
        per-query searchers (workload mode); by default multi-query
        requests plan as batches.
        """
        self._sync_with_source()
        request = self._to_request(query, k, deadline=deadline,
                                   options=options, plan=plan)
        return self._plan_request(request, batch=batch)

    def explain(self, query=None, k: int | None = None, *,
                deadline: Deadline | Budget | None = None,
                options: SearchOptions | None = None,
                plan: PlannerPolicy | None = None,
                batch: bool | None = None) -> QueryPlan:
        """Alias of :meth:`plan` (the SQL ``EXPLAIN`` spelling).

        ``print(engine.explain("Berlino", 2).render())`` prints the
        per-strategy cost table.
        """
        return self.plan(query, k, deadline=deadline, options=options,
                         plan=plan, batch=batch)

    def _plan_request(self, request: SearchRequest, *,
                      batch: bool | None = None) -> QueryPlan:
        """Plan one normalized request with the engine's default policy.

        ``batch`` overrides batch-executor feasibility: workload mode
        runs per-query searchers, so a multi-query request may still
        use the non-batch strategies there.
        """
        policy = request.plan if request.plan is not None \
            else self._default_policy
        return self._planner.plan_queries(
            list(request.queries), request.k,
            deadline=request.deadline is not None,
            batch=request.is_batch if batch is None else batch,
            policy=policy,
        )

    @property
    def choice(self) -> EngineChoice:
        """Deprecated: the dataset-level decision, as an
        :class:`EngineChoice`.

        .. deprecated::
            Slated for removal in 2.0. ``engine.choice`` is now a view
            of :attr:`default_plan` — use that (or :meth:`plan` /
            :meth:`explain` for per-request decisions); unlike the old
            attribute it reports every strategy, including
            ``compiled``.
        """
        warnings.warn(
            "SearchEngine.choice is deprecated and will be removed in "
            "2.0; use engine.default_plan (or engine.plan(request) / "
            "engine.explain(request) for per-request decisions) "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return EngineChoice(self._default_plan.strategy,
                            self._default_plan.reason)

    @property
    def searcher(self) -> Searcher:
        """The underlying searcher (for inspection)."""
        return self._searcher

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The attached observability registry (``None`` unless asked)."""
        return self._metrics

    @property
    def recorder(self) -> FlightRecorder | None:
        """The attached flight recorder (``None`` unless asked)."""
        return self._recorder

    @property
    def last_report(self) -> SearchReport | None:
        """The :class:`repro.obs.SearchReport` of the last engine call.

        ``None`` before the first call. Always describes the backend
        that *actually served* the call — including a per-call
        ``plan=`` override on :meth:`search_many` — never a stale
        sibling, and carries the serialized :class:`QueryPlan` in its
        ``plan`` section. Built lazily from snapshots taken around the
        call, so reading it costs nothing on the hot path.
        """
        if self._last_call is None:
            return None
        if self._last_report_cache is None:
            call = dict(self._last_call)
            plan = call.pop("plan_obj", None)
            call["plan"] = plan.to_dict() if plan is not None else None
            self._last_report_cache = build_report(**call)
        return self._last_report_cache

    @property
    def batch_stats(self):
        """Deprecated: dedup/memo counters of the last-used batch path.

        .. deprecated::
            Slated for removal in 2.0. Use
            ``search_many(..., report=True)`` or
            ``engine.last_report.batch`` — the report's ``batch``
            section is the per-call delta of these counters and always
            describes the executor that served the last call.
        """
        warnings.warn(
            "SearchEngine.batch_stats is deprecated and will be "
            "removed in 2.0; use search_many(..., report=True) or "
            "engine.last_report.batch instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._last_batch_executor is not None:
            return self._last_batch_executor.stats
        if self._batch_searcher is not None:
            return self._batch_searcher.executor.stats
        if self._batch_index is not None:
            return self._batch_index.stats
        return None

    # ----------------------------------------------------------------
    # report plumbing

    @staticmethod
    def _batch_state(executor) -> tuple[int, int, int, int]:
        stats = executor.stats
        return (stats.queries_seen, stats.unique_queries,
                stats.cache_hits, stats.scans_executed)

    @staticmethod
    def _batch_delta(before: tuple[int, int, int, int],
                     after: tuple[int, int, int, int]) -> BatchCounters:
        return BatchCounters(
            queries_seen=after[0] - before[0],
            unique_queries=after[1] - before[1],
            cache_hits=after[2] - before[2],
            scans_executed=after[3] - before[3],
        )

    def _timers_delta(self, before: dict) -> dict:
        if self._metrics is None:
            return {}
        delta: dict = {}
        for name, cell in self._metrics.timers().items():
            prior = before.get(name)
            seconds = cell["seconds"] - (prior["seconds"] if prior else 0.0)
            calls = cell["calls"] - (prior["calls"] if prior else 0)
            if calls or seconds:
                delta[name] = {"seconds": seconds, "calls": calls}
        return delta

    def _feed_planner(self, strategy: str, k: int,
                      lengths: list[int], seconds: float) -> None:
        """Close the loop: executed window -> planner correction."""
        try:
            self._planner.observe_window(strategy, k, lengths, seconds)
        except Exception:  # pragma: no cover - observation is advisory
            pass

    def _observed_call(self, *, component, backend: str, engine_name: str,
                       mode: str, queries: list[str], k: int,
                       call: Callable[[], ResultSet | list[Match]],
                       batch_executor=None,
                       plan: QueryPlan | None = None):
        """Run one engine call and capture its report window.

        Counters and histograms are cumulative in the serving
        component; the window is the before/after difference, so the
        report holds exactly this call's work no matter how many calls
        came before. The window also feeds the planner's online
        corrections.
        """
        snapshot = getattr(component, "counters_snapshot", None)
        before_counters = snapshot() if snapshot is not None else {}
        hist_snapshot = getattr(component, "hists_snapshot", None)
        before_hists = (hist_snapshot() if hist_snapshot is not None
                        else {})
        before_timers = (dict(self._metrics.timers())
                         if self._metrics is not None else {})
        before_batch = (self._batch_state(batch_executor)
                        if batch_executor is not None else None)
        started = time.perf_counter()
        if self._metrics is not None:
            with self._metrics.trace(f"engine.{mode}"):
                result = call()
        else:
            result = call()
        seconds = time.perf_counter() - started
        after_counters = snapshot() if snapshot is not None else {}
        after_hists = (hist_snapshot() if hist_snapshot is not None
                       else {})
        matches = (result.total_matches if isinstance(result, ResultSet)
                   else len(result))
        if plan is not None:
            choice_backend, choice_reason = plan.strategy, plan.reason
        else:
            choice_backend = self._default_plan.strategy
            choice_reason = self._default_plan.reason
        self._last_call = {
            "backend": backend,
            "engine": engine_name,
            "mode": mode,
            "queries": len(queries),
            "k": k,
            "matches": matches,
            "seconds": seconds,
            "counters": counter_delta(before_counters, after_counters),
            "timers": self._timers_delta(before_timers),
            # Live Histogram deltas; build_report summarizes lazily.
            "histograms": hists_delta(before_hists, after_hists),
            "batch": (self._batch_delta(before_batch,
                                        self._batch_state(batch_executor))
                      if batch_executor is not None else None),
            "choice_backend": choice_backend,
            "choice_reason": choice_reason,
            "plan_obj": plan,
        }
        self._last_report_cache = None
        if batch_executor is not None:
            self._last_batch_executor = batch_executor
        if mode != "search" or seconds >= SEARCH_FEEDBACK_FLOOR:
            # Single-query windows only carry signal once the measured
            # work dwarfs Python dispatch overhead; below the floor
            # the observation would teach the planner the overhead,
            # not the strategy.
            self._feed_planner(
                backend, k,
                sorted({len(query) for query in queries}) or [1],
                seconds,
            )
        return result

    def _make_compiled_searcher(self) -> Searcher:
        """A compiled-scan searcher, segment-backed when configured."""
        from repro.scan.searcher import CompiledScanSearcher

        if self._segment is not None:
            from repro.speed import load_or_build_corpus_segment

            corpus = load_or_build_corpus_segment(self._strings,
                                                  self._segment)
            return CompiledScanSearcher(corpus)
        if self._source is not None and not self._source.mutable:
            compiled = self._source.compiled_corpus
            if compiled is not None:
                # A frozen Corpus already paid the compile; share it.
                return CompiledScanSearcher(compiled)
        return CompiledScanSearcher(self._strings)

    def _ensure_batch_searcher(self) -> Searcher:
        if self._batch_searcher is None:
            self._batch_searcher = self._make_compiled_searcher()
            self._attach_obs(self._batch_searcher)
        return self._batch_searcher

    def _ensure_batch_index(self):
        if self._batch_index is None:
            from repro.index.batch import BatchIndexExecutor
            from repro.index.flat import FlatTrie

            flat = getattr(self._searcher, "flat_trie", None)
            if flat is None:
                flat = FlatTrie(self._strings)
            self._batch_index = BatchIndexExecutor(flat)
            self._attach_obs(self._batch_index)
        return self._batch_index

    # ----------------------------------------------------------------
    # request plumbing

    def _to_request(self, query, k, *, deadline=None, backend=None,
                    report: bool = False,
                    options: SearchOptions | None = None,
                    plan: PlannerPolicy | None = None,
                    batch: bool = False) -> SearchRequest:
        """Normalize legacy arguments or a :class:`SearchRequest`.

        The legacy ``report=`` flag folds into ``options.report``;
        combining it with an explicit request (or explicit options) is
        a conflict, mirroring :func:`repro.core.request.as_request`.
        """
        if report:
            if isinstance(query, SearchRequest) or options is not None:
                raise ReproError(
                    "pass report inside SearchOptions, not alongside a "
                    "SearchRequest/options value"
                )
            options = SearchOptions(report=True)
        return as_request(query, k, deadline=deadline, backend=backend,
                          options=options, plan=plan, batch=batch)

    def _component_for(self, strategy: str) -> tuple[Searcher, str]:
        """The searcher serving one planned (or forced) strategy.

        Returns ``(component, strategy)``. The constructor's searcher
        serves its own strategy; any other builds (and caches) a
        sibling searcher so one engine can serve any strategy per
        request.
        """
        if strategy == self._default_plan.strategy:
            return self._searcher, strategy
        if strategy == "compiled":
            return self._ensure_batch_searcher(), "compiled"
        cached = self._override_searchers.get(strategy)
        if cached is not None:
            return cached, strategy
        if strategy == "sequential":
            searcher: Searcher = SequentialScanSearcher(
                self._strings, kernel="bitparallel", order="length"
            )
        elif strategy == "qgram":
            searcher = IndexedSearcher(self._strings, index="qgram")
        elif strategy == "indexed":
            searcher = IndexedSearcher(self._strings, index="flat")
        else:
            raise ReproError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{STRATEGIES}"
            )
        self._attach_obs(searcher)
        self._override_searchers[strategy] = searcher
        return searcher, strategy

    # ----------------------------------------------------------------
    # the one-call API

    def search(self, query: str | SearchRequest, k: int | None = None,
               *, deadline: Deadline | Budget | None = None,
               backend: str | None = None,
               options: SearchOptions | None = None,
               plan: PlannerPolicy | None = None,
               report: bool = False):
        """All dataset strings within edit distance ``k`` of ``query``.

        Accepts either the legacy positional form (``query, k`` plus
        keywords) or a single :class:`repro.core.request.SearchRequest`
        carrying the same information; a batch request is routed to
        :meth:`search_many`. ``plan=`` takes a
        :class:`PlannerPolicy` (forcing a strategy or restricting the
        planner); the ``backend=`` string spelling is deprecated. With
        ``report=True`` (or ``options.report``) returns
        ``(matches, SearchReport)``; either way :attr:`last_report`
        describes this call afterwards.

        A ``deadline`` bounds the work: on expiry the call raises
        :class:`repro.exceptions.DeadlineExceeded` carrying the
        verified partial matches found so far.
        """
        self._sync_with_source()
        request = self._to_request(query, k, deadline=deadline,
                                   backend=backend, report=report,
                                   options=options, plan=plan)
        if request.is_batch:
            return self.search_many(request)
        qplan = self._plan_request(request)
        component, served = self._component_for(qplan.strategy)
        matches = self._observed_call(
            component=component,
            backend=served,
            engine_name=getattr(component, "name", served),
            mode="search",
            queries=[request.query],
            k=request.k,
            call=lambda: component.search(request.query, request.k,
                                          deadline=request.deadline),
            batch_executor=getattr(component, "executor", None),
            plan=qplan,
        )
        if request.options.report:
            return matches, self.last_report
        return matches

    def search_many(self, queries: Iterable[str] | SearchRequest,
                    k: int | None = None, *,
                    backend: str | None = None,
                    deadline: Deadline | Budget | None = None,
                    options: SearchOptions | None = None,
                    plan: PlannerPolicy | None = None,
                    report: bool = False):
        """Answer a whole batch of queries at one threshold.

        In the scan regime this routes through the compiled-corpus
        batch engine — queries are deduplicated, the corpus is encoded
        and bucketed once, and repeats hit the result memo. In the
        index regime it routes through the compiled flat-trie batch
        engine (:class:`repro.index.batch.BatchIndexExecutor`), which
        dedupes and memoizes the same way and fans distinct queries
        out over the configured runner. The planner scores both per
        batch (and may split a mixed-length batch between them when
        the estimate says the split pays for the extra executor).

        ``plan=`` overrides the routing for this call only (the
        ``backend=`` string spelling is deprecated):
        ``PlannerPolicy(strategy="compiled")`` forces the batch scan,
        ``PlannerPolicy(strategy="indexed")`` the batch index.
        :attr:`last_report` (and the deprecated ``batch_stats``)
        always reflect the executor(s) that actually served this call.
        A :class:`SearchRequest` may be passed instead of
        ``queries``/``k``; its fields supply the same information.

        Results are always one row per input query, in input order,
        identical to calling :meth:`search` in a loop. With
        ``report=True`` returns ``(results, SearchReport)``. With a
        ``deadline``, distinct queries execute serially and expiry
        raises :class:`repro.exceptions.DeadlineExceeded` whose
        ``partial`` maps each *completed* query to its full row.
        """
        self._sync_with_source()
        request = self._to_request(queries, k, deadline=deadline,
                                   backend=backend, report=report,
                                   options=options, plan=plan,
                                   batch=True)
        results = self._execute_batch(request, mode="batch")
        if request.options.report:
            return results, self.last_report
        return results

    def _batch_executor_for(self, strategy: str):
        """(executor, engine name, callable factory) for a batch slice."""
        if strategy == "indexed":
            executor = self._ensure_batch_index()
            return executor, "batch-index[flat]", executor.search_many
        searcher = self._ensure_batch_searcher()
        return searcher.executor, searcher.name, searcher.search_many
    def _execute_batch(self, request: SearchRequest, *,
                       mode: str) -> ResultSet:
        policy = request.plan if request.plan is not None \
            else self._default_policy
        if policy.strategy is not None \
                and policy.strategy not in ("compiled", "indexed"):
            if request.plan is not None:
                # A per-call force of a batch-less strategy is an
                # error, exactly as before the planner.
                raise ReproError(
                    f"unknown batch backend {policy.strategy!r}; "
                    "expected None, 'compiled' or 'indexed' (the other "
                    "strategies have no batch executor)"
                )
            # An engine-level sequential/qgram force cannot serve a
            # batch; let the planner pick among the batch executors,
            # matching the pre-planner engine's behavior.
            policy = PlannerPolicy(allow=("compiled", "indexed"))
        qplan = self._planner.plan_queries(
            list(request.queries), request.k,
            deadline=request.deadline is not None, batch=True,
            policy=policy,
        )
        strategy = qplan.strategy
        if strategy not in ("compiled", "indexed"):
            raise ReproError(
                f"unknown batch backend {strategy!r}; expected None, "
                "'compiled' or 'indexed' (the other strategies have no "
                "batch executor)"
            )
        query_list = list(request.queries)
        k = request.k
        deadline = request.deadline
        if len(qplan.groups) > 1:
            return self._execute_split_batch(request, qplan, mode=mode)
        executor, engine_name, search_many = \
            self._batch_executor_for(strategy)
        call = lambda: search_many(  # noqa: E731
            query_list, k, runner=self._runner, deadline=deadline)
        return self._observed_call(
            component=executor,
            backend=strategy,
            engine_name=engine_name,
            mode=mode,
            queries=query_list,
            k=k,
            call=call,
            batch_executor=executor,
            plan=qplan,
        )

    def _execute_split_batch(self, request: SearchRequest,
                             qplan: QueryPlan, *,
                             mode: str) -> ResultSet:
        """Serve one batch through several executors, per the plan.

        Each plan group runs through its own batch executor; rows come
        back in input order, identical to a single-executor run. The
        report window merges the per-executor counter deltas (their
        namespaces are disjoint) and sums the batch dedup counters.
        The planner never splits a deadline'd batch, so each slice runs
        unbounded.
        """
        query_list = list(request.queries)
        k = request.k
        sides = []
        for group in qplan.groups:
            executor, engine_name, search_many = \
                self._batch_executor_for(group.strategy)
            sides.append((group, executor, engine_name, search_many))
        before = [
            (executor.counters_snapshot(), executor.hists_snapshot(),
             self._batch_state(executor))
            for _, executor, _, _ in sides
        ]
        before_timers = (dict(self._metrics.timers())
                         if self._metrics is not None else {})
        rows: list = [None] * len(query_list)
        started = time.perf_counter()
        for group, executor, engine_name, search_many in sides:
            subset = [query_list[index] for index in group.indices]
            result = search_many(subset, k, runner=self._runner)
            for index, row in zip(group.indices, result.rows):
                rows[index] = list(row)
        seconds = time.perf_counter() - started
        results = ResultSet(query_list, rows)
        counters: dict = {}
        histograms: dict = {}
        batch_total = BatchCounters()
        for (group, executor, engine_name, _), \
                (counters_before, hists_before, batch_before) \
                in zip(sides, before):
            counters.update(counter_delta(counters_before,
                                          executor.counters_snapshot()))
            histograms.update(hists_delta(hists_before,
                                          executor.hists_snapshot()))
            delta = self._batch_delta(batch_before,
                                      self._batch_state(executor))
            batch_total = BatchCounters(
                queries_seen=batch_total.queries_seen
                + delta.queries_seen,
                unique_queries=batch_total.unique_queries
                + delta.unique_queries,
                cache_hits=batch_total.cache_hits + delta.cache_hits,
                scans_executed=batch_total.scans_executed
                + delta.scans_executed,
            )
            self._last_batch_executor = executor
        self._last_call = {
            "backend": qplan.strategy,
            "engine": "batch-split[" + "+".join(
                group.strategy for group in qplan.groups) + "]",
            "mode": mode,
            "queries": len(query_list),
            "k": k,
            "matches": results.total_matches,
            "seconds": seconds,
            "counters": counters,
            "timers": self._timers_delta(before_timers),
            "histograms": histograms,
            "batch": batch_total,
            "choice_backend": qplan.strategy,
            "choice_reason": qplan.reason,
            "plan_obj": qplan,
        }
        self._last_report_cache = None
        for group, executor, engine_name, _ in sides:
            subset_lengths = sorted(
                {len(query_list[index]) for index in group.indices})
            # Attribute the window's wall clock proportionally by the
            # plan's own estimates; good enough for an EWMA step.
            share = qplan.cost_for(group.strategy) / max(
                1e-12, sum(qplan.cost_for(g.strategy)
                           for g in qplan.groups))
            self._feed_planner(group.strategy, k, subset_lengths,
                               seconds * share)
        return results

    def run_workload(self, workload: Workload | SearchRequest, *,
                     deadline: Deadline | Budget | None = None,
                     report: bool = False):
        """Execute a workload through the configured runner.

        With ``report=True`` returns ``(results, SearchReport)``; the
        report's mode is ``"workload"``. Accepts a
        :class:`SearchRequest` (built with
        :meth:`SearchRequest.from_workload`) in place of a workload.
        With a ``deadline`` the workload routes through the batch
        engine serially so expiry has a well-defined abort point.
        """
        self._sync_with_source()
        if isinstance(workload, SearchRequest):
            request = self._to_request(workload, None, deadline=deadline,
                                       report=report)
            run = Workload(queries=request.queries, k=request.k)
        else:
            request = SearchRequest.from_workload(
                workload, deadline=deadline,
                options=SearchOptions(report=report),
            )
            run = workload
        if request.deadline is not None:
            results = self._execute_batch(request, mode="workload")
            if request.options.report:
                return results, self.last_report
            return results
        # Workload mode runs per-query searchers through the runner, so
        # every strategy is feasible regardless of batch size.
        qplan = self._plan_request(request, batch=False)
        component, served = self._component_for(qplan.strategy)
        queries = request.queries
        k = request.k
        results = self._observed_call(
            component=component,
            backend=served,
            engine_name=getattr(component, "name", served),
            mode="workload",
            queries=list(queries),
            k=k,
            call=lambda: component.run_workload(run, self._runner),
            batch_executor=getattr(component, "executor", None),
            plan=qplan,
        )
        if request.options.report:
            return results, self.last_report
        return results

    def timed_workload(self, workload: Workload) -> tuple[ResultSet, float]:
        """Execute a workload and report (results, elapsed seconds).

        Times only query execution, like the paper (index build happened
        in the constructor). The same window is what
        :attr:`last_report` records as ``seconds``.
        """
        results = self.run_workload(workload)
        assert self._last_call is not None
        return results, self._last_call["seconds"]
