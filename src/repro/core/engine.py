"""SearchEngine: the user-facing facade over both solutions.

The paper's conclusion is a decision rule: short strings over a large
alphabet favour the optimized sequential scan; long strings over a tiny
alphabet favour the trie index. :class:`SearchEngine` encodes that rule
so a downstream user gets the right configuration without re-reading
the evaluation section — and can always override it.

The rule has a second axis since the batch engines landed: *how many*
queries arrive together. A scan-regime dataset probed by a whole
workload goes through the compiled-corpus batch path
(:mod:`repro.scan`); an index-regime dataset goes through the compiled
flat-trie batch path (:mod:`repro.index.batch`). Both deduplicate
queries and amortize query-side setup; :meth:`SearchEngine.search_many`
applies the right one automatically, and ``backend="compiled"`` forces
the compiled scan for everything. The indexed side itself is compiled
too: the ``indexed`` backend builds the paper's compressed trie frozen
into flat arrays (``index="flat"``), which answers identically to the
object trie but without per-node interpreter overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro.core.indexed import IndexedSearcher
from repro.core.result import Match, ResultSet
from repro.core.searcher import QueryRunner, Searcher
from repro.core.sequential import SequentialScanSearcher
from repro.data.stats import describe
from repro.data.workload import Workload
from repro.exceptions import ReproError

#: Decision boundary carried over from the paper's two regimes: city
#: names average well under this, DNA reads well over it.
MEAN_LENGTH_CUTOFF = 40

#: Alphabets at or below this size count as "tiny" (DNA has 5 symbols).
SMALL_ALPHABET_CUTOFF = 8


@dataclass(frozen=True)
class EngineChoice:
    """The engine's configuration decision and its rationale."""

    backend: str            # "sequential" or "indexed"
    reason: str


class SearchEngine:
    """Similarity search with automatic backend selection.

    Parameters
    ----------
    dataset:
        The strings to search.
    backend:
        ``"auto"`` applies the paper's decision rule; ``"sequential"``,
        ``"indexed"`` and ``"compiled"`` (the batch-amortized scan of
        :mod:`repro.scan`) force a side.
    runner:
        Optional parallel runner used by :meth:`run_workload`.

    Examples
    --------
    >>> engine = SearchEngine(["Berlin", "Bern", "Ulm"])
    >>> engine.choice.backend
    'sequential'
    >>> [match.string for match in engine.search("Berlino", 2)]
    ['Berlin']
    """

    def __init__(self, dataset: Iterable[str], *,
                 backend: str = "auto",
                 runner: QueryRunner | None = None) -> None:
        strings = tuple(dataset)
        if backend not in ("auto", "sequential", "indexed", "compiled"):
            raise ReproError(
                f"unknown backend {backend!r}; expected 'auto', "
                "'sequential', 'indexed' or 'compiled'"
            )
        self._runner = runner
        self._strings = strings
        self._batch_searcher: Searcher | None = None
        self._batch_index = None
        self._choice = self._decide(strings, backend)
        if self._choice.backend == "sequential":
            self._searcher: Searcher = SequentialScanSearcher(
                strings, kernel="bitparallel", order="length"
            )
        elif self._choice.backend == "compiled":
            from repro.scan.searcher import CompiledScanSearcher

            self._searcher = CompiledScanSearcher(strings)
            self._batch_searcher = self._searcher
        else:
            self._searcher = IndexedSearcher(strings, index="flat")

    @staticmethod
    def _decide(strings: tuple[str, ...], backend: str) -> EngineChoice:
        if backend != "auto":
            return EngineChoice(backend, "forced by caller")
        stats = describe(strings)
        long_strings = stats.mean_length > MEAN_LENGTH_CUTOFF
        tiny_alphabet = 0 < stats.alphabet_size <= SMALL_ALPHABET_CUTOFF
        if long_strings and tiny_alphabet:
            return EngineChoice(
                "indexed",
                f"mean length {stats.mean_length:.0f} > "
                f"{MEAN_LENGTH_CUTOFF} over {stats.alphabet_size} symbols: "
                "the DNA regime, where the trie index wins (paper §5.8) "
                "— served by the compiled flat trie",
            )
        return EngineChoice(
            "sequential",
            f"mean length {stats.mean_length:.0f} over "
            f"{stats.alphabet_size} symbols: the short-string regime, "
            "where the optimized scan wins (paper §5.5)",
        )

    @property
    def choice(self) -> EngineChoice:
        """Which backend was selected, and why."""
        return self._choice

    @property
    def searcher(self) -> Searcher:
        """The underlying searcher (for inspection)."""
        return self._searcher

    @property
    def batch_stats(self):
        """Dedup/memo counters of the batch path (``None`` before use).

        A :class:`repro.scan.executor.BatchStats` once
        :meth:`search_many` has routed through either compiled engine
        (the batch scan and the batch index share the counter type).
        """
        if self._batch_index is not None:
            return self._batch_index.stats
        if self._batch_searcher is None:
            return None
        return self._batch_searcher.executor.stats

    def search(self, query: str, k: int) -> list[Match]:
        """All dataset strings within edit distance ``k`` of ``query``."""
        return self._searcher.search(query, k)

    def search_many(self, queries: Iterable[str], k: int) -> ResultSet:
        """Answer a whole batch of queries at one threshold.

        In the scan regime (``sequential`` or ``compiled``) this routes
        through the compiled-corpus batch engine — queries are
        deduplicated, the corpus is encoded and bucketed once, and
        repeats hit the result memo. In the index regime it routes
        through the compiled flat-trie batch engine
        (:class:`repro.index.batch.BatchIndexExecutor`), which dedupes
        and memoizes the same way and fans distinct queries out over
        the configured runner. Either way the decision rule's batch
        extension applies: amortize whatever depends only on the data
        or only on the distinct query.

        Results are always one row per input query, in input order,
        identical to calling :meth:`search` in a loop.
        """
        queries = list(queries)
        if self._choice.backend == "indexed":
            if self._batch_index is None:
                from repro.index.batch import BatchIndexExecutor
                from repro.index.flat import FlatTrie

                flat = getattr(self._searcher, "flat_trie", None)
                if flat is None:
                    flat = FlatTrie(self._strings)
                self._batch_index = BatchIndexExecutor(flat)
            return self._batch_index.search_many(
                queries, k, runner=self._runner
            )
        if self._batch_searcher is None:
            from repro.scan.searcher import CompiledScanSearcher

            self._batch_searcher = CompiledScanSearcher(self._strings)
        return self._batch_searcher.search_many(
            queries, k, runner=self._runner
        )

    def run_workload(self, workload: Workload) -> ResultSet:
        """Execute a workload through the configured runner."""
        return self._searcher.run_workload(workload, self._runner)

    def timed_workload(self, workload: Workload) -> tuple[ResultSet, float]:
        """Execute a workload and report (results, elapsed seconds).

        Times only query execution, like the paper (index build happened
        in the constructor).
        """
        started = time.perf_counter()
        results = self.run_workload(workload)
        return results, time.perf_counter() - started
