"""SearchEngine: the user-facing facade over both solutions.

The paper's conclusion is a decision rule: short strings over a large
alphabet favour the optimized sequential scan; long strings over a tiny
alphabet favour the trie index. :class:`SearchEngine` encodes that rule
so a downstream user gets the right configuration without re-reading
the evaluation section — and can always override it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro.core.indexed import IndexedSearcher
from repro.core.result import Match, ResultSet
from repro.core.searcher import QueryRunner, Searcher
from repro.core.sequential import SequentialScanSearcher
from repro.data.stats import describe
from repro.data.workload import Workload
from repro.exceptions import ReproError

#: Decision boundary carried over from the paper's two regimes: city
#: names average well under this, DNA reads well over it.
MEAN_LENGTH_CUTOFF = 40

#: Alphabets at or below this size count as "tiny" (DNA has 5 symbols).
SMALL_ALPHABET_CUTOFF = 8


@dataclass(frozen=True)
class EngineChoice:
    """The engine's configuration decision and its rationale."""

    backend: str            # "sequential" or "indexed"
    reason: str


class SearchEngine:
    """Similarity search with automatic backend selection.

    Parameters
    ----------
    dataset:
        The strings to search.
    backend:
        ``"auto"`` applies the paper's decision rule; ``"sequential"``
        and ``"indexed"`` force a side.
    runner:
        Optional parallel runner used by :meth:`run_workload`.

    Examples
    --------
    >>> engine = SearchEngine(["Berlin", "Bern", "Ulm"])
    >>> engine.choice.backend
    'sequential'
    >>> [match.string for match in engine.search("Berlino", 2)]
    ['Berlin']
    """

    def __init__(self, dataset: Iterable[str], *,
                 backend: str = "auto",
                 runner: QueryRunner | None = None) -> None:
        strings = tuple(dataset)
        if backend not in ("auto", "sequential", "indexed"):
            raise ReproError(
                f"unknown backend {backend!r}; expected 'auto', "
                "'sequential' or 'indexed'"
            )
        self._runner = runner
        self._choice = self._decide(strings, backend)
        if self._choice.backend == "sequential":
            self._searcher: Searcher = SequentialScanSearcher(
                strings, kernel="bitparallel", order="length"
            )
        else:
            self._searcher = IndexedSearcher(strings, index="compressed")

    @staticmethod
    def _decide(strings: tuple[str, ...], backend: str) -> EngineChoice:
        if backend != "auto":
            return EngineChoice(backend, "forced by caller")
        stats = describe(strings)
        long_strings = stats.mean_length > MEAN_LENGTH_CUTOFF
        tiny_alphabet = 0 < stats.alphabet_size <= SMALL_ALPHABET_CUTOFF
        if long_strings and tiny_alphabet:
            return EngineChoice(
                "indexed",
                f"mean length {stats.mean_length:.0f} > "
                f"{MEAN_LENGTH_CUTOFF} over {stats.alphabet_size} symbols: "
                "the DNA regime, where the trie index wins (paper §5.8)",
            )
        return EngineChoice(
            "sequential",
            f"mean length {stats.mean_length:.0f} over "
            f"{stats.alphabet_size} symbols: the short-string regime, "
            "where the optimized scan wins (paper §5.5)",
        )

    @property
    def choice(self) -> EngineChoice:
        """Which backend was selected, and why."""
        return self._choice

    @property
    def searcher(self) -> Searcher:
        """The underlying searcher (for inspection)."""
        return self._searcher

    def search(self, query: str, k: int) -> list[Match]:
        """All dataset strings within edit distance ``k`` of ``query``."""
        return self._searcher.search(query, k)

    def run_workload(self, workload: Workload) -> ResultSet:
        """Execute a workload through the configured runner."""
        return self._searcher.run_workload(workload, self._runner)

    def timed_workload(self, workload: Workload) -> tuple[ResultSet, float]:
        """Execute a workload and report (results, elapsed seconds).

        Times only query execution, like the paper (index build happened
        in the constructor).
        """
        started = time.perf_counter()
        results = self.run_workload(workload)
        return results, time.perf_counter() - started
