"""SearchEngine: the user-facing facade over both solutions.

The paper's conclusion is a decision rule: short strings over a large
alphabet favour the optimized sequential scan; long strings over a tiny
alphabet favour the trie index. :class:`SearchEngine` encodes that rule
so a downstream user gets the right configuration without re-reading
the evaluation section — and can always override it.

The rule has a second axis since the batch engines landed: *how many*
queries arrive together. A scan-regime dataset probed by a whole
workload goes through the compiled-corpus batch path
(:mod:`repro.scan`); an index-regime dataset goes through the compiled
flat-trie batch path (:mod:`repro.index.batch`). Both deduplicate
queries and amortize query-side setup; :meth:`SearchEngine.search_many`
applies the right one automatically, and ``backend="compiled"`` forces
the compiled scan for everything. The indexed side itself is compiled
too: the ``indexed`` backend builds the paper's compressed trie frozen
into flat arrays (``index="flat"``), which answers identically to the
object trie but without per-node interpreter overhead.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.deadline import Budget, Deadline
from repro.core.indexed import IndexedSearcher
from repro.core.request import (
    SearchOptions,
    SearchRequest,
    as_request,
)
from repro.core.result import Match, ResultSet
from repro.core.searcher import QueryRunner, Searcher
from repro.core.sequential import SequentialScanSearcher
from repro.data.stats import describe
from repro.data.workload import Workload
from repro.exceptions import ReproError
from repro.obs.hist import hists_delta
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import MetricsRegistry, counter_delta
from repro.obs.report import BatchCounters, SearchReport, build_report

#: Decision boundary carried over from the paper's two regimes: city
#: names average well under this, DNA reads well over it.
MEAN_LENGTH_CUTOFF = 40

#: Alphabets at or below this size count as "tiny" (DNA has 5 symbols).
SMALL_ALPHABET_CUTOFF = 8


@dataclass(frozen=True)
class EngineChoice:
    """The engine's configuration decision and its rationale."""

    backend: str            # "sequential" or "indexed"
    reason: str


class SearchEngine:
    """Similarity search with automatic backend selection.

    Parameters
    ----------
    dataset:
        The strings to search.
    backend:
        ``"auto"`` applies the paper's decision rule; ``"sequential"``,
        ``"indexed"`` and ``"compiled"`` (the batch-amortized scan of
        :mod:`repro.scan`) force a side.
    runner:
        Optional parallel runner used by :meth:`run_workload`.
    observe:
        Create a :class:`repro.obs.MetricsRegistry`, attach it to every
        backend the engine touches, and collect span/timer evidence in
        it (reachable as :attr:`metrics`). Off by default — the
        always-on work counters, per-query histograms and
        :attr:`last_report` do not need it.
    metrics:
        Use a caller-owned registry instead (implies ``observe``).
    recorder:
        Optional :class:`repro.obs.FlightRecorder` forwarded to every
        backend the engine touches, so slow queries leave exemplars
        (query, k, per-stage timings, work counters) no matter which
        component serves them.
    segment:
        Optional path to a corpus segment file (see
        :mod:`repro.speed`). The compiled backend then mmap-loads its
        corpus from the file — compiling and saving it first if the
        file does not exist yet — instead of compiling from scratch on
        every start. Implies ``backend="compiled"`` unless a backend
        was forced explicitly.

    Examples
    --------
    >>> engine = SearchEngine(["Berlin", "Bern", "Ulm"])
    >>> engine.choice.backend
    'sequential'
    >>> [match.string for match in engine.search("Berlino", 2)]
    ['Berlin']
    >>> engine.last_report.matches
    1
    """

    def __init__(self, dataset: Iterable[str], *,
                 backend: str = "auto",
                 runner: QueryRunner | None = None,
                 observe: bool = False,
                 metrics: MetricsRegistry | None = None,
                 recorder: FlightRecorder | None = None,
                 segment: str | None = None) -> None:
        strings = tuple(dataset)
        if backend not in ("auto", "sequential", "indexed", "compiled"):
            raise ReproError(
                f"unknown backend {backend!r}; expected 'auto', "
                "'sequential', 'indexed' or 'compiled'"
            )
        self._runner = runner
        self._strings = strings
        self._segment = segment
        if metrics is not None:
            self._metrics: MetricsRegistry | None = metrics
        else:
            self._metrics = MetricsRegistry() if observe else None
        self._recorder = recorder
        self._batch_searcher: Searcher | None = None
        self._batch_index = None
        self._override_searchers: dict[str, Searcher] = {}
        self._last_batch_executor = None
        self._last_call: dict | None = None
        self._last_report_cache: SearchReport | None = None
        if segment is not None and backend == "auto":
            self._choice = EngineChoice(
                "compiled", "segment-backed corpus serves the compiled "
                            "scan")
        else:
            self._choice = self._decide(strings, backend)
        if self._choice.backend == "sequential":
            self._searcher: Searcher = SequentialScanSearcher(
                strings, kernel="bitparallel", order="length"
            )
        elif self._choice.backend == "compiled":
            self._searcher = self._make_compiled_searcher()
            self._batch_searcher = self._searcher
        else:
            self._searcher = IndexedSearcher(strings, index="flat")
        self._attach_obs(self._searcher)

    def _attach_obs(self, component) -> None:
        """Attach the engine's registry/recorder where supported."""
        if self._metrics is not None:
            attach = getattr(component, "attach_metrics", None)
            if attach is not None:
                attach(self._metrics)
        if self._recorder is not None:
            attach = getattr(component, "attach_recorder", None)
            if attach is not None:
                attach(self._recorder)

    @staticmethod
    def _decide(strings: tuple[str, ...], backend: str) -> EngineChoice:
        if backend != "auto":
            return EngineChoice(backend, "forced by caller")
        stats = describe(strings)
        long_strings = stats.mean_length > MEAN_LENGTH_CUTOFF
        tiny_alphabet = 0 < stats.alphabet_size <= SMALL_ALPHABET_CUTOFF
        if long_strings and tiny_alphabet:
            return EngineChoice(
                "indexed",
                f"mean length {stats.mean_length:.0f} > "
                f"{MEAN_LENGTH_CUTOFF} over {stats.alphabet_size} symbols: "
                "the DNA regime, where the trie index wins (paper §5.8) "
                "— served by the compiled flat trie",
            )
        return EngineChoice(
            "sequential",
            f"mean length {stats.mean_length:.0f} over "
            f"{stats.alphabet_size} symbols: the short-string regime, "
            "where the optimized scan wins (paper §5.5)",
        )

    @property
    def choice(self) -> EngineChoice:
        """Which backend was selected, and why."""
        return self._choice

    @property
    def searcher(self) -> Searcher:
        """The underlying searcher (for inspection)."""
        return self._searcher

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The attached observability registry (``None`` unless asked)."""
        return self._metrics

    @property
    def recorder(self) -> FlightRecorder | None:
        """The attached flight recorder (``None`` unless asked)."""
        return self._recorder

    @property
    def last_report(self) -> SearchReport | None:
        """The :class:`repro.obs.SearchReport` of the last engine call.

        ``None`` before the first call. Always describes the backend
        that *actually served* the call — including a per-call
        ``backend=`` override on :meth:`search_many` — never a stale
        sibling. Built lazily from snapshots taken around the call, so
        reading it costs nothing on the hot path.
        """
        if self._last_call is None:
            return None
        if self._last_report_cache is None:
            self._last_report_cache = build_report(
                choice_backend=self._choice.backend,
                choice_reason=self._choice.reason,
                **self._last_call,
            )
        return self._last_report_cache

    @property
    def batch_stats(self):
        """Deprecated: dedup/memo counters of the last-used batch path.

        .. deprecated::
            Slated for removal in 2.0. Use
            ``search_many(..., report=True)`` or
            ``engine.last_report.batch`` — the report's ``batch``
            section is the per-call delta of these counters and always
            describes the executor that served the last call.
        """
        warnings.warn(
            "SearchEngine.batch_stats is deprecated and will be "
            "removed in 2.0; use search_many(..., report=True) or "
            "engine.last_report.batch instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._last_batch_executor is not None:
            return self._last_batch_executor.stats
        if self._batch_searcher is not None:
            return self._batch_searcher.executor.stats
        if self._batch_index is not None:
            return self._batch_index.stats
        return None

    # ----------------------------------------------------------------
    # report plumbing

    @staticmethod
    def _batch_state(executor) -> tuple[int, int, int, int]:
        stats = executor.stats
        return (stats.queries_seen, stats.unique_queries,
                stats.cache_hits, stats.scans_executed)

    @staticmethod
    def _batch_delta(before: tuple[int, int, int, int],
                     after: tuple[int, int, int, int]) -> BatchCounters:
        return BatchCounters(
            queries_seen=after[0] - before[0],
            unique_queries=after[1] - before[1],
            cache_hits=after[2] - before[2],
            scans_executed=after[3] - before[3],
        )

    def _timers_delta(self, before: dict) -> dict:
        if self._metrics is None:
            return {}
        delta: dict = {}
        for name, cell in self._metrics.timers().items():
            prior = before.get(name)
            seconds = cell["seconds"] - (prior["seconds"] if prior else 0.0)
            calls = cell["calls"] - (prior["calls"] if prior else 0)
            if calls or seconds:
                delta[name] = {"seconds": seconds, "calls": calls}
        return delta

    def _observed_call(self, *, component, backend: str, engine_name: str,
                       mode: str, queries: int, k: int,
                       call: Callable[[], ResultSet | list[Match]],
                       batch_executor=None):
        """Run one engine call and capture its report window.

        Counters and histograms are cumulative in the serving
        component; the window is the before/after difference, so the
        report holds exactly this call's work no matter how many calls
        came before.
        """
        snapshot = getattr(component, "counters_snapshot", None)
        before_counters = snapshot() if snapshot is not None else {}
        hist_snapshot = getattr(component, "hists_snapshot", None)
        before_hists = (hist_snapshot() if hist_snapshot is not None
                        else {})
        before_timers = (dict(self._metrics.timers())
                         if self._metrics is not None else {})
        before_batch = (self._batch_state(batch_executor)
                        if batch_executor is not None else None)
        started = time.perf_counter()
        if self._metrics is not None:
            with self._metrics.trace(f"engine.{mode}"):
                result = call()
        else:
            result = call()
        seconds = time.perf_counter() - started
        after_counters = snapshot() if snapshot is not None else {}
        after_hists = (hist_snapshot() if hist_snapshot is not None
                       else {})
        matches = (result.total_matches if isinstance(result, ResultSet)
                   else len(result))
        self._last_call = {
            "backend": backend,
            "engine": engine_name,
            "mode": mode,
            "queries": queries,
            "k": k,
            "matches": matches,
            "seconds": seconds,
            "counters": counter_delta(before_counters, after_counters),
            "timers": self._timers_delta(before_timers),
            # Live Histogram deltas; build_report summarizes lazily.
            "histograms": hists_delta(before_hists, after_hists),
            "batch": (self._batch_delta(before_batch,
                                        self._batch_state(batch_executor))
                      if batch_executor is not None else None),
        }
        self._last_report_cache = None
        if batch_executor is not None:
            self._last_batch_executor = batch_executor
        return result

    def _make_compiled_searcher(self) -> Searcher:
        """A compiled-scan searcher, segment-backed when configured."""
        from repro.scan.searcher import CompiledScanSearcher

        if self._segment is not None:
            from repro.speed import load_or_build_corpus_segment

            corpus = load_or_build_corpus_segment(self._strings,
                                                  self._segment)
            return CompiledScanSearcher(corpus)
        return CompiledScanSearcher(self._strings)

    def _ensure_batch_searcher(self) -> Searcher:
        if self._batch_searcher is None:
            self._batch_searcher = self._make_compiled_searcher()
            self._attach_obs(self._batch_searcher)
        return self._batch_searcher

    def _ensure_batch_index(self):
        if self._batch_index is None:
            from repro.index.batch import BatchIndexExecutor
            from repro.index.flat import FlatTrie

            flat = getattr(self._searcher, "flat_trie", None)
            if flat is None:
                flat = FlatTrie(self._strings)
            self._batch_index = BatchIndexExecutor(flat)
            self._attach_obs(self._batch_index)
        return self._batch_index

    # ----------------------------------------------------------------
    # request plumbing

    def _to_request(self, query, k, *, deadline=None, backend=None,
                    report: bool = False,
                    options: SearchOptions | None = None,
                    batch: bool = False) -> SearchRequest:
        """Normalize legacy arguments or a :class:`SearchRequest`.

        The legacy ``report=`` flag folds into ``options.report``;
        combining it with an explicit request (or explicit options) is
        a conflict, mirroring :func:`repro.core.request.as_request`.
        """
        if report:
            if isinstance(query, SearchRequest) or options is not None:
                raise ReproError(
                    "pass report inside SearchOptions, not alongside a "
                    "SearchRequest/options value"
                )
            options = SearchOptions(report=True)
        return as_request(query, k, deadline=deadline, backend=backend,
                          options=options, batch=batch)

    def _component_for(self, backend: str | None) -> tuple[Searcher, str]:
        """The searcher serving a per-call backend hint.

        Returns ``(component, served_backend)``. ``None``/``"auto"``
        keep the constructor's decision; a differing hint builds (and
        caches) a sibling searcher so one engine can serve any backend
        per request.
        """
        if backend in (None, "auto") or backend == self._choice.backend:
            return self._searcher, self._choice.backend
        if backend == "compiled":
            return self._ensure_batch_searcher(), "compiled"
        cached = self._override_searchers.get(backend)
        if cached is not None:
            return cached, backend
        if backend == "sequential":
            searcher: Searcher = SequentialScanSearcher(
                self._strings, kernel="bitparallel", order="length"
            )
        else:
            searcher = IndexedSearcher(self._strings, index="flat")
        self._attach_obs(searcher)
        self._override_searchers[backend] = searcher
        return searcher, backend

    # ----------------------------------------------------------------
    # the one-call API

    def search(self, query: str | SearchRequest, k: int | None = None,
               *, deadline: Deadline | Budget | None = None,
               backend: str | None = None,
               options: SearchOptions | None = None,
               report: bool = False):
        """All dataset strings within edit distance ``k`` of ``query``.

        Accepts either the legacy positional form (``query, k`` plus
        keywords) or a single :class:`repro.core.request.SearchRequest`
        carrying the same information; a batch request is routed to
        :meth:`search_many`. With ``report=True`` (or
        ``options.report``) returns ``(matches, SearchReport)``; either
        way :attr:`last_report` describes this call afterwards.

        A ``deadline`` bounds the work: on expiry the call raises
        :class:`repro.exceptions.DeadlineExceeded` carrying the
        verified partial matches found so far.
        """
        request = self._to_request(query, k, deadline=deadline,
                                   backend=backend, report=report,
                                   options=options)
        if request.is_batch:
            return self.search_many(request)
        component, served = self._component_for(request.backend)
        matches = self._observed_call(
            component=component,
            backend=served,
            engine_name=getattr(component, "name", served),
            mode="search",
            queries=1,
            k=request.k,
            call=lambda: component.search(request.query, request.k,
                                          deadline=request.deadline),
            batch_executor=getattr(component, "executor", None),
        )
        if request.options.report:
            return matches, self.last_report
        return matches

    def search_many(self, queries: Iterable[str] | SearchRequest,
                    k: int | None = None, *,
                    backend: str | None = None,
                    deadline: Deadline | Budget | None = None,
                    options: SearchOptions | None = None,
                    report: bool = False):
        """Answer a whole batch of queries at one threshold.

        In the scan regime (``sequential`` or ``compiled``) this routes
        through the compiled-corpus batch engine — queries are
        deduplicated, the corpus is encoded and bucketed once, and
        repeats hit the result memo. In the index regime it routes
        through the compiled flat-trie batch engine
        (:class:`repro.index.batch.BatchIndexExecutor`), which dedupes
        and memoizes the same way and fans distinct queries out over
        the configured runner. Either way the decision rule's batch
        extension applies: amortize whatever depends only on the data
        or only on the distinct query.

        ``backend`` overrides the routing for this call only:
        ``"compiled"`` forces the batch scan, ``"indexed"`` the batch
        index. :attr:`last_report` (and the deprecated ``batch_stats``)
        always reflect the executor that actually served this call.
        A :class:`SearchRequest` may be passed instead of
        ``queries``/``k``; its fields supply the same information.

        Results are always one row per input query, in input order,
        identical to calling :meth:`search` in a loop. With
        ``report=True`` returns ``(results, SearchReport)``. With a
        ``deadline``, distinct queries execute serially and expiry
        raises :class:`repro.exceptions.DeadlineExceeded` whose
        ``partial`` maps each *completed* query to its full row.
        """
        request = self._to_request(queries, k, deadline=deadline,
                                   backend=backend, report=report,
                                   options=options, batch=True)
        results = self._execute_batch(request, mode="batch")
        if request.options.report:
            return results, self.last_report
        return results

    def _execute_batch(self, request: SearchRequest, *,
                       mode: str) -> ResultSet:
        backend = request.backend
        if backend not in (None, "auto", "compiled", "indexed"):
            raise ReproError(
                f"unknown batch backend {backend!r}; expected None, "
                "'compiled' or 'indexed'"
            )
        query_list = list(request.queries)
        k = request.k
        deadline = request.deadline
        use_indexed = (backend == "indexed" if backend not in (None, "auto")
                       else self._choice.backend == "indexed")
        if use_indexed:
            executor = self._ensure_batch_index()
            served = "indexed"
            engine_name = "batch-index[flat]"
            call = lambda: executor.search_many(  # noqa: E731
                query_list, k, runner=self._runner, deadline=deadline)
        else:
            searcher = self._ensure_batch_searcher()
            executor = searcher.executor
            served = "compiled"
            engine_name = searcher.name
            call = lambda: searcher.search_many(  # noqa: E731
                query_list, k, runner=self._runner, deadline=deadline)
        return self._observed_call(
            component=executor,
            backend=served,
            engine_name=engine_name,
            mode=mode,
            queries=len(query_list),
            k=k,
            call=call,
            batch_executor=executor,
        )

    def run_workload(self, workload: Workload | SearchRequest, *,
                     deadline: Deadline | Budget | None = None,
                     report: bool = False):
        """Execute a workload through the configured runner.

        With ``report=True`` returns ``(results, SearchReport)``; the
        report's mode is ``"workload"``. Accepts a
        :class:`SearchRequest` (built with
        :meth:`SearchRequest.from_workload`) in place of a workload.
        With a ``deadline`` the workload routes through the batch
        engine serially so expiry has a well-defined abort point.
        """
        if isinstance(workload, SearchRequest):
            request = self._to_request(workload, None, deadline=deadline,
                                       report=report)
            run = Workload(queries=request.queries, k=request.k)
        else:
            request = SearchRequest.from_workload(
                workload, deadline=deadline,
                options=SearchOptions(report=report),
            )
            run = workload
        if request.deadline is not None:
            results = self._execute_batch(request, mode="workload")
            if request.options.report:
                return results, self.last_report
            return results
        component = self._searcher
        queries = request.queries
        k = request.k
        results = self._observed_call(
            component=component,
            backend=self._choice.backend,
            engine_name=getattr(component, "name", self._choice.backend),
            mode="workload",
            queries=len(queries),
            k=k,
            call=lambda: component.run_workload(run, self._runner),
            batch_executor=getattr(component, "executor", None),
        )
        if request.options.report:
            return results, self.last_report
        return results

    def timed_workload(self, workload: Workload) -> tuple[ResultSet, float]:
        """Execute a workload and report (results, elapsed seconds).

        Times only query execution, like the paper (index build happened
        in the constructor). The same window is what
        :attr:`last_report` records as ``seconds``.
        """
        results = self.run_workload(workload)
        assert self._last_call is not None
        return results, self._last_call["seconds"]
