"""Updatable search: inserts and deletes over a compressed index.

The paper builds its indexes once over static competition files; a
production deployment also needs updates. The compressed trie cannot
absorb inserts (radix merging is a batch construction), so this module
wraps the classic *main + delta* design database engines use:

* a **main** compressed trie over the bulk of the data,
* a **delta** uncompressed :class:`PrefixTrie` absorbing inserts
  (cheap: the plain trie supports incremental insertion natively),
* a **tombstone** multiset recording deletes,
* automatic **merge**: when the delta outgrows ``merge_threshold``
  (fraction of the main size), everything is rebuilt into a fresh
  main index.

Queries consult both structures and subtract tombstones, so results
are always exactly those of a scratch-built index over the current
multiset — the invariant the tests enforce.
"""

from __future__ import annotations

import warnings
from collections import Counter
from typing import Iterable

from repro.core.result import Match
from repro.core.searcher import Searcher
from repro.distance.banded import check_threshold
from repro.exceptions import ReproError
from repro.index.compressed import CompressedTrie
from repro.index.traversal import trie_similarity_search
from repro.index.trie import PrefixTrie

#: The message every :class:`UpdatableIndex` construction warns with.
#: Tests assert the exact text (mirroring the ``backend=`` -> ``plan=``
#: migration), so user-facing guidance cannot silently rot.
UPDATABLE_DEPRECATION = (
    "UpdatableIndex is deprecated and will be removed in 2.0; build a "
    "mutable corpus with repro.live.Corpus.live(...) instead — the "
    "LSM write path (memtable + compiled segments + tombstone "
    "compaction) behind the unified Corpus facade"
)


class UpdatableIndex(Searcher):
    """A similarity index supporting insert/remove between queries.

    .. deprecated::
        Slated for removal in 2.0. The live-corpus write path
        (:meth:`repro.live.Corpus.live`) supersedes this main+delta
        shim: same insert/delete/tombstone semantics, but over the
        compiled segment engines, with compaction, persistence,
        deadline fan-out and epoch-driven cache/planner invalidation.
        Constructing one warns with :data:`UPDATABLE_DEPRECATION`.

    Parameters
    ----------
    strings:
        Initial contents.
    merge_threshold:
        Rebuild the main index once the delta holds more than this
        fraction of the main's strings (default 0.25).

    Examples
    --------
    >>> index = UpdatableIndex(["Bern", "Ulm"])
    >>> index.insert("Berlin")
    >>> index.remove("Ulm")
    >>> [m.string for m in index.search("Bern", 2)]
    ['Berlin', 'Bern']
    """

    name = "updatable-index"

    def __init__(self, strings: Iterable[str] = (), *,
                 merge_threshold: float = 0.25) -> None:
        warnings.warn(UPDATABLE_DEPRECATION, DeprecationWarning,
                      stacklevel=2)
        if not 0.0 < merge_threshold <= 1.0:
            raise ReproError(
                f"merge_threshold must be in (0, 1], got {merge_threshold}"
            )
        self._merge_threshold = merge_threshold
        self._contents: Counter[str] = Counter()
        for string in strings:
            if not string:
                raise ReproError("cannot index an empty string")
            self._contents[string] += 1
        self._main = CompressedTrie(self._expanded())
        self._delta = PrefixTrie()
        self._tombstones: Counter[str] = Counter()
        self.merges = 0

    def _expanded(self) -> list[str]:
        return [
            string
            for string, multiplicity in sorted(self._contents.items())
            for _ in range(multiplicity)
        ]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, string: str) -> None:
        """Add one string (duplicates accumulate)."""
        if not string:
            raise ReproError("cannot index an empty string")
        self._contents[string] += 1
        # An insert first cancels a pending tombstone for the same
        # string, keeping delta/tombstones minimal.
        if self._tombstones[string] > 0:
            self._tombstones[string] -= 1
            if self._tombstones[string] == 0:
                del self._tombstones[string]
        else:
            self._delta.insert(string)
        self._maybe_merge()

    def remove(self, string: str) -> None:
        """Remove one occurrence of ``string``.

        Raises
        ------
        ReproError
            If the string is not currently in the index.
        """
        if self._contents.get(string, 0) <= 0:
            raise ReproError(f"{string!r} is not in the index")
        self._contents[string] -= 1
        if self._contents[string] == 0:
            del self._contents[string]
        # Prefer cancelling a delta copy; otherwise tombstone the main.
        if self._delta.count(string) > 0:
            # The plain trie has no removal; rebuild the (small) delta.
            survivors = [
                s
                for s, multiplicity in self._delta.iter_with_counts()
                for _ in range(
                    multiplicity - (1 if s == string else 0)
                )
            ]
            self._delta = PrefixTrie(survivors)
        else:
            self._tombstones[string] += 1
        self._maybe_merge()

    def _maybe_merge(self) -> None:
        churn = self._delta.string_count + sum(self._tombstones.values())
        if churn > max(8, self._merge_threshold * self._main.string_count):
            self._main = CompressedTrie(self._expanded())
            self._delta = PrefixTrie()
            self._tombstones = Counter()
            self.merges += 1

    def merge(self) -> None:
        """Force a rebuild of the main index right now."""
        self._main = CompressedTrie(self._expanded())
        self._delta = PrefixTrie()
        self._tombstones = Counter()
        self.merges += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(self._contents.values())

    def __contains__(self, string: str) -> bool:
        return self._contents.get(string, 0) > 0

    def count(self, string: str) -> int:
        """Multiplicity of ``string`` in the current contents."""
        return self._contents.get(string, 0)

    @property
    def delta_size(self) -> int:
        """Strings waiting in the delta trie."""
        return self._delta.string_count

    @property
    def tombstone_count(self) -> int:
        """Pending deletes against the main index."""
        return sum(self._tombstones.values())

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, query: str, k: int) -> list[Match]:
        """All current strings within distance ``k``, sorted."""
        check_threshold(k)
        found: dict[str, int] = {}
        for match in trie_similarity_search(self._main, query, k):
            found[match.string] = match.distance
        for match in trie_similarity_search(self._delta, query, k):
            found[match.string] = match.distance
        return sorted(
            Match(string, distance)
            for string, distance in found.items()
            if self._contents.get(string, 0) > 0
        )
