"""Deadlines and work budgets: bounding how long a query may run.

Every hot path in the library — the sequential scan, the compiled
batch scan, the object-trie traversal and the flat-trie descent — can
run unboundedly long on adversarial inputs (a DNA read at ``k=16``
visits most of the trie). The service layer (:mod:`repro.service`)
needs to cap that, so each hot path accepts an optional *deadline*
object and polls it **amortized**: once every
:attr:`Deadline.check_interval` work units (corpus candidates, trie
nodes), never per symbol. With no deadline set the hot paths pay one
falsy branch per unit at most, which keeps them inside the engine's
existing <5% overhead guard.

Two implementations share the one-method protocol ``spend(units) ->
bool`` (``True`` means "stop now"):

:class:`Deadline`
    Wall-clock: expires when ``time.monotonic()`` passes the limit.
    What production callers use.
:class:`Budget`
    Work-unit count: expires after a fixed number of units have been
    spent. Deterministic, so tests (and simulations) can force a
    partial result at an exact point without depending on machine
    speed.

When a poll returns ``True`` the path raises
:class:`repro.exceptions.DeadlineExceeded` carrying the partial,
well-labeled results it had proven so far.
"""

from __future__ import annotations

import time

from repro.exceptions import ReproError

#: Work units (candidates scanned / trie nodes visited) between two
#: deadline polls. Polling costs one ``time.monotonic()`` call; at this
#: interval the amortized cost is far below the 5% overhead budget
#: while still bounding overshoot to a sub-millisecond slice of work.
DEFAULT_CHECK_INTERVAL = 256


class Deadline:
    """A wall-clock time limit, polled cheaply from hot loops.

    Parameters
    ----------
    seconds:
        Time allowed from *now* (``time.monotonic()``) until expiry.
        Must be non-negative; ``0`` is legal and expires immediately
        (useful for probing the partial-result machinery).
    check_interval:
        How many work units a hot path processes between polls.

    Examples
    --------
    >>> deadline = Deadline(60.0)
    >>> deadline.expired()
    False
    >>> deadline.remaining() <= 60.0
    True
    >>> Deadline(0.0).expired()
    True
    """

    __slots__ = ("expires_at", "check_interval")

    def __init__(self, seconds: float, *,
                 check_interval: int = DEFAULT_CHECK_INTERVAL) -> None:
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise ReproError(
                f"deadline seconds must be a non-negative number, "
                f"got {seconds!r}"
            )
        if check_interval < 1:
            raise ReproError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        self.expires_at = time.monotonic() + seconds
        self.check_interval = check_interval

    @classmethod
    def after(cls, seconds: float, *,
              check_interval: int = DEFAULT_CHECK_INTERVAL) -> "Deadline":
        """Alias constructor reading naturally: ``Deadline.after(0.05)``."""
        return cls(seconds, check_interval=check_interval)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once past it)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the wall clock has passed the limit."""
        return time.monotonic() >= self.expires_at

    def spend(self, units: int) -> bool:
        """Poll hook for hot paths; ``units`` is ignored (time-based)."""
        return time.monotonic() >= self.expires_at

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.4f}s)"


class Budget:
    """A deterministic work-unit budget with the deadline protocol.

    Hot paths charge it through the same amortized ``spend(units)``
    polls they use for :class:`Deadline`, so a test can force "the scan
    aborted after ~1000 candidates" exactly, on any machine. Because
    polls happen every ``check_interval`` units, expiry resolution is
    one interval.

    Examples
    --------
    >>> budget = Budget(100, check_interval=50)
    >>> budget.spend(50)
    False
    >>> budget.spend(50)
    True
    >>> budget.exhausted()
    True
    """

    __slots__ = ("limit", "spent", "check_interval")

    def __init__(self, limit: int, *,
                 check_interval: int = DEFAULT_CHECK_INTERVAL) -> None:
        if not isinstance(limit, int) or isinstance(limit, bool) \
                or limit < 0:
            raise ReproError(
                f"budget limit must be a non-negative integer, "
                f"got {limit!r}"
            )
        if check_interval < 1:
            raise ReproError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        self.limit = limit
        self.spent = 0
        self.check_interval = check_interval

    def remaining(self) -> float:
        """Units left before exhaustion (never negative)."""
        return max(0, self.limit - self.spent)

    def exhausted(self) -> bool:
        """Whether the budget has been used up."""
        return self.spent >= self.limit

    def expired(self) -> bool:
        """Deadline-protocol alias for :meth:`exhausted`."""
        return self.spent >= self.limit

    def spend(self, units: int) -> bool:
        """Charge ``units``; ``True`` once the budget is used up."""
        self.spent += units
        return self.spent >= self.limit

    def __repr__(self) -> str:
        return f"Budget(spent={self.spent}, limit={self.limit})"
