"""Match explanation: why a pair matched (or didn't), step by step.

Debugging a similarity pipeline means answering "which component made
this decision?". :func:`explain_pair` traces one (query, candidate, k)
triple through every layer — the length filter, the frequency and
q-gram bounds, kernel dispatch, the distance itself and the edit
script — and returns a structured, printable account.

The *plan-level* counterpart — "which execution strategy would serve
this request, and why?" — lives in :mod:`repro.core.planner` and is
re-exported here: :class:`QueryPlan` (``SearchEngine.explain()``'s
return value) extends this module's explanation surface from one pair
to one request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Plan-level EXPLAIN surface (re-exported; see the module docstring).
from repro.core.planner import (  # noqa: F401
    CostEstimate,
    PlannerPolicy,
    QueryPlan,
    validate_plan,
)
from repro.distance.alignment import edit_script
from repro.distance.banded import check_threshold, length_filter_passes
from repro.distance.dispatch import best_kernel, explain_kernel
from repro.distance.levenshtein import edit_distance
from repro.filters.frequency import frequency_lower_bound, frequency_vector
from repro.filters.qgram import qgram_overlap, qgram_profile, required_overlap


@dataclass(frozen=True)
class PairExplanation:
    """The full account of one comparison.

    Attributes
    ----------
    query / candidate / k:
        The inputs.
    matched:
        The verdict: ``edit_distance(query, candidate) <= k``.
    distance:
        The exact edit distance (always computed — this is a debugging
        tool, not a fast path).
    length_filter:
        Did the pair survive equation 5?
    frequency_bound:
        The vowel-vector lower bound (AEIOU, case-folded) and whether
        it alone would have rejected the pair.
    qgram_bound:
        Shared bigrams, the required count, and whether the count
        filter would have rejected the pair.
    kernel:
        Which kernel :func:`repro.distance.dispatch.best_kernel` would
        pick, with its rationale.
    script:
        The edit operations transforming query into candidate (empty
        for exact matches).
    """

    query: str
    candidate: str
    k: int
    matched: bool
    distance: int
    length_filter: bool
    frequency_bound: tuple[int, bool]
    qgram_bound: tuple[int, int, bool]
    kernel: str
    script: tuple[str, ...] = field(default_factory=tuple)

    def render(self) -> str:
        """Human-readable multi-line account."""
        verdict = "MATCH" if self.matched else "NO MATCH"
        freq_bound, freq_rejects = self.frequency_bound
        shared, needed, qgram_rejects = self.qgram_bound
        lines = [
            f"{self.query!r} vs {self.candidate!r} at k={self.k}: "
            f"{verdict} (distance {self.distance})",
            f"  length filter:    "
            f"{'pass' if self.length_filter else 'REJECT'} "
            f"(|{len(self.query)} - {len(self.candidate)}| "
            f"{'<=' if self.length_filter else '>'} {self.k})",
            f"  frequency bound:  {freq_bound} "
            f"({'REJECT' if freq_rejects else 'pass'}, vowels AEIOU)",
            f"  q-gram bound:     {shared} shared bigrams, "
            f"{needed} required "
            f"({'REJECT' if qgram_rejects else 'pass'})",
            f"  kernel dispatch:  {self.kernel}",
        ]
        if self.script:
            lines.append("  edit script:")
            lines.extend(f"    {step}" for step in self.script)
        elif self.matched:
            lines.append("  edit script:      (exact match)")
        return "\n".join(lines)


def explain_pair(query: str, candidate: str, k: int) -> PairExplanation:
    """Trace one comparison through every decision layer.

    Examples
    --------
    >>> explanation = explain_pair("Bern", "Berlin", 2)
    >>> explanation.matched
    True
    >>> explanation.distance
    2
    >>> "insert" in explanation.script[0]
    True
    """
    check_threshold(k)
    distance = edit_distance(query, candidate)
    matched = distance <= k

    survives_length = length_filter_passes(len(query), len(candidate), k)

    query_vector = frequency_vector(query, "AEIOU")
    candidate_vector = frequency_vector(candidate, "AEIOU")
    freq_bound = frequency_lower_bound(query_vector, candidate_vector)

    shared = qgram_overlap(qgram_profile(query, 2),
                           qgram_profile(candidate, 2))
    needed = required_overlap(len(query), len(candidate), 2, k)
    qgram_rejects = needed > 0 and shared < needed

    script = tuple(edit_script(query, candidate)) if matched else ()
    return PairExplanation(
        query=query,
        candidate=candidate,
        k=k,
        matched=matched,
        distance=distance,
        length_filter=survives_length,
        frequency_bound=(freq_bound, freq_bound > k),
        qgram_bound=(shared, max(0, needed), qgram_rejects),
        kernel=explain_kernel(len(query), max(len(candidate), 1), k)
        if (query or candidate) else str(best_kernel(1, 1, k).value),
        script=script,
    )
