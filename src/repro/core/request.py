"""The unified request surface: ``SearchRequest`` and ``SearchOptions``.

Before this layer, every entry point had a slightly different calling
convention: ``SearchEngine.search(query, k, report=...)``,
``search_many(queries, k, backend=..., report=...)``,
``run_workload(workload, report=...)``, and each raw searcher its own
positional spelling. :class:`SearchRequest` is the one value that can
be handed to any of them — engine methods, the batch executors'
adapters and :meth:`repro.service.Service.submit` — so callers build a
request once and route it anywhere.

Legacy ↔ request mapping (the documented compatibility table; the old
kwarg spellings keep working unchanged):

======================================  ===========================
Legacy spelling                         Request field
======================================  ===========================
``search(query, k)``                    ``query``, ``k``
``search_many(queries, k)``             ``query`` (a sequence), ``k``
``run_workload(workload)``              ``SearchRequest.from_workload``
``search_many(..., backend="...")``     ``backend``
``search(..., deadline=...)``           ``deadline``
``search(..., report=True)``            ``options.report``
``Service.submit(..., allow_partial=)`` ``options.allow_partial``
======================================  ===========================

Passing both a :class:`SearchRequest` and a conflicting legacy kwarg is
an error (no silent behavior change): a request is self-contained, so
``engine.search(request, 3)`` raises rather than guessing which ``k``
was meant.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.deadline import Budget, Deadline
from repro.core.planner import AUTO_POLICY, STRATEGIES, PlannerPolicy
from repro.distance.banded import check_threshold
from repro.exceptions import ReproError

#: Message of the ``backend=`` string-hint deprecation shim (kept in
#: one place so the message-text tests and every entry point agree).
BACKEND_DEPRECATION = (
    "per-call backend= string hints are deprecated and will be removed "
    "in 2.0; pass plan=PlannerPolicy(strategy=...) (or plan="
    "PlannerPolicy() for the planner's choice) instead"
)


@dataclass(frozen=True)
class SearchOptions:
    """Cross-cutting execution options, identical for every backend.

    Attributes
    ----------
    report:
        Return ``(results, SearchReport)`` instead of bare results
        (engine entry points only).
    allow_partial:
        Service-level: when the degradation ladder is exhausted,
        return the best partial :class:`repro.service.ServiceResult`
        instead of raising :class:`repro.exceptions.PartialResultError`.
    use_frequency:
        Apply the (sound) frequency prefilters; disabling isolates
        their effect in ablations. Honored by paths that have them.
    """

    report: bool = False
    allow_partial: bool = True
    use_frequency: bool = True


#: Shared default so request construction allocates nothing extra.
DEFAULT_OPTIONS = SearchOptions()


@dataclass(frozen=True, eq=False)
class SearchRequest:
    """One similarity query (or batch of queries), fully described.

    Attributes
    ----------
    query:
        A single query string, or a tuple of query strings for batch
        entry points (``search_many`` / ``run_workload``).
    k:
        The edit-distance threshold (validated at construction).
    deadline:
        Optional :class:`repro.core.deadline.Deadline` (wall-clock) or
        :class:`repro.core.deadline.Budget` (work units). ``None``
        means unbounded — results are exact and byte-identical to the
        pre-deadline code paths.
    backend:
        Deprecated string spelling of ``plan`` (``"auto"``,
        ``"sequential"``, ``"indexed"``, ``"compiled"`` or
        ``"qgram"``). A non-``None`` value warns and folds into
        ``plan`` (the field itself is then reset to ``None``); slated
        for removal in 2.0.
    plan:
        Optional :class:`repro.core.planner.PlannerPolicy`: force one
        execution strategy, restrict the planner's choice, or (the
        default) let the calibrated cost model decide.
    options:
        A :class:`SearchOptions` value.

    Equality and hashing are **canonical**: two requests are equal when
    they describe the same question, regardless of how they were
    spelled. Concretely, :meth:`canonical_key` normalizes the policy
    (``None``, an all-default :class:`PlannerPolicy` and the legacy
    ``backend="auto"`` all mean "you pick") and compares options by
    value (an explicitly passed all-default :class:`SearchOptions`
    equals an omitted one), and the ``deadline`` is **excluded** — it
    is execution context (how long *this* attempt may run), not part
    of the question's identity. That is what lets result-cache keys
    (:mod:`repro.traffic.cache`) and batch-dedup agree on which
    requests are "the same query".

    Examples
    --------
    >>> request = SearchRequest("Berlino", 2)
    >>> request.k
    2
    >>> batch = SearchRequest(("Bern", "Ulm"), 1)
    >>> batch.queries
    ('Bern', 'Ulm')
    >>> batch.is_batch
    True
    >>> SearchRequest("Bern", 1) == SearchRequest(
    ...     "Bern", 1, plan=PlannerPolicy(), options=SearchOptions())
    True
    >>> SearchRequest("Bern", 1, plan=PlannerPolicy(
    ...     strategy="compiled")).policy.strategy
    'compiled'
    """

    query: str | tuple[str, ...]
    k: int
    deadline: Deadline | Budget | None = None
    backend: str | None = None
    options: SearchOptions = field(default=DEFAULT_OPTIONS)
    plan: PlannerPolicy | None = None

    def __post_init__(self) -> None:
        check_threshold(self.k)
        if not isinstance(self.query, str):
            object.__setattr__(self, "query", tuple(self.query))
            for item in self.query:
                if not isinstance(item, str):
                    raise ReproError(
                        f"batch request queries must be strings, "
                        f"got {item!r}"
                    )
        if self.backend is not None:
            if self.backend not in ("auto",) + STRATEGIES:
                raise ReproError(
                    f"unknown backend {self.backend!r}; expected "
                    f"'auto' or one of {STRATEGIES}"
                )
            if self.plan is not None:
                raise ReproError(
                    "pass either the deprecated backend= string or "
                    "plan=PlannerPolicy(...), not both"
                )
            warnings.warn(BACKEND_DEPRECATION, DeprecationWarning,
                          stacklevel=3)
            object.__setattr__(
                self, "plan", PlannerPolicy.from_backend(self.backend))
            object.__setattr__(self, "backend", None)

    @property
    def policy(self) -> PlannerPolicy:
        """The effective :class:`PlannerPolicy` (never ``None``)."""
        return self.plan if self.plan is not None else AUTO_POLICY

    def canonical_key(self) -> tuple:
        """The request's identity, normalized (see the class docstring).

        ``(query, k, policy, options)`` with an all-default policy
        (and the legacy ``backend="auto"``) folded to ``None`` and the
        deadline left out. Stable across spelling variants, so it is
        safe as a cache or dedup key.
        """
        policy = self.plan if self.plan not in (None, AUTO_POLICY) \
            else None
        return (self.query, self.k, policy, self.options)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SearchRequest):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    @property
    def is_batch(self) -> bool:
        """Whether this request carries multiple queries."""
        return not isinstance(self.query, str)

    @property
    def queries(self) -> tuple[str, ...]:
        """The queries as a tuple (singleton for a single query)."""
        if isinstance(self.query, str):
            return (self.query,)
        return self.query

    @classmethod
    def from_workload(cls, workload, *,
                      deadline: Deadline | Budget | None = None,
                      backend: str | None = None,
                      options: SearchOptions = DEFAULT_OPTIONS,
                      plan: PlannerPolicy | None = None,
                      ) -> "SearchRequest":
        """A batch request over a :class:`repro.data.workload.Workload`."""
        return cls(tuple(workload.queries), workload.k,
                   deadline=deadline, backend=backend, options=options,
                   plan=plan)

    def with_options(self, **changes) -> "SearchRequest":
        """A copy with :class:`SearchOptions` fields replaced."""
        return replace(self, options=replace(self.options, **changes))


def as_request(query, k: int | None = None, *,
               deadline: Deadline | Budget | None = None,
               backend: str | None = None,
               options: SearchOptions | None = None,
               plan: PlannerPolicy | None = None,
               batch: bool = False) -> SearchRequest:
    """Normalize the legacy positional form or a request into a request.

    The single adapter every entry point routes through. ``query`` may
    be a :class:`SearchRequest` (then every legacy argument must be
    left at its default — conflicts raise, never silently lose) or the
    legacy ``query``/``queries`` value, combined with ``k`` and the
    keyword arguments per the mapping in the module docstring.
    ``batch`` wraps a non-request ``query`` as a batch of queries.
    A ``backend`` string is the deprecated spelling of ``plan``.
    """
    if isinstance(query, SearchRequest):
        if k is not None:
            raise ReproError(
                "pass k inside the SearchRequest, not alongside it"
            )
        for name, value in (("deadline", deadline), ("backend", backend),
                            ("options", options), ("plan", plan)):
            if value is not None:
                raise ReproError(
                    f"pass {name} inside the SearchRequest, not "
                    "alongside it"
                )
        return query
    if k is None:
        raise ReproError(
            "k is required unless a SearchRequest is passed"
        )
    if batch and isinstance(query, str):
        raise ReproError(
            "batch entry points take a sequence of queries; pass a "
            "list/tuple of strings (or a SearchRequest)"
        )
    if batch:
        query = tuple(query)
    return SearchRequest(
        query, k, deadline=deadline, backend=backend,
        options=options if options is not None else DEFAULT_OPTIONS,
        plan=plan,
    )


def _normalize_batch(queries: Sequence[str] | SearchRequest):
    """Back-compat helper for executor adapters (queries or request)."""
    if isinstance(queries, SearchRequest):
        return list(queries.queries), queries
    return list(queries), None
