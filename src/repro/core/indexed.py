"""The index-based solution (paper section 4), stages configurable.

Four index configurations back the paper's ladder (Figure 5) and its
compiled extension:

===================  =====================================================
Paper stage          Configuration
===================  =====================================================
1 base               ``index="trie"`` — annotated prefix tree
2 compression        ``index="compressed"`` — radix-merged tree
3 managed threads    pass a pool/adaptive runner to the workload
beyond the paper     ``index="flat"`` — the compressed tree frozen into
                     flat arrays (:mod:`repro.index.flat`), descended
                     iteratively without per-node object overhead
===================  =====================================================

Beyond the paper, the same searcher fronts every other structure in the
library — ``"qgram"`` (inverted q-gram lists), ``"dawg"`` (minimal
acyclic DFA), ``"bktree"`` (metric-space tree) and ``"automaton"``
(trie × Levenshtein automaton) — and ``frequency_pruning=True`` adds
PETER-style node vectors to the trie kinds (the section-6 future-work
item). All kinds return identical results; only the work profile
changes.
"""

from __future__ import annotations

import threading
import warnings
from time import perf_counter
from typing import Callable, Iterable

from repro.core.deadline import Budget, Deadline
from repro.core.result import Match
from repro.core.searcher import Searcher
from repro.distance.banded import check_threshold
from repro.exceptions import DeadlineExceeded, ReproError
from repro.index.automaton import automaton_trie_search
from repro.index.bktree import bktree_from
from repro.index.compressed import CompressedTrie
from repro.index.dawg import Dawg
from repro.index.flat import FlatTrie, flat_similarity_search
from repro.index.qgram_index import QGramIndex
from repro.index.traversal import (
    TraversalStats,
    TrieMatch,
    trie_similarity_search,
)
from repro.index.trie import PrefixTrie
from repro.obs.hist import Histogram
from repro.obs.recorder import QueryExemplar

#: Index configurations; the first two are the paper's, ``flat`` is
#: their compiled form.
INDEX_KINDS = ("trie", "compressed", "flat", "qgram", "dawg", "bktree",
               "automaton")

#: Kinds that support PETER-style frequency pruning.
_FREQUENCY_CAPABLE = ("trie", "compressed", "flat")

#: Counter names this searcher reports (dotted ``trie.*`` namespace of
#: the observability layer; see docs/OBSERVABILITY.md). Cumulative
#: sums of the per-call :class:`TraversalStats` fields.
INDEX_COUNTERS = (
    "trie.searches",
    "trie.nodes_visited",
    "trie.symbols_processed",
    "trie.branches_pruned_by_length",
    "trie.branches_pruned_by_frequency",
    "trie.matches",
)

#: Histogram names this searcher records, once per completed search.
INDEX_HISTOGRAMS = (
    "trie.query_seconds",
    "trie.nodes_per_query",
    "trie.symbols_per_query",
)


class IndexedSearcher(Searcher):
    """Similarity search through a prebuilt index.

    Parameters
    ----------
    dataset:
        Strings to index. Build cost is paid here, in the constructor —
        the paper's timing window covers only query execution, and the
        benchmark harness follows suit.
    index:
        One of :data:`INDEX_KINDS`.
    frequency_pruning:
        Track per-node symbol-count bounds for ``tracked_symbols`` and
        prune branches with them (trie kinds only).
    tracked_symbols:
        Symbols for frequency pruning; required when it is enabled.
    q:
        Gram length for the q-gram index.

    Examples
    --------
    >>> searcher = IndexedSearcher(["Berlin", "Bern", "Ulm"],
    ...                            index="compressed")
    >>> [match.string for match in searcher.search("Berlino", 2)]
    ['Berlin']
    >>> IndexedSearcher(["Berlin"], index="dawg").search("Berlin", 0)
    [Match(string='Berlin', distance=0)]
    """

    def __init__(self, dataset: Iterable[str], *,
                 index: str = "compressed",
                 frequency_pruning: bool = False,
                 tracked_symbols: str | None = None,
                 q: int = 2) -> None:
        if index not in INDEX_KINDS:
            raise ReproError(
                f"unknown index {index!r}; expected one of {INDEX_KINDS}"
            )
        if frequency_pruning and tracked_symbols is None:
            raise ReproError(
                "frequency_pruning requires tracked_symbols "
                "(e.g. 'ACGNT' for DNA, 'AEIOU' for city names)"
            )
        if frequency_pruning and index not in _FREQUENCY_CAPABLE:
            raise ReproError(
                "frequency_pruning applies to trie indexes only "
                f"({', '.join(_FREQUENCY_CAPABLE)}), not {index!r}"
            )
        strings = tuple(dataset)
        self._kind = index
        self._frequency_pruning = frequency_pruning
        self.name = f"indexed[{index}]"
        if frequency_pruning:
            self.name += "+freq"
        self._last_stats: TraversalStats | None = None
        self._node_count = 0
        self._flat_trie: FlatTrie | None = None
        # DP row scratch for the flat path, reused across queries but
        # never across threads: services cache one searcher per shard
        # and run concurrent submits through it, and a shared bank
        # would let two in-flight searches corrupt each other's rows.
        self._row_banks = threading.local()
        # Cumulative work counters (trie.* namespace), flushed once per
        # search under the lock so parallel runners sharing this
        # searcher aggregate correctly.
        self._counters = dict.fromkeys(INDEX_COUNTERS, 0)
        self._hists = {name: Histogram() for name in INDEX_HISTOGRAMS}
        self._counters_lock = threading.Lock()
        self._metrics = None
        self._recorder = None
        self._search_fn = self._build(strings, index, frequency_pruning,
                                      tracked_symbols, q)

    def _build(self, strings: tuple[str, ...], index: str,
               frequency_pruning: bool, tracked_symbols: str | None,
               q: int) -> Callable[..., list[TrieMatch]]:
        tracked = tracked_symbols if frequency_pruning else None
        if index in ("trie", "compressed"):
            structure: PrefixTrie | CompressedTrie
            if index == "trie":
                structure = PrefixTrie(strings, tracked_symbols=tracked)
            else:
                structure = CompressedTrie(strings,
                                           tracked_symbols=tracked)
            self._node_count = structure.node_count

            def search(query: str, k: int,
                       deadline=None) -> list[TrieMatch]:
                stats = TraversalStats()
                try:
                    matches = trie_similarity_search(
                        structure, query, k,
                        use_frequency_pruning=frequency_pruning,
                        stats=stats,
                        deadline=deadline,
                    )
                except DeadlineExceeded:
                    self._record(stats)
                    raise
                self._record(stats)
                return matches

            return search
        if index == "flat":
            flat = FlatTrie(strings, compress=True,
                            tracked_symbols=tracked)
            self._flat_trie = flat
            self._node_count = flat.node_count

            def search(query: str, k: int,
                       deadline=None) -> list[TrieMatch]:
                stats = TraversalStats()
                try:
                    matches = flat_similarity_search(
                        flat, query, k,
                        use_frequency_pruning=frequency_pruning,
                        stats=stats,
                        row_bank=self._thread_row_bank(),
                        deadline=deadline,
                    )
                except DeadlineExceeded:
                    self._record(stats)
                    raise
                self._record(stats)
                return matches

            return search
        if index == "automaton":
            trie = CompressedTrie(strings)
            self._node_count = trie.node_count

            def search(query: str, k: int,
                       deadline=None) -> list[TrieMatch]:
                self._reject_deadline(deadline)
                stats = TraversalStats()
                matches = automaton_trie_search(trie, query, k,
                                                stats=stats)
                self._record(stats)
                return matches

            return search
        if index == "dawg":
            dawg = Dawg(strings)
            self._node_count = dawg.node_count

            def search(query: str, k: int,
                       deadline=None) -> list[TrieMatch]:
                self._reject_deadline(deadline)
                stats = TraversalStats()
                matches = dawg.search(query, k, stats=stats)
                self._record(stats)
                return matches

            return search
        if index == "bktree":
            tree = bktree_from(list(strings))

            def search(query: str, k: int,
                       deadline=None) -> list[TrieMatch]:
                self._reject_deadline(deadline)
                before = tree.distance_computations
                matches = tree.search(query, k)
                self._record(TraversalStats(
                    nodes_visited=tree.distance_computations - before,
                    matches=len(matches),
                ))
                return matches

            return search
        qgram = QGramIndex(strings, q=q)

        def search(query: str, k: int,
                   deadline=None) -> list[TrieMatch]:
            self._reject_deadline(deadline)
            matches = qgram.search(query, k)
            self._record(TraversalStats(matches=len(matches)))
            return matches

        return search

    def _thread_row_bank(self) -> list:
        """This thread's DP row scratch (created on first use)."""
        bank = getattr(self._row_banks, "bank", None)
        if bank is None:
            bank = []
            self._row_banks.bank = bank
        return bank

    def _reject_deadline(self, deadline) -> None:
        """Refuse a deadline on index kinds that cannot honor one."""
        if deadline is not None:
            raise ReproError(
                f"index kind {self._kind!r} does not support deadlines; "
                "use one of the trie kinds "
                f"({', '.join(_FREQUENCY_CAPABLE)}) or the sequential/"
                "compiled backends"
            )

    def _record(self, stats: TraversalStats) -> None:
        """Publish one call's traversal stats and roll them into totals."""
        self._last_stats = stats
        with self._counters_lock:
            counters = self._counters
            counters["trie.searches"] += 1
            counters["trie.nodes_visited"] += stats.nodes_visited
            counters["trie.symbols_processed"] += stats.symbols_processed
            counters["trie.branches_pruned_by_length"] += \
                stats.branches_pruned_by_length
            counters["trie.branches_pruned_by_frequency"] += \
                stats.branches_pruned_by_frequency
            counters["trie.matches"] += stats.matches

    @property
    def kind(self) -> str:
        """The index variant in use."""
        return self._kind

    @property
    def node_count(self) -> int:
        """States in the underlying tree/automaton (0 where moot)."""
        return self._node_count

    @property
    def flat_trie(self) -> FlatTrie | None:
        """The compiled trie backing ``index="flat"`` (else ``None``).

        Exposed so the engine can put the same compiled structure on
        the batch path (:class:`repro.index.batch.BatchIndexExecutor`)
        without freezing it twice.
        """
        return self._flat_trie

    @property
    def last_stats(self) -> TraversalStats | None:
        """Deprecated: the previous call's raw :class:`TraversalStats`.

        .. deprecated::
            Slated for removal in 2.0. Use
            ``SearchEngine.search(..., report=True)`` /
            ``SearchEngine.last_report`` — the unified
            :class:`repro.obs.SearchReport` carries the same numbers as
            ``trie.*`` counters with one schema across all backends.
        """
        warnings.warn(
            "IndexedSearcher.last_stats is deprecated and will be "
            "removed in 2.0; use the SearchReport API "
            "(SearchEngine.search(..., report=True) or "
            "engine.last_report) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._last_stats

    def attach_metrics(self, registry) -> None:
        """Attach a :class:`repro.obs.MetricsRegistry` (or ``None``).

        With a registry attached, every :meth:`search` call records an
        ``index.search`` span; the always-on ``trie.*`` work counters
        are independent of this hook (see :meth:`counters_snapshot`).
        """
        self._metrics = registry

    def counters_snapshot(self) -> dict[str, int]:
        """Cumulative ``trie.*`` work counters since construction.

        Monotonic and thread-safe: callers diff two snapshots to carve
        out one call's work (what :class:`repro.core.engine.SearchEngine`
        does to build a :class:`repro.obs.SearchReport`).
        """
        with self._counters_lock:
            return dict(self._counters)

    def hists_snapshot(self) -> dict[str, Histogram]:
        """Cumulative per-query histograms since construction.

        Same contract as :meth:`counters_snapshot`: monotonic,
        thread-safe, and exact to delta (histogram state is bucketwise
        additive), so the engine carves out one call's distribution.
        """
        with self._counters_lock:
            return {name: hist.copy()
                    for name, hist in self._hists.items()}

    def attach_recorder(self, recorder) -> None:
        """Attach a :class:`repro.obs.FlightRecorder` (or ``None``).

        With a recorder attached, each completed search offers a
        :class:`repro.obs.QueryExemplar` carrying this search's
        traversal profile; the recorder's threshold decides retention.
        """
        self._recorder = recorder

    def _observe_query(self, query: str, k: int, seconds: float,
                       matches: int) -> None:
        """Record one completed search's histograms and exemplar."""
        stats = self._last_stats
        nodes = stats.nodes_visited if stats is not None else 0
        symbols = stats.symbols_processed if stats is not None else 0
        with self._counters_lock:
            hists = self._hists
            hists["trie.query_seconds"].record(seconds)
            hists["trie.nodes_per_query"].record(nodes)
            hists["trie.symbols_per_query"].record(symbols)
        recorder = self._recorder
        if recorder is not None and recorder.interested(seconds):
            recorder.record(QueryExemplar(
                query=query, k=k, backend=self.name, seconds=seconds,
                matches=matches, stages={"index.search": seconds},
                counters={
                    "trie.nodes_visited": nodes,
                    "trie.symbols_processed": symbols,
                },
            ))

    def search(self, query: str, k: int, *,
               deadline: Deadline | Budget | None = None) -> list[Match]:
        """All distinct dataset strings within distance ``k`` of ``query``.

        The traversal stats are reset at entry and filled by every
        kind, so the counters always describe *this* search — a failed
        or stats-less probe can never leak a previous search's numbers.

        With a ``deadline`` (trie kinds only), an expiring descent
        raises :class:`DeadlineExceeded` whose ``partial`` holds the
        verified :class:`Match` objects found before the cutoff.
        """
        check_threshold(k)
        self._last_stats = None
        metrics = self._metrics
        started = perf_counter()
        try:
            if metrics is not None:
                with metrics.trace("index.search"):
                    matches = [
                        Match(m.string, m.distance)
                        for m in self._search_fn(query, k, deadline)
                    ]
            else:
                matches = [
                    Match(m.string, m.distance)
                    for m in self._search_fn(query, k, deadline)
                ]
        except DeadlineExceeded as error:
            raise DeadlineExceeded(
                str(error),
                partial=tuple(Match(m.string, m.distance)
                              for m in error.partial),
                scope=error.scope, completed=error.completed,
                total=error.total,
            ) from error
        self._observe_query(query, k, perf_counter() - started,
                            len(matches))
        return matches
