"""Command-line interface: the paper's workflow as a tool.

The paper's programs read a data file and a query file and write the
matches to a result file (section 3.1). ``repro-search`` (also
``python -m repro``) exposes that workflow plus the supporting chores:

.. code-block:: console

    repro-search generate cities -n 10000 -o cities.txt
    repro-search generate dna -n 2000 -o reads.txt
    repro-search stats cities.txt
    repro-search search cities.txt queries.txt -k 2 -o results.txt
    repro-search distance AGGCGT AGAGT --matrix
    repro-search bench table03
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.core.deadline import Deadline
from repro.core.engine import SearchEngine
from repro.data.cities import generate_city_names
from repro.data.dna import generate_reads
from repro.data.io import read_queries, read_strings, write_strings
from repro.data.stats import describe
from repro.data.workload import Workload
from repro.distance.levenshtein import edit_distance
from repro.distance.matrix import DistanceMatrix
from repro.exceptions import (
    DeadlineExceeded,
    ReproError,
    ServiceOverloaded,
)
from repro.parallel.executor import (
    ProcessPoolRunner,
    SerialRunner,
    ThreadPoolRunner,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="String similarity search: optimized sequential scan "
                    "vs. prefix-tree index (EDBT/ICDT 2013 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser(
        "search", help="answer a query file against a data file",
    )
    search.add_argument("data_file", help="dataset, one string per line")
    search.add_argument("query_file", help="queries, one string per line")
    search.add_argument("-k", type=int, required=True,
                        help="edit-distance threshold")
    search.add_argument("-o", "--output", default=None,
                        help="result file (default: stdout)")
    search.add_argument("--backend", default="auto",
                        choices=("auto", "sequential", "indexed",
                                 "compiled"),
                        help="force a solution side (default: auto; "
                             "'indexed' is served by the compiled "
                             "flat trie)")
    search.add_argument("--runner", default="serial",
                        help="serial | threads:N | processes:N")
    search.add_argument("--batch", action="store_true",
                        help="answer the query file through the "
                             "matching compiled batch engine — the "
                             "corpus scan or the flat-trie index — "
                             "which dedupes repeated queries and "
                             "amortizes per-query setup; identical "
                             "results)")
    search.add_argument("--explain", action="store_true",
                        help="print the planner's EXPLAIN-style query "
                             "plan for this workload (per-strategy "
                             "cost estimates) and exit without "
                             "running any query; honours "
                             "--stats-format text|json")
    search.add_argument("--stats", action="store_true",
                        help="emit the run's SearchReport (work "
                             "counters, timings, batch dedup/memo "
                             "profile) after the results")
    search.add_argument("--stats-format", default="text",
                        choices=("text", "json", "prom"),
                        help="SearchReport rendering: human text, one "
                             "JSON document, or Prometheus text "
                             "exposition (implies --stats)")
    search.add_argument("--stats-output", default=None,
                        help="write the report there instead of "
                             "stderr (implies --stats)")
    search.add_argument("--slowlog", type=int, default=None,
                        metavar="N",
                        help="record every query on a flight recorder "
                             "and print the N slowest (per-stage "
                             "timings and work counters) to stderr "
                             "after the run")
    search.add_argument("--trace-out", default=None, metavar="FILE",
                        help="export the run's spans as Chrome/"
                             "Perfetto trace-event JSON to FILE (open "
                             "in chrome://tracing or ui.perfetto.dev); "
                             "implies span collection")
    search.add_argument("--events-out", default=None, metavar="FILE",
                        help="write the run's operational event log "
                             "(JSON lines: admission, ladder rungs, "
                             "flush/compaction, each with a trace_id "
                             "when traced) to FILE; events are emitted "
                             "by the service and live-corpus layers, "
                             "so this pairs with --service")
    search.add_argument("--telemetry-out", default=None, metavar="FILE",
                        help="sample gauges on a background "
                             "TelemetrySampler during the run and "
                             "write its JSON dump to FILE (render it "
                             "with `repro-search metrics FILE`)")
    search.add_argument("--deadline-ms", type=float, default=None,
                        help="wall-clock deadline in milliseconds — "
                             "per query with --service (the ladder "
                             "degrades), per run otherwise (on expiry "
                             "completed queries are written, the "
                             "truncation is reported on stderr, and "
                             "the exit code is 3)")
    search.add_argument("--segment", default=None, metavar="FILE",
                        help="mmap-load the compiled corpus from this "
                             "segment file (repro.speed format); if the "
                             "file does not exist it is compiled from "
                             "the data file and saved there first, so "
                             "every later start is near-instant; "
                             "implies --backend compiled")
    search.add_argument("--save-segment", default=None, metavar="FILE",
                        help="after the run, save the compiled corpus "
                             "to FILE as a zero-copy segment for later "
                             "--segment runs")
    search.add_argument("--service", action="store_true",
                        help="serve queries through the resilient "
                             "repro.service ladder (sharded corpus, "
                             "degradation on deadline expiry, honest "
                             "result labels)")
    search.add_argument("--shards", type=int, default=4,
                        help="service-mode corpus shard count "
                             "(default 4)")

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset",
    )
    generate.add_argument("kind", choices=("cities", "dna"))
    generate.add_argument("-n", "--count", type=int, required=True)
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--seed", type=int, default=2013)

    suggest = commands.add_parser(
        "suggest", help="top-k nearest strings for one query",
    )
    suggest.add_argument("data_file", help="dataset, one string per line")
    suggest.add_argument("query")
    suggest.add_argument("-n", "--count", type=int, default=5,
                         help="how many suggestions (default 5)")
    suggest.add_argument("--backend", default="auto",
                         choices=("auto", "sequential", "indexed"))

    complete = commands.add_parser(
        "complete", help="error-tolerant autocompletion for a prefix",
    )
    complete.add_argument("data_file", help="dataset, one string per line")
    complete.add_argument("prefix", help="what the user typed so far")
    complete.add_argument("-k", type=int, default=1,
                          help="typo budget for the prefix (default 1)")
    complete.add_argument("-n", "--count", type=int, default=10,
                          help="how many completions (default 10)")

    join = commands.add_parser(
        "join", help="similarity join two files (or self-join one)",
    )
    join.add_argument("left_file", help="left input, one string per line")
    join.add_argument("right_file", nargs="?", default=None,
                      help="right input; omit for a self-join")
    join.add_argument("-k", type=int, required=True,
                      help="edit-distance threshold")
    join.add_argument("-o", "--output", default=None,
                      help="result file (default: stdout)")
    join.add_argument("--method", default="auto",
                      choices=("auto", "scan", "index", "prefix"))

    stats = commands.add_parser(
        "stats", help="Table-I style dataset properties",
    )
    stats.add_argument("data_file")

    distance = commands.add_parser(
        "distance", help="edit distance of two strings",
    )
    distance.add_argument("x")
    distance.add_argument("y")
    distance.add_argument("--matrix", action="store_true",
                          help="print the DP matrix (paper Figure 1)")

    explain = commands.add_parser(
        "explain", help="trace one comparison through every layer, or "
                        "show the planner's strategy choice for a "
                        "query against a dataset",
    )
    explain.add_argument("query")
    explain.add_argument("candidate", nargs="?", default=None,
                         help="second string for a pairwise distance "
                              "trace; omit it (and pass --data) to "
                              "EXPLAIN the engine's query plan instead")
    explain.add_argument("-k", type=int, required=True)
    explain.add_argument("--data", default=None, metavar="FILE",
                         help="dataset to plan the query against "
                              "(query-plan mode)")
    explain.add_argument("--batch", action="store_true",
                         help="plan the query as a batch member "
                              "(scores only the batch executors)")
    explain.add_argument("--stats-format", default="text",
                         choices=("text", "json"),
                         help="plan rendering: human text or one JSON "
                              "document (query-plan mode)")

    live = commands.add_parser(
        "live", help="replay a mutation/query script against a live "
                     "(mutable, LSM-segmented) corpus",
    )
    live.add_argument("ops_file",
                      help="script, one operation per line: '+string' "
                           "inserts, '-string' deletes, '?query' "
                           "searches (blank lines and '#' comments "
                           "are skipped)")
    live.add_argument("-k", type=int, required=True,
                      help="edit-distance threshold for '?' queries")
    live.add_argument("-o", "--output", default=None,
                      help="result file for query lines "
                           "(default: stdout)")
    live.add_argument("--data", default=None, metavar="FILE",
                      help="seed the corpus from this dataset file "
                           "before replaying the script")
    live.add_argument("--segment-dir", default=None, metavar="DIR",
                      help="persist segments + manifest there (the "
                           "corpus is reopened from DIR if a manifest "
                           "already exists, so scripts compose across "
                           "runs); synced on exit")
    live.add_argument("--flush-threshold", type=int, default=None,
                      help="memtable size that triggers a segment "
                           "flush (default 256)")
    live.add_argument("--fanout", type=int, default=None,
                      help="segments per level before compaction "
                           "merges them (default 4)")
    live.add_argument("--compaction", default="inline",
                      choices=("inline", "background"),
                      help="merge segments on the mutating thread "
                           "(inline, default) or on a daemon thread "
                           "(background)")
    live.add_argument("--compact", action="store_true",
                      help="fold everything into one segment after "
                           "the script finishes")

    metrics = commands.add_parser(
        "metrics", help="render a telemetry dump (the JSON written by "
                        "search --telemetry-out)",
    )
    metrics.add_argument("dump_file",
                         help="TelemetrySampler JSON dump file")
    metrics.add_argument("--format", default="tail",
                         choices=("dump", "tail", "prom"),
                         help="dump: the raw JSON document; tail: the "
                              "newest samples per series, human-"
                              "readable (default); prom: latest value "
                              "per series as Prometheus gauges")
    metrics.add_argument("-n", "--samples", type=int, default=10,
                         help="samples shown per series with "
                              "--format tail (default 10)")
    metrics.add_argument("-o", "--output", default=None,
                         help="write there instead of stdout")

    bench = commands.add_parser(
        "bench", help="run a registered paper experiment",
    )
    bench.add_argument("experiment",
                       help=f"one of: {', '.join(sorted(EXPERIMENTS))}")
    return parser


def _make_runner(spec: str):
    if spec == "serial":
        return SerialRunner()
    kind, _, count = spec.partition(":")
    if kind in ("threads", "processes"):
        try:
            workers = int(count)
        except ValueError:
            raise ReproError(
                f"runner spec {spec!r} needs a worker count, "
                f"e.g. {kind}:8"
            ) from None
        if kind == "threads":
            return ThreadPoolRunner(threads=workers)
        return ProcessPoolRunner(processes=workers)
    raise ReproError(
        f"unknown runner {spec!r}; expected serial, threads:N or "
        "processes:N"
    )


def _emit_report(report, args: argparse.Namespace) -> None:
    """Render the run's SearchReport per --stats-format/--stats-output."""
    if args.stats_format == "json":
        rendered = report.to_json(indent=2)
    elif args.stats_format == "prom":
        rendered = report.to_prometheus()
    else:
        rendered = report.render()
    if args.stats_output:
        with open(args.stats_output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            if not rendered.endswith("\n"):
                handle.write("\n")
    else:
        print(rendered, file=sys.stderr)


def _make_observability(args: argparse.Namespace):
    """The run's optional recorder, registry, event log and sampler."""
    recorder = None
    if args.slowlog is not None:
        from repro.obs.recorder import FlightRecorder

        if args.slowlog < 1:
            raise ReproError(
                f"--slowlog needs a positive count, got {args.slowlog}"
            )
        recorder = FlightRecorder(top_n=max(args.slowlog, 16))
    metrics = None
    if args.trace_out is not None or args.telemetry_out is not None:
        from repro.obs.registry import MetricsRegistry

        metrics = MetricsRegistry()
    events = None
    if args.events_out is not None:
        from repro.obs.events import EventLog

        events = EventLog()
    sampler = None
    if args.telemetry_out is not None:
        from repro.obs.sampler import TelemetrySampler

        sampler = TelemetrySampler()
        sampler.watch_registry(metrics)
        sampler.start()
    return recorder, metrics, events, sampler


def _emit_slowlog_and_trace(args: argparse.Namespace, recorder,
                            metrics, events=None, sampler=None) -> None:
    """Print the slowlog, write trace/events/telemetry, as requested."""
    if recorder is not None:
        print(recorder.render(args.slowlog), file=sys.stderr)
    if metrics is not None and args.trace_out is not None:
        from repro.obs.traceexport import write_trace

        write_trace(args.trace_out, metrics)
        print(
            f"trace: {len(metrics.spans)} spans written to "
            f"{args.trace_out} (open in chrome://tracing or "
            "ui.perfetto.dev)",
            file=sys.stderr,
        )
    if events is not None and args.events_out is not None:
        written = events.write(args.events_out)
        print(f"events: {written} lines written to {args.events_out}",
              file=sys.stderr)
    if sampler is not None and args.telemetry_out is not None:
        sampler.stop()
        sampler.dump(args.telemetry_out)
        print(
            f"telemetry: {sampler.samples_taken} sweeps over "
            f"{len(sampler.latest())} series written to "
            f"{args.telemetry_out} (render with "
            "`repro-search metrics`)",
            file=sys.stderr,
        )


def _write_result_lines(lines, output: str | None) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
    else:
        for line in lines:
            print(line)


def _command_search_service(args: argparse.Namespace, dataset,
                            queries, want_stats: bool) -> int:
    from repro.core.deadline import Deadline
    from repro.service import Service

    recorder, metrics, events, sampler = _make_observability(args)
    service = Service(dataset, shards=args.shards, metrics=metrics,
                      recorder=recorder, events=events)
    if sampler is not None:
        sampler.add_source("service.in_flight",
                           lambda: service.in_flight)
        sampler.add_source("service.capacity",
                           lambda: service.capacity)
    seconds = (args.deadline_ms / 1000.0
               if args.deadline_ms is not None else None)
    rows: list[tuple[str, list[str]]] = []
    status_counts: dict[str, int] = {}
    total_matches = 0
    for query in queries:
        deadline = Deadline(seconds) if seconds is not None else None
        try:
            result = service.submit(query, args.k, deadline=deadline)
        except ServiceOverloaded as error:
            hint = (f"; retry in ~{error.retry_after_ms:.0f}ms"
                    if error.retry_after_ms is not None
                    else "; back off and retry")
            print(
                f"{query}: rejected — service overloaded "
                f"({error.in_flight} of {error.capacity} slots in "
                f"flight){hint}",
                file=sys.stderr,
            )
            raise
        status_counts[result.status] = \
            status_counts.get(result.status, 0) + 1
        total_matches += len(result.matches)
        if result.status != "complete":
            print(
                f"{query}: {result.status} via "
                f"{result.plan or 'merged partials'} "
                f"({len(result.matches)} matches, "
                f"verified={result.verified})",
                file=sys.stderr,
            )
        rows.append((query, [m.string for m in result.matches]))
    summary = ", ".join(
        f"{count} {status}" for status, count in
        sorted(status_counts.items())
    )
    print(
        f"service: {len(queries)} queries over "
        f"{service.corpus.shard_count} shards ({summary}; "
        f"{total_matches} matches)",
        file=sys.stderr,
    )
    if want_stats:
        _emit_report(
            service.report(queries=len(queries), k=args.k,
                           matches=total_matches),
            args,
        )
    _emit_slowlog_and_trace(args, recorder, metrics, events, sampler)
    _write_result_lines(
        ("\t".join([query, *matched]) for query, matched in rows),
        args.output,
    )
    return 0


def _command_search(args: argparse.Namespace) -> int:
    dataset = read_strings(args.data_file)
    queries = read_queries(args.query_file)
    want_stats = (args.stats or args.stats_output is not None
                  or args.stats_format != "text")
    if args.service:
        if args.segment or args.save_segment:
            raise ReproError(
                "--segment/--save-segment apply to the engine path, "
                "not --service (the sharded corpus manages its own "
                "per-shard segments)"
            )
        return _command_search_service(args, dataset, queries,
                                       want_stats)
    if args.segment and args.backend not in ("auto", "compiled"):
        raise ReproError(
            f"--segment serves the compiled backend; it cannot be "
            f"combined with --backend {args.backend}"
        )
    runner = _make_runner(args.runner)
    recorder, metrics, events, sampler = _make_observability(args)
    engine = SearchEngine(dataset, backend=args.backend, runner=runner,
                          observe=want_stats or metrics is not None,
                          metrics=metrics, recorder=recorder,
                          segment=args.segment)
    print(
        f"backend: {engine.default_plan.strategy} "
        f"({engine.default_plan.reason})",
        file=sys.stderr,
    )
    workload = Workload(tuple(queries), args.k, name=args.query_file)
    if args.explain:
        plan = engine.plan(
            tuple(queries) if len(queries) > 1 else queries[0],
            args.k, batch=bool(args.batch),
        )
        if args.stats_format == "json":
            import json

            _write_result_lines([json.dumps(plan.to_dict(), indent=2)],
                                args.output)
        else:
            _write_result_lines([plan.render()], args.output)
        return 0
    deadline = (Deadline(args.deadline_ms / 1000.0)
                if args.deadline_ms is not None else None)
    try:
        if args.batch:
            results, report = engine.search_many(
                workload.queries, workload.k, deadline=deadline,
                report=True)
        else:
            results, report = engine.run_workload(
                workload, deadline=deadline, report=True)
    except DeadlineExceeded as error:
        completed = dict(error.partial) if isinstance(error.partial,
                                                      dict) else {}
        print(
            f"deadline exceeded: {error.completed} of {error.total} "
            f"distinct queries completed within {args.deadline_ms}ms; "
            "writing partial results (completed queries only)",
            file=sys.stderr,
        )
        _emit_slowlog_and_trace(args, recorder, metrics, events,
                                sampler)
        _write_result_lines(
            ("\t".join([query, *[m.string for m in completed[query]]])
             for query in queries if query in completed),
            args.output,
        )
        return 3
    print(
        f"{len(queries)} queries in {report.seconds:.3f}s "
        f"({results.total_matches} matches)",
        file=sys.stderr,
    )
    if args.batch and report.batch is not None:
        batch = report.batch
        print(
            f"batch: {batch.unique_queries} unique of "
            f"{batch.queries_seen} queries, {batch.cache_hits} cache "
            f"hits, {batch.scans_executed} scans executed",
            file=sys.stderr,
        )
    if want_stats:
        _emit_report(report, args)
    _emit_slowlog_and_trace(args, recorder, metrics, events, sampler)
    if args.save_segment:
        from repro.speed import save_segment

        corpus = getattr(engine.searcher, "corpus", None)
        if corpus is None:
            from repro.scan.corpus import CompiledCorpus

            corpus = CompiledCorpus(dataset, packed=True)
        saved = save_segment(corpus, args.save_segment)
        print(f"segment: compiled corpus saved to {saved}",
              file=sys.stderr)
    lines = (
        "\t".join([query, *row])
        for query, row in (
            (query, list(results.strings_for(index)))
            for index, query in enumerate(results.queries)
        )
    )
    _write_result_lines(lines, args.output)
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    if args.kind == "cities":
        strings = generate_city_names(args.count, seed=args.seed)
    else:
        strings = generate_reads(args.count, seed=args.seed)
    written = write_strings(args.output, strings)
    print(f"wrote {written} strings to {args.output}", file=sys.stderr)
    return 0


def _command_suggest(args: argparse.Namespace) -> int:
    from repro.core.topk import search_topk

    dataset = read_strings(args.data_file)
    engine = SearchEngine(dataset, backend=args.backend)
    for match in search_topk(engine.searcher, args.query, args.count):
        print(f"{match.string}\t{match.distance}")
    return 0


def _command_complete(args: argparse.Namespace) -> int:
    from repro.index.autocomplete import autocomplete
    from repro.index.compressed import CompressedTrie

    dataset = read_strings(args.data_file)
    trie = CompressedTrie(dataset)
    completions = autocomplete(trie, args.prefix, args.k,
                               limit=args.count)
    for completion in completions:
        print(f"{completion.string}\t{completion.prefix_distance}")
    return 0


def _command_join(args: argparse.Namespace) -> int:
    from repro.core.join import similarity_join

    left = read_strings(args.left_file)
    right = read_strings(args.right_file) if args.right_file else None
    result = similarity_join(left, right, args.k, method=args.method)
    right_side = left if right is None else right
    print(
        f"{len(result)} pairs in {result.seconds:.3f}s "
        f"({result.candidates_examined} candidates examined)",
        file=sys.stderr,
    )
    lines = (
        f"{left[pair.left_index]}\t{right_side[pair.right_index]}\t"
        f"{pair.distance}"
        for pair in result.pairs
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
    else:
        for line in lines:
            print(line)
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    dataset = read_strings(args.data_file)
    stats = describe(dataset)
    print(f"strings:        {stats.count:,}")
    print(f"alphabet size:  {stats.alphabet_size}")
    print(f"length:         min {stats.min_length}, "
          f"max {stats.max_length}, mean {stats.mean_length:.1f}, "
          f"median {stats.median_length:.1f}")
    print(f"total symbols:  {stats.total_symbols:,}")
    top = ", ".join(
        f"{symbol!r}x{count}" for symbol, count in
        stats.most_common_symbols[:5]
    )
    print(f"top symbols:    {top}")
    return 0


def _command_distance(args: argparse.Namespace) -> int:
    if args.matrix:
        matrix = DistanceMatrix(args.x, args.y)
        print(matrix.render())
        print(f"edit distance: {matrix.distance}")
    else:
        print(edit_distance(args.x, args.y))
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    if args.candidate is not None:
        from repro.core.explain import explain_pair

        print(explain_pair(args.query, args.candidate, args.k).render())
        return 0
    if args.data is None:
        raise ReproError(
            "explain needs either a candidate string (pairwise trace) "
            "or --data FILE (query-plan mode)"
        )
    import json

    engine = SearchEngine(read_strings(args.data))
    plan = engine.explain(args.query, args.k,
                          batch=True if args.batch else None)
    if args.stats_format == "json":
        print(json.dumps(plan.to_dict(), indent=2))
    else:
        print(plan.render())
    return 0


def _command_live(args: argparse.Namespace) -> int:
    import os

    from repro.live import (
        DEFAULT_FANOUT,
        DEFAULT_FLUSH_THRESHOLD,
        MANIFEST_NAME,
        Corpus,
    )

    seeds = read_strings(args.data) if args.data else []
    flush_threshold = (args.flush_threshold
                       if args.flush_threshold is not None
                       else DEFAULT_FLUSH_THRESHOLD)
    fanout = args.fanout if args.fanout is not None else DEFAULT_FANOUT
    if (args.segment_dir
            and os.path.exists(os.path.join(args.segment_dir,
                                            MANIFEST_NAME))):
        if args.data:
            raise ReproError(
                f"--data conflicts with reopening {args.segment_dir} "
                "(the manifest already defines the contents); drop one"
            )
        corpus = Corpus.open(args.segment_dir,
                             compaction=args.compaction)
    else:
        corpus = Corpus.live(seeds, flush_threshold=flush_threshold,
                             fanout=fanout, compaction=args.compaction,
                             segment_dir=args.segment_dir)
    inserts = deletes = searches = 0
    rows: list[str] = []
    with open(args.ops_file, "r", encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            op, payload = line[0], line[1:]
            if not payload:
                raise ReproError(
                    f"{args.ops_file}:{number}: operation {op!r} "
                    "needs a string after it"
                )
            if op == "+":
                corpus.insert(payload)
                inserts += 1
            elif op == "-":
                corpus.delete(payload)
                deletes += 1
            elif op == "?":
                matches = corpus.search(payload, args.k)
                rows.append("\t".join(
                    [payload, *[m.string for m in matches]]))
                searches += 1
            else:
                raise ReproError(
                    f"{args.ops_file}:{number}: unknown operation "
                    f"{op!r}; lines start with '+' (insert), "
                    "'-' (delete) or '?' (search)"
                )
    if args.compact:
        corpus.compact()
    if args.segment_dir:
        corpus.sync()
    live_corpus = corpus.live_corpus
    print(
        f"live: {inserts} inserts, {deletes} deletes, "
        f"{searches} searches; {len(corpus)} strings in "
        f"{live_corpus.segment_count} segments "
        f"(+{live_corpus.memtable_size} in memtable, "
        f"{live_corpus.tombstone_count} tombstones) at epoch "
        f"{corpus.epoch}",
        file=sys.stderr,
    )
    _write_result_lines(rows, args.output)
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs.sampler import series_from_document

    try:
        with open(args.dump_file, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise ReproError(
            f"cannot read telemetry dump {args.dump_file}: {error}"
        ) from None
    except json.JSONDecodeError as error:
        raise ReproError(
            f"{args.dump_file} is not JSON: {error}"
        ) from None
    series = series_from_document(document)
    if args.format == "dump":
        lines = [json.dumps(document, indent=2, sort_keys=True)]
    elif args.format == "prom":
        from repro.obs.export import telemetry_to_prometheus

        lines = [telemetry_to_prometheus(series).rstrip("\n")]
    else:
        if args.samples < 1:
            raise ReproError(
                f"--samples needs a positive count, got {args.samples}"
            )
        lines = []
        for name in sorted(series):
            samples = series[name]
            if not samples:
                continue
            lines.append(f"{name}  ({len(samples)} samples, latest "
                         f"{samples[-1][1]:g})")
            for timestamp, value in samples[-args.samples:]:
                lines.append(f"  {timestamp:.3f}  {value:g}")
    _write_result_lines(lines, args.output)
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    print(run_experiment(args.experiment))
    return 0


_COMMANDS = {
    "search": _command_search,
    "suggest": _command_suggest,
    "complete": _command_complete,
    "generate": _command_generate,
    "join": _command_join,
    "stats": _command_stats,
    "distance": _command_distance,
    "explain": _command_explain,
    "live": _command_live,
    "metrics": _command_metrics,
    "bench": _command_bench,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
