"""Filter-chain ordering: predicate optimization for the scan.

A chain of sound filters admits the same candidates in any order, but
order drives cost: the classic database rule places predicates by
*rank* — cheapest-per-rejected-candidate first. This module measures
each filter's cost and rejection rate on a training sample and reorders
the chain accordingly, so pipelines built from this library's filters
(or user-defined ones) get the textbook optimization for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.distance.banded import check_threshold
from repro.exceptions import ReproError
from repro.filters.base import CandidateFilter, FilterChain


@dataclass(frozen=True)
class FilterMeasurement:
    """Observed behaviour of one filter on the training sample."""

    name: str
    seconds_per_call: float
    rejection_rate: float

    @property
    def rank(self) -> float:
        """Cost per unit of selectivity — lower runs earlier.

        The classic predicate-ordering rank ``cost / selectivity``:
        a filter that rejects nothing is infinitely expensive per
        rejection and sinks to the end of the chain.
        """
        if self.rejection_rate <= 0.0:
            return float("inf")
        return self.seconds_per_call / self.rejection_rate


def measure_filters(filters: Sequence[CandidateFilter],
                    queries: Sequence[str],
                    candidates: Sequence[str],
                    k: int) -> list[FilterMeasurement]:
    """Time each filter alone over the query × candidate sample."""
    check_threshold(k)
    if not queries or not candidates:
        raise ReproError(
            "filter measurement needs at least one query and candidate"
        )
    measurements = []
    for member in filters:
        calls = 0
        rejected = 0
        started = time.perf_counter()
        for query in queries:
            member.prepare_query(query)
            for candidate in candidates:
                calls += 1
                if not member.admits(query, candidate, k):
                    rejected += 1
        elapsed = time.perf_counter() - started
        measurements.append(FilterMeasurement(
            name=member.name,
            seconds_per_call=elapsed / calls,
            rejection_rate=rejected / calls,
        ))
    return measurements


def optimize_chain(chain: FilterChain, queries: Sequence[str],
                   candidates: Sequence[str], k: int) -> FilterChain:
    """A new chain with the same filters, ordered by measured rank.

    Results are unchanged for sound filters (a conjunction commutes);
    only the expected number of evaluated predicates drops. The input
    chain is not modified.

    Examples
    --------
    >>> from repro.filters import (FilterChain, LengthFilter,
    ...                            QGramCountFilter)
    >>> chain = FilterChain([QGramCountFilter(2), LengthFilter()])
    >>> tuned = optimize_chain(chain, ["Bern"],
    ...                        ["Berlin", "B", "Hamburg"], 1)
    >>> [f.name for f in tuned.filters][0]
    'length'
    """
    measurements = measure_filters(chain.filters, queries, candidates, k)
    ranked = sorted(zip(measurements, chain.filters),
                    key=lambda pair: pair[0].rank)
    return FilterChain([member for _, member in ranked])


def explain_ordering(chain: FilterChain, queries: Sequence[str],
                     candidates: Sequence[str], k: int) -> str:
    """Human-readable rank table for a chain on a sample workload."""
    measurements = measure_filters(chain.filters, queries, candidates, k)
    lines = [
        f"{'filter':<20} {'us/call':>9} {'rejects':>9} {'rank':>12}",
    ]
    for m in sorted(measurements, key=lambda m: m.rank):
        rank = "inf" if m.rank == float("inf") else f"{m.rank:.2e}"
        lines.append(
            f"{m.name:<20} {1e6 * m.seconds_per_call:>9.2f} "
            f"{100 * m.rejection_rate:>8.1f}% {rank:>12}"
        )
    return "\n".join(lines)
