"""Frequency-vector filter (PETER technique; paper sections 2.3 and 6).

For a tracked symbol set ``S``, let ``f_s(x)`` count occurrences of
``s`` in ``x``. One edit operation changes each ``f_s`` by at most 1,
and changes the *sum* of all increases/decreases boundedly: a replace
can simultaneously decrement one tracked count and increment another.
Hence

    ed(x, y)  >=  max( sum_over_s max(0, f_s(x) - f_s(y)),
                       sum_over_s max(0, f_s(y) - f_s(x)) )

— the larger of total surplus and total deficit is a valid lower bound.
The paper proposes tracking ``A, C, G, N, T`` for DNA and the vowels
``A, E, I, O, U`` for city names (section 6). PETER stores these vectors
in trie nodes (section 2.3); :class:`repro.index.trie.PrefixTrie` reuses
this module for that.
"""

from __future__ import annotations

from typing import Sequence

from repro.filters.base import CandidateFilter


def frequency_vector(text: str, tracked: str,
                     case_insensitive: bool = True) -> tuple[int, ...]:
    """Occurrence counts of each tracked symbol in ``text``.

    City names mix cases, so matching is case-insensitive by default;
    DNA callers can disable it (reads are upper-case by construction).
    """
    if case_insensitive:
        text = text.upper()
        tracked = tracked.upper()
    return tuple(text.count(symbol) for symbol in tracked)


def frequency_lower_bound(counts_x: Sequence[int],
                          counts_y: Sequence[int]) -> int:
    """Lower bound on ``ed(x, y)`` from two frequency vectors.

    See the module docstring for the derivation. Vectors must track the
    same symbols in the same order.
    """
    if len(counts_x) != len(counts_y):
        raise ValueError(
            f"frequency vectors track different symbol sets: "
            f"{len(counts_x)} vs {len(counts_y)} entries"
        )
    surplus = 0
    deficit = 0
    for fx, fy in zip(counts_x, counts_y):
        difference = fx - fy
        if difference > 0:
            surplus += difference
        else:
            deficit -= difference
    return max(surplus, deficit)


class FrequencyVectorFilter(CandidateFilter):
    """Reject pairs whose frequency-vector bound exceeds ``k``.

    Parameters
    ----------
    tracked:
        Symbols to count, e.g. ``"AEIOU"`` for city names or ``"ACGNT"``
        for DNA (the paper's suggestions).
    case_insensitive:
        Fold case before counting (sensible for natural language).

    Per-query vectors are cached via :meth:`prepare_query`, so a scan
    computes the query's vector once and each candidate's vector once.

    >>> f = FrequencyVectorFilter("AEIOU")
    >>> f.admits("Berlin", "Brln", 1)      # 'e' and 'i' both lost: bound 2
    False
    >>> f.admits("Berlin", "Brln", 2)
    True
    """

    name = "frequency-vector"

    def __init__(self, tracked: str, *, case_insensitive: bool = True) -> None:
        if not tracked:
            raise ValueError("tracked symbol set must not be empty")
        self._tracked = tracked
        self._case_insensitive = case_insensitive
        self._query: str | None = None
        self._query_vector: tuple[int, ...] = ()

    @property
    def tracked(self) -> str:
        """The tracked symbol set."""
        return self._tracked

    def vector(self, text: str) -> tuple[int, ...]:
        """The frequency vector of ``text`` under this filter's settings."""
        return frequency_vector(text, self._tracked, self._case_insensitive)

    def prepare_query(self, query: str) -> None:
        self._query = query
        self._query_vector = self.vector(query)

    def admits(self, query: str, candidate: str, k: int) -> bool:
        if query == self._query:
            query_vector = self._query_vector
        else:
            query_vector = self.vector(query)
        bound = frequency_lower_bound(query_vector, self.vector(candidate))
        return bound <= k
