"""No-false-negative pre-filters for similarity search.

A filter is a cheap test that may only err on the side of *keeping* a
candidate: if ``filter.admits(query, candidate, k)`` is ``False``, then
``edit_distance(query, candidate) > k`` is guaranteed. Filters therefore
never change a searcher's result set, only how much edit-distance work
it performs — the paper's accept criterion (identical results, lower
time) in miniature.

Provided filters:

* :class:`LengthFilter` — equation 5 of the paper.
* :class:`FrequencyVectorFilter` — symbol-count L1 bound; the PETER
  technique (section 2.3) and the paper's future-work item (section 6).
* :class:`QGramCountFilter` — the classic q-gram count bound used by
  most mature similarity-search systems.
* :class:`FilterChain` — composes filters cheapest-first.
"""

from repro.filters.base import CandidateFilter, FilterChain, FilterStats
from repro.filters.frequency import FrequencyVectorFilter, frequency_lower_bound
from repro.filters.length import LengthFilter
from repro.filters.ordering import (
    FilterMeasurement,
    explain_ordering,
    measure_filters,
    optimize_chain,
)
from repro.filters.prefix import (
    gram_frequencies,
    prefix_filter_admits,
    prefix_grams,
)
from repro.filters.qgram import QGramCountFilter, qgram_profile, qgrams

__all__ = [
    "CandidateFilter",
    "FilterChain",
    "FilterStats",
    "LengthFilter",
    "FrequencyVectorFilter",
    "frequency_lower_bound",
    "QGramCountFilter",
    "qgram_profile",
    "qgrams",
    "FilterMeasurement",
    "measure_filters",
    "optimize_chain",
    "explain_ordering",
    "gram_frequencies",
    "prefix_grams",
    "prefix_filter_admits",
]
