"""Prefix filtering for edit-distance joins (the Ed-Join idea).

One edit operation destroys at most ``q`` positional q-grams, so a
string pair within edit distance ``k`` preserves all but at most
``k*q`` of either side's positional grams. Contrapositive: pick **any**
``k*q + 1`` positional grams of ``r`` — if ``s`` contains none of them
as substrings, then ``ed(r, s) > k``.

Which grams to pick matters only for speed, never correctness: rare
grams hit fewer candidates, so the *prefix* is the ``k*q + 1`` grams
that are rarest under a global frequency order built from the indexed
side. Probing an inverted gram index with just the prefix (instead of
every gram, as the count filter does) is what makes prefix-filtered
joins fast.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.filters.qgram import qgrams


def gram_frequencies(strings: Sequence[str], q: int) -> Counter[str]:
    """Document frequency of each distinct q-gram over ``strings``."""
    frequencies: Counter[str] = Counter()
    for string in strings:
        frequencies.update(set(qgrams(string, q)))
    return frequencies


def prefix_grams(string: str, k: int, q: int,
                 frequencies: Counter[str]) -> list[str]:
    """The ``k*q + 1`` rarest positional grams of ``string``.

    Returns *distinct* grams covering at least ``k*q + 1`` positional
    occurrences (a repeated gram covers all its occurrences at once),
    or every gram when the string is too short for the bound to have
    power — in that case callers must treat the string as a wildcard.

    >>> freq = gram_frequencies(["abab", "abcd"], 2)
    >>> sorted(prefix_grams("abab", 1, 2, freq))
    ['ab', 'ba']
    """
    positional = qgrams(string, q)
    needed = k * q + 1
    if len(positional) <= needed:
        return sorted(set(positional))
    # Rarest-first; ties broken lexicographically for determinism.
    ranked = sorted(positional,
                    key=lambda gram: (frequencies[gram], gram))
    chosen: list[str] = []
    covered = 0
    occurrences = Counter(positional)
    for gram in ranked:
        if gram in chosen:
            continue
        chosen.append(gram)
        covered += occurrences[gram]
        if covered >= needed:
            break
    return chosen


def prefix_filter_admits(probe_prefix: Sequence[str],
                         candidate_grams: set[str]) -> bool:
    """Sound candidate test: does any prefix gram occur in the candidate?

    ``False`` proves ``ed > k`` **only** when the probe's prefix covers
    ``k*q + 1`` positional grams (see :func:`prefix_grams`); strings
    shorter than that must bypass the filter.
    """
    for gram in probe_prefix:
        if gram in candidate_grams:
            return True
    return False
