"""q-gram count filter — the classic bound mature systems rely on.

A q-gram is a length-``q`` substring. One edit operation destroys at
most ``q`` of a string's q-grams, so two strings within edit distance
``k`` must share at least

    max(len(x), len(y)) - q + 1 - k * q

q-grams (counting multiplicity). When that bound is positive and the
actual overlap falls below it, the pair can be rejected without any DP.
The same machinery powers the inverted q-gram index of
:mod:`repro.index.qgram_index`.
"""

from __future__ import annotations

from collections import Counter

from repro.filters.base import CandidateFilter


def qgrams(text: str, q: int) -> list[str]:
    """All overlapping q-grams of ``text``, in order.

    Strings shorter than ``q`` have no q-grams.

    >>> qgrams("ACGT", 2)
    ['AC', 'CG', 'GT']
    """
    if q < 1:
        raise ValueError(f"q must be positive, got {q}")
    return [text[i:i + q] for i in range(len(text) - q + 1)]


def qgram_profile(text: str, q: int) -> Counter[str]:
    """Multiset of q-grams as a :class:`collections.Counter`."""
    return Counter(qgrams(text, q))


def qgram_overlap(profile_x: Counter[str], profile_y: Counter[str]) -> int:
    """Size of the multiset intersection of two q-gram profiles."""
    if len(profile_y) < len(profile_x):
        profile_x, profile_y = profile_y, profile_x
    return sum(
        min(count, profile_y[gram])
        for gram, count in profile_x.items()
        if gram in profile_y
    )


def required_overlap(len_x: int, len_y: int, q: int, k: int) -> int:
    """Minimum shared q-grams for strings within distance ``k``.

    Non-positive values mean the filter has no power for these lengths
    (every pair trivially satisfies the bound).
    """
    return max(len_x, len_y) - q + 1 - k * q


class QGramCountFilter(CandidateFilter):
    """Reject pairs sharing too few q-grams to be within distance ``k``.

    Parameters
    ----------
    q:
        Gram length. Small ``q`` (2–3) suits short natural-language
        strings; larger ``q`` suits long DNA reads at low error rates.

    The query profile is cached by :meth:`prepare_query`; candidate
    profiles are computed per call (searchers scanning a fixed dataset
    should precompute them — see the q-gram index for that pattern).

    >>> f = QGramCountFilter(q=2)
    >>> f.admits("ACGTACGT", "TTTTTTTT", 1)
    False
    >>> f.admits("ACGTACGT", "ACGTACGA", 1)
    True
    """

    name = "qgram-count"

    def __init__(self, q: int = 2) -> None:
        if q < 1:
            raise ValueError(f"q must be positive, got {q}")
        self._q = q
        self._query: str | None = None
        self._query_profile: Counter[str] = Counter()

    @property
    def q(self) -> int:
        """The gram length."""
        return self._q

    def prepare_query(self, query: str) -> None:
        self._query = query
        self._query_profile = qgram_profile(query, self._q)

    def admits(self, query: str, candidate: str, k: int) -> bool:
        needed = required_overlap(len(query), len(candidate), self._q, k)
        if needed <= 0:
            return True
        if query == self._query:
            query_profile = self._query_profile
        else:
            query_profile = qgram_profile(query, self._q)
        overlap = qgram_overlap(query_profile, qgram_profile(candidate, self._q))
        return overlap >= needed
