"""Filter protocol and composition.

See the package docstring for the contract every filter obeys: a
``False`` from :meth:`CandidateFilter.admits` proves the true edit
distance exceeds ``k``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Sequence


class CandidateFilter(abc.ABC):
    """A sound pre-filter for bounded edit-distance comparisons."""

    #: Short name used in statistics and reports.
    name: str = "filter"

    @abc.abstractmethod
    def admits(self, query: str, candidate: str, k: int) -> bool:
        """Return ``False`` only if ``ed(query, candidate) > k`` surely."""

    def prepare_query(self, query: str) -> None:
        """Hook: precompute per-query state before a scan.

        Called once per query by searchers; the default does nothing.
        Implementations may cache profiles of ``query`` keyed by the
        string itself.
        """


@dataclass
class FilterStats:
    """Counts of how a filter (or chain) behaved during a scan."""

    examined: int = 0
    rejected: int = 0

    @property
    def admitted(self) -> int:
        """Candidates that survived."""
        return self.examined - self.rejected

    @property
    def rejection_rate(self) -> float:
        """Fraction of examined candidates rejected (0.0 when idle)."""
        if self.examined == 0:
            return 0.0
        return self.rejected / self.examined

    def merge(self, other: "FilterStats") -> "FilterStats":
        """Combine counters from another scan (e.g. another worker)."""
        return FilterStats(
            examined=self.examined + other.examined,
            rejected=self.rejected + other.rejected,
        )


@dataclass
class FilterChain:
    """A conjunction of filters, applied in order.

    Order matters for speed (cheapest first) but never for results:
    the chain admits a candidate iff every member admits it.

    >>> from repro.filters import LengthFilter, FrequencyVectorFilter
    >>> chain = FilterChain([LengthFilter(), FrequencyVectorFilter("AEIOU")])
    >>> chain.admits("Berlin", "Bern", 2)
    True
    >>> chain.admits("Berlin", "B", 2)
    False
    """

    filters: Sequence[CandidateFilter]
    stats: FilterStats = field(default_factory=FilterStats)

    def admits(self, query: str, candidate: str, k: int) -> bool:
        """``True`` iff every member filter admits the pair."""
        self.stats.examined += 1
        for member in self.filters:
            if not member.admits(query, candidate, k):
                self.stats.rejected += 1
                return False
        return True

    def prepare_query(self, query: str) -> None:
        """Propagate per-query preparation to every member."""
        for member in self.filters:
            member.prepare_query(query)

    def reset_stats(self) -> None:
        """Zero the counters before a fresh measurement."""
        self.stats = FilterStats()

    def survivors(self, query: str, candidates: Iterable[str],
                  k: int) -> list[str]:
        """Filter an iterable of candidates, preserving order."""
        self.prepare_query(query)
        return [c for c in candidates if self.admits(query, c, k)]
