"""The length filter — equation 5 of the paper.

``|len(x) - len(y)|`` edits are unavoidable just to equalize lengths,
so it lower-bounds the edit distance. This is the cheapest filter in the
library (two ``len`` calls) and the first the paper adds to the
sequential scan (section 3.2).
"""

from __future__ import annotations

from repro.distance.banded import length_filter_passes
from repro.filters.base import CandidateFilter


class LengthFilter(CandidateFilter):
    """Reject pairs whose length difference already exceeds ``k``.

    >>> LengthFilter().admits("Hamburg", "Hamm", 2)
    False
    >>> LengthFilter().admits("Hamburg", "Hamm", 3)
    True
    """

    name = "length"

    def admits(self, query: str, candidate: str, k: int) -> bool:
        return length_filter_passes(len(query), len(candidate), k)
