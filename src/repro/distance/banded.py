"""Threshold-aware edit distance: length filter, band, and early abort.

This module implements the paper's section 3.2 ("faster edit distance
calculation") and the buffer-reuse discipline of section 3.3:

* **Length filter** (equation 5): when ``|len(x) - len(y)| > k`` the
  distance is provably above ``k``, so no matrix is computed at all.
* **Diagonal early abort** (conditions 6 and 7): values along a DP
  diagonal never decrease, and the final cell lies on the diagonal that
  passes through ``(len(x), len(y))``; once that diagonal exceeds ``k``
  the computation can stop.
* **Ukkonen band**: with a threshold ``k``, cells farther than ``k``
  from the main diagonal can never contribute to a result within ``k``,
  so only a band of ``2k + 1`` cells per row is evaluated.
* **Buffer reuse** (:class:`BandedCalculator`): the paper's
  value-vs-reference stage boils down to not allocating or copying per
  call; the calculator owns two preallocated rows and reuses them.

Bounded kernels return ``None`` (not a number) when the distance exceeds
``k``: in that regime the band does not contain enough information to
report an exact distance, only the fact that it is above the threshold.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import InvalidThresholdError


def check_threshold(k: object) -> int:
    """Validate an edit-distance threshold, returning it as an ``int``.

    Raises
    ------
    InvalidThresholdError
        If ``k`` is negative, or not an integer (``bool`` counts as an
        integer in Python but is rejected here as almost certainly a bug).
    """
    if isinstance(k, bool) or not isinstance(k, int):
        raise InvalidThresholdError(k)
    if k < 0:
        raise InvalidThresholdError(k)
    return k


def length_filter_passes(len_x: int, len_y: int, k: int) -> bool:
    """Equation 5: can two strings of these lengths be within distance ``k``?

    ``d = |len_x - len_y|`` is a lower bound on the edit distance, so the
    pair survives the filter iff ``d <= k``.
    """
    return abs(len_x - len_y) <= k


def edit_distance_bounded(x: Sequence, y: Sequence, k: int) -> int | None:
    """Edit distance of ``x`` and ``y`` if it is at most ``k``, else ``None``.

    Combines the length filter, the Ukkonen band and the early abort.
    This is the stand-alone function form; for tight loops prefer
    :class:`BandedCalculator`, which reuses its row buffers.

    Examples
    --------
    >>> edit_distance_bounded("AGGCGT", "AGAGT", 2)
    2
    >>> edit_distance_bounded("AGGCGT", "AGAGT", 1) is None
    True
    """
    check_threshold(k)
    return _banded(x, y, k, None, None)


def within_distance(x: Sequence, y: Sequence, k: int) -> bool:
    """``True`` iff ``edit_distance(x, y) <= k``."""
    return edit_distance_bounded(x, y, k) is not None


class BandedCalculator:
    """A bounded edit-distance calculator that owns its row buffers.

    The paper's "values and references" stage (section 3.3) removes
    per-call allocation and copying. The Python analog is an object that
    preallocates its two DP rows once and reuses them for every call:

    >>> calc = BandedCalculator(max_length=64)
    >>> calc.distance("Berlin", "Bern", 3)
    2
    >>> calc.distance("Berlin", "Ulm", 3) is None
    True

    Instances are **not** thread-safe — each worker thread must own its
    calculator, mirroring the paper's per-thread state.
    """

    def __init__(self, max_length: int = 256) -> None:
        if max_length < 1:
            raise ValueError(f"max_length must be positive, got {max_length}")
        self._max_length = max_length
        self._row_a = [0] * (max_length + 1)
        self._row_b = [0] * (max_length + 1)

    @property
    def max_length(self) -> int:
        """Longest operand the preallocated buffers can hold."""
        return self._max_length

    def _ensure_capacity(self, needed: int) -> None:
        if needed > self._max_length:
            self._max_length = max(needed, 2 * self._max_length)
            self._row_a = [0] * (self._max_length + 1)
            self._row_b = [0] * (self._max_length + 1)

    def distance(self, x: Sequence, y: Sequence, k: int) -> int | None:
        """Bounded distance using the reusable buffers (see module docs)."""
        check_threshold(k)
        self._ensure_capacity(max(len(x), len(y)))
        return _banded(x, y, k, self._row_a, self._row_b)

    def within(self, x: Sequence, y: Sequence, k: int) -> bool:
        """``True`` iff ``edit_distance(x, y) <= k``."""
        return self.distance(x, y, k) is not None


def _banded(x: Sequence, y: Sequence, k: int,
            row_a: list[int] | None, row_b: list[int] | None) -> int | None:
    """Shared banded DP used by the function and calculator front ends.

    ``row_a``/``row_b`` may be preallocated buffers at least
    ``max(len(x), len(y)) + 1`` long, or ``None`` to allocate locally.
    """
    len_x = len(x)
    len_y = len(y)
    if not length_filter_passes(len_x, len_y, k):
        return None
    if len_x == 0:
        return len_y if len_y <= k else None
    if len_y == 0:
        return len_x if len_x <= k else None
    if k == 0:
        # The band degenerates to the main diagonal: exact match test.
        return 0 if _sequences_equal(x, y) else None

    infinity = k + 1
    if row_a is None:
        row_a = [0] * (len_y + 1)
        row_b = [0] * (len_y + 1)
    assert row_b is not None

    previous = row_a
    current = row_b
    # Row 0 inside the band: M[0][j] = j for j <= k, "infinite" outside.
    band_hi0 = min(len_y, k)
    for j in range(band_hi0 + 1):
        previous[j] = j
    if band_hi0 + 1 <= len_y:
        previous[band_hi0 + 1] = infinity

    # The early-abort diagonal of conditions (6)/(7) is the one through
    # the final cell: j == i - (len_x - len_y).
    final_diagonal_offset = len_y - len_x

    for i in range(1, len_x + 1):
        lo = max(1, i - k)
        hi = min(len_y, i + k)
        if lo > hi:
            return None
        # Seed the cell left of the band with "infinity" so the insert
        # transition cannot leak stale values from the previous row.
        current[lo - 1] = i if lo == 1 else infinity
        x_symbol = x[i - 1]
        row_minimum = infinity
        for j in range(lo, hi + 1):
            if x_symbol == y[j - 1]:
                cost = previous[j - 1]
            else:
                above = previous[j] if j < i + k else infinity
                cost = 1 + min(above, current[j - 1], previous[j - 1])
                if cost > infinity:
                    cost = infinity
            current[j] = cost
            if cost < row_minimum:
                row_minimum = cost
        # Paper conditions (6)/(7): values along a diagonal never decrease
        # and the final cell lies on the diagonal through (len_x, len_y),
        # so once that diagonal exceeds k the result must exceed k.
        diagonal_j = i + final_diagonal_offset
        if lo <= diagonal_j <= hi and current[diagonal_j] > k:
            return None
        # Ukkonen cutoff: if every cell in the band exceeds k, no path
        # back under the threshold exists.
        if row_minimum > k:
            return None
        if hi + 1 <= len_y:
            current[hi + 1] = infinity
        previous, current = current, previous

    result = previous[len_y]
    return result if result <= k else None


def _sequences_equal(x: Sequence, y: Sequence) -> bool:
    """Element-wise equality that works across sequence types."""
    if type(x) is type(y):
        return x == y
    return len(x) == len(y) and all(a == b for a, b in zip(x, y))
