"""Dictionary compression: bit-packed strings (paper section 6).

The paper's first future-work item observes that a five-symbol DNA
alphabet needs only three bits per symbol, so strings can be stored far
more compactly and symbol comparisons touch fewer bits in total. This
module implements that idea for any alphabet:

* :func:`pack` converts a string into a :class:`PackedString`, an
  immutable value backed by a single Python integer holding
  ``bits_per_symbol`` bits per symbol.
* :func:`packed_edit_distance_bounded` runs the banded threshold kernel
  directly on the packed representation, decoding symbols on the fly
  with shifts and masks — no intermediate string is materialized.
* :func:`pack_bucket` is the bulk form: it packs a whole length bucket
  of equal-length strings into a :class:`PackedBucket` — one contiguous
  ``numpy`` code matrix (one row per string, one small unsigned int per
  symbol) for the vectorized kernels, plus the bit-packed words (the
  paper's 3-bit layout, row-major) as the canonical compressed storage
  the memory accounting reports.
"""

from __future__ import annotations

import numpy as np

from repro.data.alphabet import Alphabet
from repro.distance.banded import check_threshold, length_filter_passes


class PackedString:
    """A string stored as dense symbol codes inside one big integer.

    Supports ``len``, indexing (returning the integer symbol code),
    iteration, equality and hashing, so it can be used wherever the
    distance kernels accept a sequence of symbol codes.

    Build instances with :func:`pack`; decode with :meth:`decode`.
    """

    __slots__ = ("_bits", "_length", "_word", "_alphabet")

    def __init__(self, word: int, length: int, alphabet: Alphabet) -> None:
        self._word = word
        self._length = length
        self._alphabet = alphabet
        self._bits = alphabet.bits_per_symbol

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet the symbol codes refer to."""
        return self._alphabet

    @property
    def bits_per_symbol(self) -> int:
        """Bits each symbol occupies (3 for the DNA alphabet)."""
        return self._bits

    @property
    def word(self) -> int:
        """The raw packed integer (symbol 0 in the lowest bits)."""
        return self._word

    @property
    def storage_bits(self) -> int:
        """Total bits of payload: ``len(self) * bits_per_symbol``."""
        return self._length * self._bits

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range [0, {self._length})")
        mask = (1 << self._bits) - 1
        return (self._word >> (index * self._bits)) & mask

    def __iter__(self):
        word = self._word
        mask = (1 << self._bits) - 1
        for _ in range(self._length):
            yield word & mask
            word >>= self._bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedString):
            return NotImplemented
        return (
            self._word == other._word
            and self._length == other._length
            and self._alphabet == other._alphabet
        )

    def __hash__(self) -> int:
        return hash((self._word, self._length, self._alphabet.name))

    def __repr__(self) -> str:
        preview = self.decode()
        if len(preview) > 24:
            preview = preview[:21] + "..."
        return f"PackedString({preview!r}, alphabet={self._alphabet.name!r})"

    def decode(self) -> str:
        """Recover the original text."""
        return self._alphabet.decode(tuple(self))


def pack(text: str, alphabet: Alphabet) -> PackedString:
    """Pack ``text`` into a :class:`PackedString` under ``alphabet``.

    Raises
    ------
    AlphabetError
        If ``text`` contains symbols outside the alphabet.

    Examples
    --------
    >>> from repro.data.alphabet import DNA_ALPHABET
    >>> packed = pack("ACGT", DNA_ALPHABET)
    >>> packed.storage_bits
    12
    >>> packed.decode()
    'ACGT'
    """
    bits = alphabet.bits_per_symbol
    word = 0
    for position, code in enumerate(alphabet.encode(text)):
        word |= code << (position * bits)
    return PackedString(word, len(text), alphabet)


def packed_edit_distance_bounded(x: PackedString, y: PackedString,
                                 k: int) -> int | None:
    """Bounded edit distance computed directly on packed operands.

    Symbol codes are extracted with shift/mask as the band advances; the
    result is identical to running the banded kernel on the decoded
    strings (a property test enforces this).

    Raises
    ------
    ValueError
        If the operands were packed under different alphabets — their
        symbol codes would not be comparable.
    """
    check_threshold(k)
    if x.alphabet != y.alphabet:
        raise ValueError(
            f"cannot compare strings packed under different alphabets: "
            f"{x.alphabet.name!r} vs {y.alphabet.name!r}"
        )
    len_x = len(x)
    len_y = len(y)
    if not length_filter_passes(len_x, len_y, k):
        return None
    if len_x == 0:
        return len_y if len_y <= k else None
    if len_y == 0:
        return len_x if len_x <= k else None
    if k == 0:
        return 0 if x == y else None

    bits = x.bits_per_symbol
    symbol_mask = (1 << bits) - 1
    x_word = x.word
    y_word = y.word

    infinity = k + 1
    previous = [0] * (len_y + 1)
    current = [0] * (len_y + 1)
    band_hi0 = min(len_y, k)
    for j in range(band_hi0 + 1):
        previous[j] = j
    if band_hi0 + 1 <= len_y:
        previous[band_hi0 + 1] = infinity

    for i in range(1, len_x + 1):
        lo = max(1, i - k)
        hi = min(len_y, i + k)
        current[lo - 1] = i if lo == 1 else infinity
        x_symbol = (x_word >> ((i - 1) * bits)) & symbol_mask
        row_minimum = infinity
        for j in range(lo, hi + 1):
            y_symbol = (y_word >> ((j - 1) * bits)) & symbol_mask
            if x_symbol == y_symbol:
                cost = previous[j - 1]
            else:
                above = previous[j] if j < i + k else infinity
                cost = 1 + min(above, current[j - 1], previous[j - 1])
                if cost > infinity:
                    cost = infinity
            current[j] = cost
            if cost < row_minimum:
                row_minimum = cost
        if row_minimum > k:
            return None
        if hi + 1 <= len_y:
            current[hi + 1] = infinity
        previous, current = current, previous

    result = previous[len_y]
    return result if result <= k else None


class PackedBucket:
    """A whole length bucket of equal-length strings, packed as arrays.

    Two parallel representations of the same symbols:

    ``codes``
        ``(count, length)`` matrix of dense symbol codes (``uint8``,
        or ``uint16`` for alphabets wider than 256 symbols). This is
        what the vectorized kernels gather from — one fancy-indexing
        ``Peq`` lookup per text column.
    ``packed``
        ``(count, row_bytes)`` matrix of the bit-packed words: each row
        is the string's symbols at ``bits_per_symbol`` bits each,
        symbol 0 in the lowest bits (the :class:`PackedString` layout,
        so ``packed_string(i)`` is a cheap reinterpretation). For DNA's
        3-bit codes this is the ~2.6x compression the paper's
        section 6 anticipates; it is the number the memory accounting
        reports as the corpus' resident payload.

    Build instances with :func:`pack_bucket`.
    """

    __slots__ = ("codes", "packed", "_length", "_alphabet")

    def __init__(self, codes: np.ndarray, packed: np.ndarray,
                 length: int, alphabet: Alphabet) -> None:
        self.codes = codes
        self.packed = packed
        self._length = length
        self._alphabet = alphabet

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet the symbol codes refer to."""
        return self._alphabet

    @property
    def length(self) -> int:
        """The shared string length."""
        return self._length

    @property
    def bits_per_symbol(self) -> int:
        """Bits each symbol occupies in :attr:`packed`."""
        return self._alphabet.bits_per_symbol

    @property
    def count(self) -> int:
        """Number of strings in the bucket."""
        return self.codes.shape[0]

    def __len__(self) -> int:
        return self.codes.shape[0]

    @property
    def codes_nbytes(self) -> int:
        """Bytes of the kernel-facing code matrix (1–2 per symbol)."""
        return self.codes.nbytes

    @property
    def packed_nbytes(self) -> int:
        """Bytes of the bit-packed payload (``bits_per_symbol`` each)."""
        return self.packed.nbytes

    def row_codes(self, index: int) -> tuple[int, ...]:
        """One string's symbol codes as a plain tuple."""
        return tuple(int(code) for code in self.codes[index])

    def packed_string(self, index: int) -> PackedString:
        """Row ``index`` reinterpreted as a :class:`PackedString`.

        The row's bytes *are* the packed word in little-endian order,
        so this is a byte copy plus one ``int.from_bytes`` — no
        re-encoding.
        """
        word = int.from_bytes(self.packed[index].tobytes(), "little")
        return PackedString(word, self._length, self._alphabet)

    def decode(self, index: int) -> str:
        """Recover one original string."""
        return self._alphabet.decode(self.row_codes(index))

    def __repr__(self) -> str:
        return (
            f"PackedBucket(count={len(self)}, length={self._length}, "
            f"bits={self.bits_per_symbol}, "
            f"alphabet={self._alphabet.name!r})"
        )


def code_dtype(alphabet: Alphabet) -> np.dtype:
    """The narrowest unsigned dtype that holds the alphabet's codes."""
    return np.dtype(np.uint8 if alphabet.size <= 256 else np.uint16)


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Bit-pack a ``(count, length)`` code matrix row by row.

    Each output row holds ``length * bits`` payload bits, symbol 0 in
    the lowest bits of byte 0 (LSB-first within each byte), padded with
    zero bits to a whole byte — exactly the :class:`PackedString` word
    serialized little-endian.
    """
    if codes.size == 0:
        return np.zeros((codes.shape[0], 0), dtype=np.uint8)
    shifts = np.arange(bits, dtype=codes.dtype)
    # (count, length, bits) bit planes, LSB first, flattened row-major:
    # the bit stream PackedString defines.
    bit_planes = (
        (codes[:, :, None] >> shifts) & 1
    ).astype(np.uint8).reshape(codes.shape[0], -1)
    return np.packbits(bit_planes, axis=1, bitorder="little")


def unpack_codes(packed: np.ndarray, length: int, bits: int,
                 dtype: np.dtype) -> np.ndarray:
    """Invert :func:`pack_codes` back to a ``(count, length)`` matrix."""
    count = packed.shape[0]
    if length == 0 or count == 0:
        return np.zeros((count, length), dtype=dtype)
    bit_planes = np.unpackbits(
        packed, axis=1, count=length * bits, bitorder="little"
    ).reshape(count, length, bits).astype(dtype)
    shifts = np.arange(bits, dtype=dtype)
    return (bit_planes << shifts).sum(axis=2, dtype=dtype)


def pack_bucket(strings, alphabet: Alphabet, *,
                encoded=None) -> PackedBucket:
    """Pack equal-length ``strings`` into a :class:`PackedBucket`.

    ``encoded`` optionally supplies the already-encoded symbol tuples
    (as :class:`repro.scan.corpus.CompiledCorpus` holds them), skipping
    a second encode pass.

    Raises
    ------
    ReproError
        If the strings do not all share one length.
    AlphabetError
        If a string contains symbols outside the alphabet.
    """
    from repro.exceptions import ReproError

    strings = tuple(strings)
    if encoded is None:
        encoded = tuple(alphabet.encode(s) for s in strings)
    length = len(encoded[0]) if encoded else 0
    for position, row in enumerate(encoded):
        if len(row) != length:
            raise ReproError(
                f"pack_bucket needs equal-length strings: row "
                f"{position} has length {len(row)}, expected {length}"
            )
    dtype = code_dtype(alphabet)
    codes = np.array(encoded, dtype=dtype).reshape(len(encoded), length)
    packed = pack_codes(codes, alphabet.bits_per_symbol)
    return PackedBucket(codes, packed, length, alphabet)


def storage_savings(text: str, alphabet: Alphabet,
                    baseline_bits_per_symbol: int = 8) -> float:
    """Fraction of storage saved by packing versus a byte-per-symbol layout.

    For DNA (3 bits vs 8) this is 0.625, the compression the paper's
    future-work section anticipates.
    """
    if not text:
        return 0.0
    packed_bits = len(text) * alphabet.bits_per_symbol
    baseline_bits = len(text) * baseline_bits_per_symbol
    return 1.0 - packed_bits / baseline_bits
