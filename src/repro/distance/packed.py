"""Dictionary compression: bit-packed strings (paper section 6).

The paper's first future-work item observes that a five-symbol DNA
alphabet needs only three bits per symbol, so strings can be stored far
more compactly and symbol comparisons touch fewer bits in total. This
module implements that idea for any alphabet:

* :func:`pack` converts a string into a :class:`PackedString`, an
  immutable value backed by a single Python integer holding
  ``bits_per_symbol`` bits per symbol.
* :func:`packed_edit_distance_bounded` runs the banded threshold kernel
  directly on the packed representation, decoding symbols on the fly
  with shifts and masks — no intermediate string is materialized.
"""

from __future__ import annotations

from repro.data.alphabet import Alphabet
from repro.distance.banded import check_threshold, length_filter_passes


class PackedString:
    """A string stored as dense symbol codes inside one big integer.

    Supports ``len``, indexing (returning the integer symbol code),
    iteration, equality and hashing, so it can be used wherever the
    distance kernels accept a sequence of symbol codes.

    Build instances with :func:`pack`; decode with :meth:`decode`.
    """

    __slots__ = ("_bits", "_length", "_word", "_alphabet")

    def __init__(self, word: int, length: int, alphabet: Alphabet) -> None:
        self._word = word
        self._length = length
        self._alphabet = alphabet
        self._bits = alphabet.bits_per_symbol

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet the symbol codes refer to."""
        return self._alphabet

    @property
    def bits_per_symbol(self) -> int:
        """Bits each symbol occupies (3 for the DNA alphabet)."""
        return self._bits

    @property
    def word(self) -> int:
        """The raw packed integer (symbol 0 in the lowest bits)."""
        return self._word

    @property
    def storage_bits(self) -> int:
        """Total bits of payload: ``len(self) * bits_per_symbol``."""
        return self._length * self._bits

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range [0, {self._length})")
        mask = (1 << self._bits) - 1
        return (self._word >> (index * self._bits)) & mask

    def __iter__(self):
        word = self._word
        mask = (1 << self._bits) - 1
        for _ in range(self._length):
            yield word & mask
            word >>= self._bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedString):
            return NotImplemented
        return (
            self._word == other._word
            and self._length == other._length
            and self._alphabet == other._alphabet
        )

    def __hash__(self) -> int:
        return hash((self._word, self._length, self._alphabet.name))

    def __repr__(self) -> str:
        preview = self.decode()
        if len(preview) > 24:
            preview = preview[:21] + "..."
        return f"PackedString({preview!r}, alphabet={self._alphabet.name!r})"

    def decode(self) -> str:
        """Recover the original text."""
        return self._alphabet.decode(tuple(self))


def pack(text: str, alphabet: Alphabet) -> PackedString:
    """Pack ``text`` into a :class:`PackedString` under ``alphabet``.

    Raises
    ------
    AlphabetError
        If ``text`` contains symbols outside the alphabet.

    Examples
    --------
    >>> from repro.data.alphabet import DNA_ALPHABET
    >>> packed = pack("ACGT", DNA_ALPHABET)
    >>> packed.storage_bits
    12
    >>> packed.decode()
    'ACGT'
    """
    bits = alphabet.bits_per_symbol
    word = 0
    for position, code in enumerate(alphabet.encode(text)):
        word |= code << (position * bits)
    return PackedString(word, len(text), alphabet)


def packed_edit_distance_bounded(x: PackedString, y: PackedString,
                                 k: int) -> int | None:
    """Bounded edit distance computed directly on packed operands.

    Symbol codes are extracted with shift/mask as the band advances; the
    result is identical to running the banded kernel on the decoded
    strings (a property test enforces this).

    Raises
    ------
    ValueError
        If the operands were packed under different alphabets — their
        symbol codes would not be comparable.
    """
    check_threshold(k)
    if x.alphabet != y.alphabet:
        raise ValueError(
            f"cannot compare strings packed under different alphabets: "
            f"{x.alphabet.name!r} vs {y.alphabet.name!r}"
        )
    len_x = len(x)
    len_y = len(y)
    if not length_filter_passes(len_x, len_y, k):
        return None
    if len_x == 0:
        return len_y if len_y <= k else None
    if len_y == 0:
        return len_x if len_x <= k else None
    if k == 0:
        return 0 if x == y else None

    bits = x.bits_per_symbol
    symbol_mask = (1 << bits) - 1
    x_word = x.word
    y_word = y.word

    infinity = k + 1
    previous = [0] * (len_y + 1)
    current = [0] * (len_y + 1)
    band_hi0 = min(len_y, k)
    for j in range(band_hi0 + 1):
        previous[j] = j
    if band_hi0 + 1 <= len_y:
        previous[band_hi0 + 1] = infinity

    for i in range(1, len_x + 1):
        lo = max(1, i - k)
        hi = min(len_y, i + k)
        current[lo - 1] = i if lo == 1 else infinity
        x_symbol = (x_word >> ((i - 1) * bits)) & symbol_mask
        row_minimum = infinity
        for j in range(lo, hi + 1):
            y_symbol = (y_word >> ((j - 1) * bits)) & symbol_mask
            if x_symbol == y_symbol:
                cost = previous[j - 1]
            else:
                above = previous[j] if j < i + k else infinity
                cost = 1 + min(above, current[j - 1], previous[j - 1])
                if cost > infinity:
                    cost = infinity
            current[j] = cost
            if cost < row_minimum:
                row_minimum = cost
        if row_minimum > k:
            return None
        if hi + 1 <= len_y:
            current[hi + 1] = infinity
        previous, current = current, previous

    result = previous[len_y]
    return result if result <= k else None


def storage_savings(text: str, alphabet: Alphabet,
                    baseline_bits_per_symbol: int = 8) -> float:
    """Fraction of storage saved by packing versus a byte-per-symbol layout.

    For DNA (3 bits vs 8) this is 0.625, the compression the paper's
    future-work section anticipates.
    """
    if not text:
        return 0.0
    packed_bits = len(text) * alphabet.bits_per_symbol
    baseline_bits = len(text) * baseline_bits_per_symbol
    return 1.0 - packed_bits / baseline_bits
