"""Edit-script extraction: *which* operations realize the distance.

The edit distance of section 2.2 counts insert, delete and replace
operations; this module recovers one minimal sequence of them by
backtracing the DP matrix. Applications use it to explain matches
(e.g. highlighting the typo a city-name query contained).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.distance.levenshtein import edit_distance_full_matrix

#: Operation kinds appearing in an edit script.
MATCH = "match"
REPLACE = "replace"
INSERT = "insert"
DELETE = "delete"


@dataclass(frozen=True)
class EditOp:
    """One step of an edit script transforming ``x`` into ``y``.

    Attributes
    ----------
    kind:
        One of ``"match"``, ``"replace"``, ``"insert"``, ``"delete"``.
    x_index:
        Position in ``x`` the operation consumes, or ``None`` for an
        insert (which consumes no ``x`` symbol).
    y_index:
        Position in ``y`` the operation produces, or ``None`` for a
        delete (which produces no ``y`` symbol).
    """

    kind: str
    x_index: int | None
    y_index: int | None

    @property
    def cost(self) -> int:
        """1 for replace/insert/delete, 0 for match."""
        return 0 if self.kind == MATCH else 1


def align(x: Sequence, y: Sequence) -> list[EditOp]:
    """Return one minimal edit script transforming ``x`` into ``y``.

    The script's total :attr:`EditOp.cost` equals the edit distance.
    Ties are broken preferring match/replace over delete over insert,
    which keeps scripts deterministic for testing.

    Examples
    --------
    >>> [op.kind for op in align("AGGCGT", "AGAGT")]
    ['match', 'delete', 'match', 'replace', 'match', 'match']
    """
    matrix = edit_distance_full_matrix(x, y)
    ops: list[EditOp] = []
    i = len(x)
    j = len(y)
    while i > 0 or j > 0:
        here = matrix[i][j]
        if i > 0 and j > 0 and x[i - 1] == y[j - 1] \
                and matrix[i - 1][j - 1] == here:
            ops.append(EditOp(MATCH, i - 1, j - 1))
            i -= 1
            j -= 1
        elif i > 0 and j > 0 and matrix[i - 1][j - 1] + 1 == here:
            ops.append(EditOp(REPLACE, i - 1, j - 1))
            i -= 1
            j -= 1
        elif i > 0 and matrix[i - 1][j] + 1 == here:
            ops.append(EditOp(DELETE, i - 1, None))
            i -= 1
        else:
            ops.append(EditOp(INSERT, None, j - 1))
            j -= 1
    ops.reverse()
    return ops


def edit_script(x: str, y: str) -> list[str]:
    """Human-readable edit script, one line per non-match operation.

    >>> edit_script("Bern", "Berlin")
    ["insert 'l' at 3", "insert 'i' at 4"]
    """
    lines = []
    for op in align(x, y):
        if op.kind == REPLACE:
            assert op.x_index is not None and op.y_index is not None
            lines.append(
                f"replace {x[op.x_index]!r} at {op.x_index} "
                f"with {y[op.y_index]!r}"
            )
        elif op.kind == DELETE:
            assert op.x_index is not None
            lines.append(f"delete {x[op.x_index]!r} at {op.x_index}")
        elif op.kind == INSERT:
            assert op.y_index is not None
            lines.append(f"insert {y[op.y_index]!r} at {op.y_index}")
    return lines


def apply_script(x: str, ops: list[EditOp], y: str) -> str:
    """Apply an edit script produced by :func:`align` to ``x``.

    ``y`` supplies the symbols that inserts and replaces introduce. The
    result always equals ``y``; tests use this to validate scripts.
    """
    out: list[str] = []
    for op in ops:
        if op.kind in (MATCH, REPLACE, INSERT):
            assert op.y_index is not None
            out.append(y[op.y_index])
        # DELETE contributes nothing to the output.
    return "".join(out)
