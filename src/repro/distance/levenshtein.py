"""Reference edit-distance implementation (the paper's base implementation).

This is the textbook full-matrix dynamic program of section 2.2: a matrix
``M`` with ``(len(x) + 1)`` rows and ``(len(y) + 1)`` columns, where

* ``M[i][0] = i`` and ``M[0][j] = j`` (equation 2),
* ``M[i][j] = M[i-1][j-1]`` when ``x[i-1] == y[j-1]`` (equation 3),
* ``M[i][j] = 1 + min(M[i-1][j], M[i][j-1], M[i-1][j-1])`` otherwise
  (equation 4).

It deliberately computes every cell — no filters, no band, no early
abort — because the paper uses exactly this implementation both as the
performance baseline and as the *correctness reference* every optimized
approach is verified against (section 3.1). Keep it boring.
"""

from __future__ import annotations

from typing import Sequence


def edit_distance(x: Sequence, y: Sequence) -> int:
    """Unweighted edit (Levenshtein) distance between ``x`` and ``y``.

    Accepts any two sequences with comparable elements — strings, tuples
    of symbol codes, bytes — and returns the minimal number of insert,
    delete and replace operations (each of cost 1) transforming one into
    the other.

    Examples
    --------
    The worked example of the paper's Figure 1:

    >>> edit_distance("AGGCGT", "AGAGT")
    2
    """
    len_x = len(x)
    len_y = len(y)
    if len_x == 0:
        return len_y
    if len_y == 0:
        return len_x

    # Row-by-row evaluation of the full matrix. ``previous`` is row i-1,
    # ``current`` is row i; both always span every column.
    previous = list(range(len_y + 1))
    for i in range(1, len_x + 1):
        current = [i] + [0] * len_y
        x_symbol = x[i - 1]
        for j in range(1, len_y + 1):
            if x_symbol == y[j - 1]:
                current[j] = previous[j - 1]
            else:
                current[j] = 1 + min(
                    previous[j],        # delete from x
                    current[j - 1],     # insert into x
                    previous[j - 1],    # replace
                )
        previous = current
    return previous[len_y]


def edit_distance_full_matrix(x: Sequence, y: Sequence) -> list[list[int]]:
    """Compute and return the complete DP matrix.

    Useful for inspection, teaching and the alignment backtrace; the
    returned matrix has ``len(x) + 1`` rows and ``len(y) + 1`` columns and
    ``matrix[len(x)][len(y)]`` is the edit distance.
    """
    len_x = len(x)
    len_y = len(y)
    matrix = [[0] * (len_y + 1) for _ in range(len_x + 1)]
    for i in range(len_x + 1):
        matrix[i][0] = i
    for j in range(len_y + 1):
        matrix[0][j] = j
    for i in range(1, len_x + 1):
        x_symbol = x[i - 1]
        row = matrix[i]
        above = matrix[i - 1]
        for j in range(1, len_y + 1):
            if x_symbol == y[j - 1]:
                row[j] = above[j - 1]
            else:
                row[j] = 1 + min(above[j], row[j - 1], above[j - 1])
    return matrix
