"""Edit-distance kernels and related string metrics.

The paper's staged optimizations of the sequential scan (section 3) are
all, at bottom, different ways of computing or avoiding the unweighted
edit distance of section 2.2. This package provides every kernel used by
a stage, plus the related-work and future-work variants:

===========================  ====================================================
Kernel                       Paper stage
===========================  ====================================================
:func:`edit_distance`        base implementation (full DP matrix, section 3.1)
:func:`banded.edit_distance_bounded`
                             "calculation of the edit distance" (length filter,
                             diagonal early abort, Ukkonen band, section 3.2)
:class:`banded.BandedCalculator`
                             "values and references" (buffer reuse, section 3.3)
:func:`bitparallel.myers_distance`
                             "simple data types" (flat integer words, section 3.4)
:func:`hamming.hamming_distance`
                             related work, PETER supports Hamming (section 2.3)
:mod:`packed`                future work: 3-bit dictionary compression (section 6)
===========================  ====================================================

All kernels agree exactly with the reference :func:`edit_distance`;
the test-suite enforces this with property-based tests.
"""

from repro.distance.alignment import EditOp, align, edit_script
from repro.distance.damerau import osa_distance, osa_within, transposition_gain
from repro.distance.weighted import (
    EditCosts,
    keyboard_weights,
    rank_corrections,
    weighted_edit_distance,
)
from repro.distance.banded import (
    BandedCalculator,
    edit_distance_bounded,
    length_filter_passes,
    within_distance,
)
from repro.distance.bitparallel import myers_distance, myers_within
from repro.distance.dispatch import KernelChoice, best_kernel, bounded_distance
from repro.distance.hamming import hamming_distance, hamming_within
from repro.distance.levenshtein import edit_distance
from repro.distance.matrix import DistanceMatrix
from repro.distance.packed import PackedString, pack, packed_edit_distance_bounded

__all__ = [
    "edit_distance",
    "edit_distance_bounded",
    "within_distance",
    "length_filter_passes",
    "BandedCalculator",
    "myers_distance",
    "myers_within",
    "hamming_distance",
    "hamming_within",
    "DistanceMatrix",
    "EditOp",
    "align",
    "edit_script",
    "PackedString",
    "pack",
    "packed_edit_distance_bounded",
    "KernelChoice",
    "best_kernel",
    "bounded_distance",
    "osa_distance",
    "osa_within",
    "transposition_gain",
    "EditCosts",
    "weighted_edit_distance",
    "keyboard_weights",
    "rank_corrections",
]
