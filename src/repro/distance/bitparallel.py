"""Myers bit-parallel edit distance ("simple data types", section 3.4).

The paper's fourth sequential stage replaces complex data structures by
flat primitive ones and re-implements the inner comparisons by hand. The
strongest expression of that idea for edit distance is Myers' 1999
bit-vector algorithm: the DP column deltas are packed into machine words
and one text symbol is processed with a constant number of word-wide
logical operations.

Python integers are arbitrary-precision, so a single "word" covers
patterns of any length — the classic multi-word block extension is not
needed; an ``m``-symbol pattern simply uses an ``m``-bit integer.

Functions here accept strings or tuples of symbol codes. For repeated
queries, precompute the pattern's symbol bitmasks with
:func:`build_peq`.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.distance.banded import check_threshold, length_filter_passes


def build_peq(pattern: Sequence[Hashable]) -> dict[Hashable, int]:
    """Precompute the symbol → bitmask table for ``pattern``.

    Bit ``i`` of ``peq[c]`` is set iff ``pattern[i] == c``.
    """
    peq: dict[Hashable, int] = {}
    for i, symbol in enumerate(pattern):
        peq[symbol] = peq.get(symbol, 0) | (1 << i)
    return peq


def myers_distance(pattern: Sequence[Hashable], text: Sequence[Hashable],
                   peq: Mapping[Hashable, int] | None = None) -> int:
    """Exact edit distance via Myers' bit-parallel algorithm.

    Equivalent to :func:`repro.distance.edit_distance` but processes one
    ``text`` symbol with O(1) big-integer operations instead of an
    O(len(pattern)) inner loop.

    Examples
    --------
    >>> myers_distance("AGGCGT", "AGAGT")
    2
    """
    m = len(pattern)
    if m == 0:
        return len(text)
    if len(text) == 0:
        return m
    if peq is None:
        peq = build_peq(pattern)

    mask = (1 << m) - 1
    last = 1 << (m - 1)
    pv = mask          # vertical positive deltas: initially all +1
    mv = 0             # vertical negative deltas
    score = m
    for symbol in text:
        eq = peq.get(symbol, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        if ph & last:
            score += 1
        elif mh & last:
            score -= 1
        ph = ((ph << 1) | 1) & mask
        mh = (mh << 1) & mask
        pv = mh | (~(xv | ph) & mask)
        mv = ph & xv
    return score


def myers_within(pattern: Sequence[Hashable], text: Sequence[Hashable],
                 k: int,
                 peq: Mapping[Hashable, int] | None = None) -> bool:
    """``True`` iff ``edit_distance(pattern, text) <= k``.

    Applies the length filter (equation 5 of the paper) before running
    the bit-parallel scan, and aborts as soon as the running score can no
    longer come back under ``k`` (the score changes by at most 1 per
    remaining text symbol).
    """
    check_threshold(k)
    m = len(pattern)
    n = len(text)
    if not length_filter_passes(m, n, k):
        return False
    if m == 0 or n == 0:
        return True  # the length filter already bounded the distance
    if peq is None:
        peq = build_peq(pattern)

    mask = (1 << m) - 1
    last = 1 << (m - 1)
    pv = mask
    mv = 0
    score = m
    remaining = n
    for symbol in text:
        eq = peq.get(symbol, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        if ph & last:
            score += 1
        elif mh & last:
            score -= 1
        ph = ((ph << 1) | 1) & mask
        mh = (mh << 1) & mask
        pv = mh | (~(xv | ph) & mask)
        mv = ph & xv
        remaining -= 1
        # The final score differs from the current one by at most the
        # number of unprocessed symbols; prune when it cannot recover.
        if score - remaining > k:
            return False
    return score <= k


class MyersMatcher:
    """A reusable matcher for one query against many data strings.

    Precomputes the query's ``peq`` table once, which is the dominant
    per-call setup cost when the same query is probed against hundreds of
    thousands of dataset strings during a sequential scan.

    >>> matcher = MyersMatcher("Berlin")
    >>> matcher.within("Bern", 2)
    True
    >>> matcher.distance("Bern")
    2
    """

    def __init__(self, pattern: Sequence[Hashable]) -> None:
        self._pattern = pattern
        self._peq = build_peq(pattern)

    @property
    def pattern(self) -> Sequence[Hashable]:
        """The query string this matcher was built for."""
        return self._pattern

    def distance(self, text: Sequence[Hashable]) -> int:
        """Exact edit distance between the pattern and ``text``."""
        return myers_distance(self._pattern, text, self._peq)

    def within(self, text: Sequence[Hashable], k: int) -> bool:
        """Threshold test between the pattern and ``text``."""
        return myers_within(self._pattern, text, k, self._peq)
