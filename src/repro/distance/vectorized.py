"""Numpy-vectorized Myers kernel: one query vs a whole length bucket.

The scalar bit-parallel kernel (:mod:`repro.distance.bitparallel`, and
its inlined twin in :func:`repro.scan.executor.scan_query`) spends most
of its time in the Python interpreter — roughly a dozen bytecodes per
text column *per candidate*. This module runs the same Myers recurrence
across **all candidates of a length bucket at once** as ``numpy`` array
operations, so the interpreter cost per column is paid once per bucket
instead of once per candidate:

* the ``Peq`` table is a ``(alphabet_size, words)`` ``uint64`` matrix;
  each text column gathers every active candidate's ``eq`` row with one
  fancy-indexing lookup on the bucket's code matrix;
* ``Pv``/``Mv`` live as ``(active, words)`` ``uint64`` arrays, updated
  per column with carry-propagating word arithmetic, so queries longer
  than 64 symbols work (multi-word Myers, exactly like the big-int
  scalar kernel);
* the paper's early abort (``score - remaining > k`` can never recover)
  is a shrinking *active set*: provably-dead candidates are compacted
  out, and the bucket finishes early when nobody survives.

Parity with the scalar kernel is exact — identical match sets and
identical distances — enforced by the hypothesis suite in
``tests/distance/test_vectorized.py``. Counter parity follows from an
invariant of the scalar loop: ``score - remaining`` is non-decreasing
and is checked after every column, and at the last column
``remaining == 0``, so *every* non-match trips the abort check and
``early_aborts == kernel_calls - matches`` always. The vectorized path
reports exactly that identity.

Deadlines are polled **between column blocks** (the kernel has no
per-candidate loop to count in): every :data:`DEFAULT_COLUMN_BLOCK`
columns the bucket's work is charged pro-rata against the deadline, so
a :class:`repro.core.deadline.Budget` sees the same total unit count
(one unit per candidate) a scalar scan of the bucket would charge.
"""

from __future__ import annotations

import numpy as np

from repro.core.deadline import Budget, Deadline
from repro.exceptions import DeadlineExceeded

#: Minimum candidates (post-prefilter survivors) for ``kernel="auto"``
#: to pick the vectorized kernel. The vectorized cost is nearly flat in
#: candidate count (~a fixed set of numpy ops per text column) while
#: the scalar loop is linear with a strong early-abort advantage, so
#: the measured crossover on length-100 DNA reads sits around 700-900
#: candidates (see ``BENCH_speed.json``); 1024 picks vectorized only
#: where it clearly wins.
DEFAULT_VECTOR_MIN_BUCKET = 1024

#: Text columns processed between deadline polls.
DEFAULT_COLUMN_BLOCK = 32

_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U63 = np.uint64(63)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


class VectorQuery:
    """One query compiled for vectorized scanning, reusable per bucket.

    Built once per ``(query, k)`` scan by :func:`prepare_query` and then
    applied to every length bucket in the window — the vector analog of
    hoisting :func:`repro.distance.bitparallel.build_peq` out of the
    candidate loop.

    Attributes
    ----------
    peq:
        ``(alphabet_size, words)`` ``uint64`` bit table; row ``c`` holds
        the positions where the query's symbol code equals ``c``.
    n:
        Query length in symbols (``>= 1``).
    words:
        ``ceil(n / 64)`` — the state width per candidate.
    """

    __slots__ = ("peq", "n", "words", "mask_top", "last_word", "last_bit")

    def __init__(self, peq: np.ndarray, n: int) -> None:
        self.peq = peq
        self.n = n
        self.words = peq.shape[1]
        top_bits = n - 64 * (self.words - 1)
        self.mask_top = np.uint64((1 << top_bits) - 1)
        self.last_word = (n - 1) >> 6
        self.last_bit = np.uint64((n - 1) & 63)


def prepare_query(query_codes, alphabet_size: int) -> VectorQuery:
    """Build the :class:`VectorQuery` for an encoded query.

    ``query_codes`` may contain ``-1`` for symbols outside the corpus
    alphabet (see :meth:`repro.scan.corpus.CompiledCorpus.encode_query`);
    such positions set no ``peq`` bit, so they can never match any
    candidate symbol — the raw-string semantics.
    """
    n = len(query_codes)
    if n == 0:
        raise ValueError("prepare_query needs a non-empty query")
    words = (n + 63) >> 6
    peq = np.zeros((max(alphabet_size, 1), words), dtype=np.uint64)
    for position, code in enumerate(query_codes):
        if 0 <= code < alphabet_size:
            peq[code, position >> 6] |= np.uint64(1 << (position & 63))
    return VectorQuery(peq, n)


def _charge(deadline: Deadline | Budget, units: int, *, count: int,
            column: int, length: int) -> None:
    """Poll the deadline mid-bucket, raising on expiry.

    The raised exception carries no partial matches — no candidate of
    the in-flight bucket has been fully verified — and the caller
    (:func:`repro.scan.executor.scan_query`) re-raises with the matches
    proven by *previous* buckets attached.
    """
    if deadline.spend(units):
        raise DeadlineExceeded(
            f"vectorized bucket scan exceeded its deadline at column "
            f"{column} of {length} ({count} candidates in flight)",
            scope="candidates", completed=0, total=count,
        )


def bucket_distances(vq: VectorQuery, codes: np.ndarray, k: int, *,
                     deadline: Deadline | Budget | None = None,
                     block: int = DEFAULT_COLUMN_BLOCK) -> np.ndarray:
    """Bounded distances from one query to every row of a code matrix.

    Parameters
    ----------
    vq:
        The compiled query (see :func:`prepare_query`).
    codes:
        ``(count, length)`` unsigned-integer symbol-code matrix — one
        equal-length candidate per row, e.g.
        :attr:`repro.distance.packed.PackedBucket.codes`.
    k:
        The distance threshold.
    deadline:
        Optional deadline/budget, polled every ``block`` columns. The
        whole bucket charges ``count`` work units, pro-rated across the
        blocks actually executed, matching the scalar kernel's
        one-unit-per-candidate accounting.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of shape ``(count,)``: the exact edit distance
        where it is ``<= k``, and ``k + 1`` for every candidate the
        threshold excluded (whether early-aborted or completed).
    """
    count, length = codes.shape
    words = vq.words
    n = vq.n
    over = k + 1
    final = np.full(count, over, dtype=np.int64)
    if count == 0:
        return final
    if length == 0:
        # Distance to an empty candidate is the query length.
        if n <= k:
            final[:] = n
        return final

    peq = vq.peq
    mask_top = vq.mask_top
    last_word = vq.last_word
    last_bit = vq.last_bit

    active = np.arange(count)
    score = np.full(count, n, dtype=np.int64)
    pv = np.full((count, words), _FULL, dtype=np.uint64)
    pv[:, -1] = mask_top
    mv = np.zeros((count, words), dtype=np.uint64)
    xh = np.empty((count, words), dtype=np.uint64)

    charged = 0
    for column in range(length):
        if deadline is not None and column and column % block == 0:
            # Pro-rata charge: by column j the bucket has done j/length
            # of its candidate-units of work.
            due = count * column // length
            _charge(deadline, due - charged, count=count,
                    column=column, length=length)
            charged = due

        eq = peq[codes[active, column]]
        xv = eq | mv
        # (eq & pv) + pv with carry propagation across the word axis —
        # the multi-word form of the scalar kernel's big-int addition.
        carry = np.zeros(len(active), dtype=np.uint64)
        for w in range(words):
            addend = eq[:, w] & pv[:, w]
            total = addend + pv[:, w]
            overflow = total < addend
            total += carry
            overflow |= total < carry
            carry = overflow.astype(np.uint64)
            xh[:, w] = (total ^ pv[:, w]) | eq[:, w]
        ph = mv | ~(xh | pv)
        ph[:, -1] &= mask_top
        mh = pv & xh

        inc = (ph[:, last_word] >> last_bit) & _U1
        dec = (mh[:, last_word] >> last_bit) & _U1
        score += inc.astype(np.int64)
        score -= dec.astype(np.int64)

        remaining = length - column - 1
        dead = score - remaining > k
        if dead.any():
            keep = ~dead
            if not keep.any():
                if deadline is not None:
                    _charge(deadline, count - charged, count=count,
                            column=column, length=length)
                return final
            active = active[keep]
            score = score[keep]
            pv = pv[keep]
            mv = mv[keep]
            xv = xv[keep]
            ph = ph[keep]
            mh = mh[keep]
            xh = xh[: len(active)]

        # Shift ph/mh left one bit across the word boundary, then close
        # the column exactly like the scalar kernel.
        spill_ph = ph >> _U63
        spill_mh = mh >> _U63
        ph <<= _U1
        mh <<= _U1
        if words > 1:
            ph[:, 1:] |= spill_ph[:, :-1]
            mh[:, 1:] |= spill_mh[:, :-1]
        ph[:, 0] |= _U1
        ph[:, -1] &= mask_top
        mh[:, -1] &= mask_top
        pv = mh | ~(xv | ph)
        pv[:, -1] &= mask_top
        mv = ph & xv

    if deadline is not None:
        _charge(deadline, count - charged, count=count,
                column=length, length=length)
    final[active] = score
    return final
