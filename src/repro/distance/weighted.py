"""Weighted edit distance: when not all errors are equally likely.

The paper fixes every operation's cost at 1 ("unweighted edit
distance", section 2.2) because the competition said so. Applications
that actually model *typing* errors — the paper's own motivation —
usually want more: substituting a key for its neighbour should cost
less than substituting across the keyboard. This module generalizes
the DP to per-operation costs, including a ready-made QWERTY
neighbour model.

Costs must be positive; when every cost is 1 the result equals the
unweighted distance (a property test pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.exceptions import ReproError

#: QWERTY rows used by :func:`keyboard_weights`.
_QWERTY_ROWS = ("qwertyuiop", "asdfghjkl", "zxcvbnm")


@dataclass(frozen=True)
class EditCosts:
    """Operation costs for the weighted DP.

    Attributes
    ----------
    insert / delete:
        Flat costs per inserted/deleted symbol.
    substitute:
        Callable ``(a, b) -> cost`` for replacing ``a`` with ``b``;
        it is never called with ``a == b`` (matches are free).
    """

    insert: float = 1.0
    delete: float = 1.0
    substitute: Callable[[str, str], float] = field(
        default=lambda a, b: 1.0
    )

    def __post_init__(self) -> None:
        if self.insert <= 0 or self.delete <= 0:
            raise ReproError(
                "insert and delete costs must be positive"
            )


def weighted_edit_distance(x: Sequence, y: Sequence,
                           costs: EditCosts = EditCosts()) -> float:
    """Minimal total cost of transforming ``x`` into ``y``.

    With default costs this equals the unweighted edit distance:

    >>> weighted_edit_distance("AGGCGT", "AGAGT")
    2.0
    """
    len_x = len(x)
    len_y = len(y)
    insert_cost = costs.insert
    delete_cost = costs.delete
    substitute = costs.substitute

    previous = [j * insert_cost for j in range(len_y + 1)]
    for i in range(1, len_x + 1):
        current = [i * delete_cost] + [0.0] * len_y
        x_symbol = x[i - 1]
        for j in range(1, len_y + 1):
            y_symbol = y[j - 1]
            if x_symbol == y_symbol:
                best = previous[j - 1]
            else:
                best = previous[j - 1] + substitute(x_symbol, y_symbol)
            with_delete = previous[j] + delete_cost
            if with_delete < best:
                best = with_delete
            with_insert = current[j - 1] + insert_cost
            if with_insert < best:
                best = with_insert
            current[j] = best
        previous = current
    return previous[len_y]


def keyboard_weights(adjacent_cost: float = 0.5,
                     distant_cost: float = 1.0,
                     case_cost: float = 0.25) -> EditCosts:
    """An :class:`EditCosts` modelling QWERTY typing errors.

    * swapping a letter for a horizontally/vertically adjacent key
      costs ``adjacent_cost``;
    * wrong-case versions of the same letter cost ``case_cost``;
    * everything else costs ``distant_cost``.

    >>> costs = keyboard_weights()
    >>> weighted_edit_distance("cat", "cst", costs)   # a-s are neighbours
    0.5
    >>> weighted_edit_distance("cat", "cpt", costs)   # a-p are not
    1.0
    """
    if not 0 < adjacent_cost <= distant_cost:
        raise ReproError(
            "need 0 < adjacent_cost <= distant_cost"
        )
    neighbours: dict[str, set[str]] = {}

    def link(a: str, b: str) -> None:
        neighbours.setdefault(a, set()).add(b)
        neighbours.setdefault(b, set()).add(a)

    for row in _QWERTY_ROWS:
        for left, right in zip(row, row[1:]):
            link(left, right)
    for upper, lower in zip(_QWERTY_ROWS, _QWERTY_ROWS[1:]):
        for position, symbol in enumerate(lower):
            if position < len(upper):
                link(symbol, upper[position])
            if position + 1 < len(upper):
                link(symbol, upper[position + 1])

    def substitute(a: str, b: str) -> float:
        if a.lower() == b.lower():
            return case_cost
        if b.lower() in neighbours.get(a.lower(), ()):
            return adjacent_cost
        return distant_cost

    return EditCosts(substitute=substitute)


def rank_corrections(query: str, candidates: Sequence[str],
                     costs: EditCosts | None = None,
                     limit: int = 5) -> list[tuple[str, float]]:
    """Candidates ranked by weighted distance to ``query``.

    A drop-in refinement step after a threshold search: retrieve with
    the fast unweighted kernels, re-rank the short list with the typo
    model.

    >>> rank_corrections("cst", ["cat", "cut", "cot"], limit=2)
    [('cat', 0.5), ('cot', 1.0)]
    """
    if costs is None:
        costs = keyboard_weights()
    scored = [
        (candidate, weighted_edit_distance(query, candidate, costs))
        for candidate in candidates
    ]
    scored.sort(key=lambda item: (item[1], item[0]))
    return scored[:limit]
