"""An inspectable DP matrix, rendering like the paper's Figure 1.

:class:`DistanceMatrix` wraps the full dynamic program so examples,
documentation and tests can look inside the computation: read individual
cells, extract diagonals (the objects the early-abort conditions 6/7
reason about), and render the matrix as text.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.distance.levenshtein import edit_distance_full_matrix


class DistanceMatrix:
    """The complete edit-distance matrix for two strings.

    >>> m = DistanceMatrix("AGGCGT", "AGAGT")
    >>> m.distance
    2
    >>> m[4, 3]   # row 4, column 3
    2
    >>> m.shape
    (7, 6)
    """

    def __init__(self, x: Sequence, y: Sequence) -> None:
        self._x = x
        self._y = y
        self._cells = edit_distance_full_matrix(x, y)

    @property
    def x(self) -> Sequence:
        """The row string (first operand)."""
        return self._x

    @property
    def y(self) -> Sequence:
        """The column string (second operand)."""
        return self._y

    @property
    def shape(self) -> tuple[int, int]:
        """``(len(x) + 1, len(y) + 1)`` — rows and columns."""
        return len(self._x) + 1, len(self._y) + 1

    @property
    def distance(self) -> int:
        """The edit distance: the bottom-right cell."""
        return self._cells[len(self._x)][len(self._y)]

    def __getitem__(self, index: tuple[int, int]) -> int:
        row, column = index
        return self._cells[row][column]

    def row(self, i: int) -> list[int]:
        """A copy of row ``i``."""
        return list(self._cells[i])

    def column(self, j: int) -> list[int]:
        """A copy of column ``j``."""
        return [row[j] for row in self._cells]

    def diagonal(self, offset: int = 0) -> list[int]:
        """Cells with ``j - i == offset``, top-left to bottom-right.

        ``offset = len(y) - len(x)`` is the diagonal through the final
        cell — the one conditions (6)/(7) of the paper monitor. Values
        along any diagonal are non-decreasing, which tests verify.
        """
        rows, columns = self.shape
        cells = []
        for i in range(rows):
            j = i + offset
            if 0 <= j < columns:
                cells.append(self._cells[i][j])
        return cells

    def final_diagonal(self) -> list[int]:
        """The diagonal that ends in the distance cell."""
        return self.diagonal(len(self._y) - len(self._x))

    def iter_cells(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(i, j, value)`` for every cell, row-major."""
        for i, row in enumerate(self._cells):
            for j, value in enumerate(row):
                yield i, j, value

    def render(self) -> str:
        """Render the matrix as aligned text, like the paper's Figure 1.

        >>> print(DistanceMatrix("AG", "AGA").render())
            A G A
          0 1 2 3
        A 1 0 1 2
        G 2 1 0 1
        """
        width = max(2, len(str(max(len(self._x), len(self._y)))) + 1)
        x_labels = [" "] + [str(s) for s in self._x]
        header = " " * (width - 1) + "".join(
            f"{str(s):>{width}}" for s in [" ", *self._y]
        )
        lines = [header.rstrip()]
        for i, row in enumerate(self._cells):
            label = x_labels[i] if i < len(x_labels) else "?"
            body = "".join(f"{value:>{width}}" for value in row)
            lines.append(f"{label}{body}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DistanceMatrix(x={self._x!r}, y={self._y!r}, "
            f"distance={self.distance})"
        )
