"""Hamming distance: the substitution-only metric PETER also supports.

The paper's main related-work system, PETER (section 2.3), answers both
edit-distance and Hamming-distance queries; reads of equal length are
often compared under Hamming distance in genomics because sequencing
errors are predominantly substitutions.
"""

from __future__ import annotations

from typing import Sequence

from repro.distance.banded import check_threshold


def hamming_distance(x: Sequence, y: Sequence) -> int:
    """Number of positions at which equal-length ``x`` and ``y`` differ.

    Raises
    ------
    ValueError
        If the operands have different lengths — the Hamming distance is
        undefined in that case (use edit distance instead).

    Examples
    --------
    >>> hamming_distance("GATTACA", "GACTACA")
    1
    """
    if len(x) != len(y):
        raise ValueError(
            f"hamming distance needs equal lengths, got {len(x)} and {len(y)}"
        )
    return sum(1 for a, b in zip(x, y) if a != b)


def hamming_within(x: Sequence, y: Sequence, k: int) -> bool:
    """``True`` iff ``hamming_distance(x, y) <= k``, with early exit.

    Unlike :func:`hamming_distance` this never raises on a length
    mismatch: strings of different lengths are trivially not within any
    Hamming threshold.
    """
    check_threshold(k)
    if len(x) != len(y):
        return False
    mismatches = 0
    for a, b in zip(x, y):
        if a != b:
            mismatches += 1
            if mismatches > k:
                return False
    return True
