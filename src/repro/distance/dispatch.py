"""Kernel dispatch: pick the cheapest correct kernel for a comparison.

The paper tunes one pipeline per dataset by hand; a library should make
the choice automatically. The heuristics encoded here follow the cost
structure the evaluation exposes:

* ``k = 0`` is an equality test — no DP at all.
* Small ``k`` relative to the operand length favours the banded kernel
  (O(k·n) cells).
* Large ``k`` (the DNA regime, k up to 16 on length-100 reads) favours
  the bit-parallel kernel, whose cost is O(n²/w) independent of ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.distance.banded import (
    check_threshold,
    edit_distance_bounded,
    length_filter_passes,
)
from repro.distance.bitparallel import myers_distance
from repro.distance.packed import PackedString, packed_edit_distance_bounded


class KernelChoice(Enum):
    """Which kernel :func:`best_kernel` selected."""

    EQUALITY = "equality"
    BANDED = "banded"
    BIT_PARALLEL = "bit-parallel"
    PACKED = "packed"


#: Band cells per bit-parallel word-op at which banding stops paying off.
#: Derived from microbenchmarks of the two pure-Python inner loops; the
#: exact value only moves the crossover, never correctness.
_BAND_BREAK_EVEN = 3


@dataclass(frozen=True)
class _Decision:
    choice: KernelChoice
    reason: str


def _decide(len_x: int, len_y: int, k: int) -> _Decision:
    if k == 0:
        return _Decision(KernelChoice.EQUALITY, "k = 0 is an equality test")
    # Banded work ~ (2k + 1) * min(len) cells; Myers work ~ len_y word ops.
    band_cells = (2 * k + 1) * min(len_x, len_y)
    myers_ops = max(len_x, len_y) * _BAND_BREAK_EVEN
    if band_cells <= myers_ops:
        return _Decision(
            KernelChoice.BANDED,
            f"band of {band_cells} cells is under the bit-parallel "
            f"break-even of {myers_ops}",
        )
    return _Decision(
        KernelChoice.BIT_PARALLEL,
        f"threshold {k} makes the band ({band_cells} cells) more "
        f"expensive than {max(len_x, len_y)} word ops",
    )


def best_kernel(len_x: int, len_y: int, k: int) -> KernelChoice:
    """Pick the cheapest kernel for operands of these lengths at ``k``."""
    check_threshold(k)
    return _decide(len_x, len_y, k).choice


def explain_kernel(len_x: int, len_y: int, k: int) -> str:
    """Human-readable rationale for :func:`best_kernel`'s choice."""
    check_threshold(k)
    decision = _decide(len_x, len_y, k)
    return f"{decision.choice.value}: {decision.reason}"


def bounded_distance(x: Sequence, y: Sequence, k: int) -> int | None:
    """Bounded edit distance through the dispatching front end.

    Returns the distance when it is at most ``k`` and ``None`` otherwise,
    delegating to whichever kernel :func:`best_kernel` selects.

    :class:`repro.distance.packed.PackedString` operands are routed to
    :func:`repro.distance.packed.packed_edit_distance_bounded`
    automatically — the comparison runs shift/mask on the packed words,
    never materializing the decoded text (:data:`KernelChoice.PACKED`).
    A packed operand paired with a plain string is decoded first, since
    symbol codes and characters do not compare.
    """
    check_threshold(k)
    if isinstance(x, PackedString) or isinstance(y, PackedString):
        if isinstance(x, PackedString) and isinstance(y, PackedString):
            return packed_edit_distance_bounded(x, y, k)
        x = x.decode() if isinstance(x, PackedString) else x
        y = y.decode() if isinstance(y, PackedString) else y
    if not length_filter_passes(len(x), len(y), k):
        return None
    choice = _decide(len(x), len(y), k).choice
    if choice is KernelChoice.EQUALITY:
        same = len(x) == len(y) and all(a == b for a, b in zip(x, y))
        return 0 if same else None
    if choice is KernelChoice.BANDED:
        return edit_distance_bounded(x, y, k)
    distance = myers_distance(x, y)
    return distance if distance <= k else None
