"""Damerau extension: transpositions as a fourth edit operation.

The paper's applications section motivates tolerance to *typing
errors* — and the single most common typing error is swapping two
adjacent characters, which plain Levenshtein charges 2 for. The
optimal-string-alignment (OSA) variant implemented here charges 1 for
an adjacent transposition (with the standard OSA restriction that no
substring is edited twice), giving applications a strictly more
forgiving matcher for the same threshold.

Note OSA is *not* a metric (the triangle inequality can fail), so it
must not be used with metric indexes like the BK-tree; the sequential
scan and the filters' length bound remain sound
(``|len(x) - len(y)|`` still lower-bounds the OSA distance).
"""

from __future__ import annotations

from typing import Sequence

from repro.distance.banded import check_threshold


def osa_distance(x: Sequence, y: Sequence) -> int:
    """Optimal-string-alignment distance (Levenshtein + transposition).

    Examples
    --------
    >>> osa_distance("Bern", "Bren")      # one transposition
    1
    >>> from repro.distance import edit_distance
    >>> edit_distance("Bern", "Bren")     # Levenshtein needs two edits
    2
    """
    len_x = len(x)
    len_y = len(y)
    if len_x == 0:
        return len_y
    if len_y == 0:
        return len_x

    two_back: list[int] = []
    previous = list(range(len_y + 1))
    for i in range(1, len_x + 1):
        current = [i] + [0] * len_y
        x_symbol = x[i - 1]
        for j in range(1, len_y + 1):
            if x_symbol == y[j - 1]:
                cost = previous[j - 1]
            else:
                cost = 1 + min(previous[j], current[j - 1],
                               previous[j - 1])
            if (
                i > 1 and j > 1
                and x_symbol == y[j - 2]
                and x[i - 2] == y[j - 1]
            ):
                transposed = two_back[j - 2] + 1
                if transposed < cost:
                    cost = transposed
            current[j] = cost
        two_back = previous
        previous = current
    return previous[len_y]


def osa_within(x: Sequence, y: Sequence, k: int) -> bool:
    """``True`` iff the OSA distance is at most ``k``.

    Applies the length filter first (still sound for OSA: equalizing
    lengths needs ``|len(x) - len(y)|`` inserts/deletes; transpositions
    do not change length).
    """
    check_threshold(k)
    if abs(len(x) - len(y)) > k:
        return False
    return osa_distance(x, y) <= k


def transposition_gain(x: Sequence, y: Sequence) -> int:
    """How many edits the transposition operation saves for this pair.

    ``edit_distance(x, y) - osa_distance(x, y)`` — zero whenever no
    adjacent swap helps.
    """
    from repro.distance.levenshtein import edit_distance

    return edit_distance(x, y) - osa_distance(x, y)
