"""Master–slave adaptive thread manager on real threads (section 3.6).

The paper's third strategy dedicates one master thread to opening and
closing workers by utilization rules (open above 70 %, close below
30 %), solving the locking problem of concurrent resize decisions by
making the master the only decision maker. This module implements that
design faithfully on :mod:`threading`:

* workers pull work items from a shared queue;
* utilization is observed as ``busy workers / alive workers`` — the
  process-level proxy the paper's rules operate on;
* only the master mutates the pool, so no resize races exist.

Under the GIL this cannot *speed up* CPU-bound work — tests assert the
management behaviour (growth under load, shrinkage when idle, identical
results), while the wall-clock story lives in the scheduler model.
"""

from __future__ import annotations

import threading
import time as time_module
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.exceptions import ParallelismError
from repro.parallel.metrics import UtilizationSample

Q = TypeVar("Q")
R = TypeVar("R")


@dataclass(frozen=True)
class ManagerRules:
    """Open/close rules of the paper's adaptive strategy."""

    min_threads: int = 1
    max_threads: int = 16
    open_threshold: float = 0.7
    close_threshold: float = 0.3
    sample_interval: float = 0.01

    def __post_init__(self) -> None:
        if self.min_threads < 1:
            raise ParallelismError(
                f"min_threads must be >= 1, got {self.min_threads}"
            )
        if self.max_threads < self.min_threads:
            raise ParallelismError(
                f"max_threads ({self.max_threads}) below min_threads "
                f"({self.min_threads})"
            )
        if not 0.0 <= self.close_threshold <= self.open_threshold <= 1.0:
            raise ParallelismError(
                "need 0 <= close_threshold <= open_threshold <= 1"
            )
        if self.sample_interval <= 0:
            raise ParallelismError("sample_interval must be positive")


class AdaptiveManager:
    """Run one batch of queries under master–slave thread management.

    A fresh manager is built per batch (mirroring the paper's
    measurement window: pool lifetime == batch lifetime).

    >>> manager = AdaptiveManager(ManagerRules(min_threads=2))
    >>> manager.run(lambda q: q * 2, [1, 2, 3])
    [2, 4, 6]
    """

    name = "adaptive"

    def __init__(self, rules: ManagerRules = ManagerRules()) -> None:
        self._rules = rules
        self._samples: list[UtilizationSample] = []
        self._threads_opened = 0
        self._peak_threads = 0

    @property
    def rules(self) -> ManagerRules:
        """The configured open/close rules."""
        return self._rules

    @property
    def utilization_samples(self) -> tuple[UtilizationSample, ...]:
        """Samples taken by the master during the last run."""
        return tuple(self._samples)

    @property
    def threads_opened(self) -> int:
        """Workers created during the last run."""
        return self._threads_opened

    @property
    def peak_threads(self) -> int:
        """Largest simultaneous pool size during the last run."""
        return self._peak_threads

    def run(self, function: Callable[[Q], R],
            queries: Sequence[Q]) -> list[R]:
        """Execute the batch; results keep input order."""
        self._samples = []
        self._threads_opened = 0
        self._peak_threads = 0
        if not queries:
            return []

        results: list[R | None] = [None] * len(queries)
        errors: list[BaseException] = []
        lock = threading.Lock()
        next_index = 0
        busy_count = 0
        done = threading.Event()

        # Worker lifecycle: each worker owns a stop flag only the master
        # sets, so shrinking never races with another resize decision.
        stop_flags: list[threading.Event] = []
        workers: list[threading.Thread] = []

        def worker(stop_flag: threading.Event) -> None:
            nonlocal next_index, busy_count
            while not stop_flag.is_set():
                with lock:
                    if next_index >= len(queries):
                        break
                    index = next_index
                    next_index += 1
                    busy_count += 1
                try:
                    results[index] = function(queries[index])
                except BaseException as error:
                    with lock:
                        errors.append(error)
                        busy_count -= 1
                    break
                with lock:
                    busy_count -= 1
            with lock:
                remaining = next_index < len(queries)
            if not remaining:
                done.set()

        def spawn() -> None:
            stop_flag = threading.Event()
            thread = threading.Thread(
                target=worker, args=(stop_flag,), daemon=True
            )
            stop_flags.append(stop_flag)
            workers.append(thread)
            self._threads_opened += 1
            thread.start()
            alive_now = sum(1 for t in workers if t.is_alive())
            self._peak_threads = max(self._peak_threads, alive_now)

        start = time_module.monotonic()
        for _ in range(self._rules.min_threads):
            spawn()

        # The master: sample, apply the rules, wait for completion.
        while not done.is_set():
            done.wait(self._rules.sample_interval)
            with lock:
                finished = next_index >= len(queries)
                busy = busy_count
                had_errors = bool(errors)
            alive = sum(1 for thread in workers if thread.is_alive())
            self._peak_threads = max(self._peak_threads, alive)
            if finished or had_errors:
                break
            utilization = busy / alive if alive else 1.0
            self._samples.append(
                UtilizationSample(
                    time_module.monotonic() - start, alive, busy
                )
            )
            if (utilization > self._rules.open_threshold
                    and alive < self._rules.max_threads):
                spawn()
            elif (utilization < self._rules.close_threshold
                    and alive > self._rules.min_threads):
                # Retire exactly one worker; it exits after its current
                # item, never mid-query.
                for flag, thread in zip(stop_flags, workers):
                    if thread.is_alive() and not flag.is_set():
                        flag.set()
                        break

        for flag in stop_flags:
            flag.set()
        for thread in workers:
            thread.join()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]
