"""Strategy descriptors for parallel query execution.

A strategy is a small immutable value naming *how* a batch of queries
should be spread over workers; executors and the scheduler model both
consume these, so an experiment can measure the same strategy on either
surface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ParallelismError


class Strategy:
    """Marker base class for execution strategies."""

    #: Short name used in reports and tables.
    name: str = "strategy"


@dataclass(frozen=True)
class SerialStrategy(Strategy):
    """No parallelism: the baseline every speedup is measured against."""

    name: str = "serial"


@dataclass(frozen=True)
class ThreadPerQueryStrategy(Strategy):
    """Paper strategy 1: open (and close) one thread for every query.

    The paper keeps this stage only as a cautionary tale — creation
    overhead exceeds typical query time (section 5.3.5).
    """

    name: str = "thread-per-query"


@dataclass(frozen=True)
class FixedPoolStrategy(Strategy):
    """Paper strategy 2: a fixed pool of ``threads`` workers.

    Queries are statically partitioned; ``threads`` equal to the core
    count is the paper's stated intent, with a sweep over 4/8/16/32 in
    the evaluation.
    """

    threads: int = 8
    name: str = "fixed-pool"

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ParallelismError(
                f"a fixed pool needs at least one thread, got {self.threads}"
            )


@dataclass(frozen=True)
class AdaptiveStrategy(Strategy):
    """Paper strategy 3: master–slave adaptive thread management.

    A dedicated master opens a worker when average utilization exceeds
    ``open_threshold`` and closes one when it falls below
    ``close_threshold`` (the paper's example rules: 70 % / 30 %).
    Workers pull queries from a shared queue, so load balancing is
    dynamic regardless of the current pool size.
    """

    min_threads: int = 1
    max_threads: int = 32
    open_threshold: float = 0.7
    close_threshold: float = 0.3
    name: str = "adaptive"

    def __post_init__(self) -> None:
        if self.min_threads < 1:
            raise ParallelismError(
                f"min_threads must be at least 1, got {self.min_threads}"
            )
        if self.max_threads < self.min_threads:
            raise ParallelismError(
                f"max_threads ({self.max_threads}) below min_threads "
                f"({self.min_threads})"
            )
        if not 0.0 <= self.close_threshold <= self.open_threshold <= 1.0:
            raise ParallelismError(
                "thresholds must satisfy "
                "0 <= close_threshold <= open_threshold <= 1, got "
                f"close={self.close_threshold}, open={self.open_threshold}"
            )
