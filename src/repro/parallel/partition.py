"""Static query partitioning for fixed worker pools.

The paper's one-thread-per-core strategy needs "a balanced distribution
of queries on the different cores ... through a simple partitioning"
(section 3.6). Two classic schemes are provided; both preserve overall
result order when chunk outputs are re-concatenated by chunk index.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.exceptions import ParallelismError

T = TypeVar("T")


def balanced_chunks(items: Sequence[T], chunks: int) -> list[list[T]]:
    """Split ``items`` into ``chunks`` contiguous, near-equal runs.

    Sizes differ by at most one; empty chunks appear only when there are
    more chunks than items.

    >>> balanced_chunks([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    """
    if chunks < 1:
        raise ParallelismError(f"chunks must be positive, got {chunks}")
    base = len(items) // chunks
    remainder = len(items) % chunks
    result: list[list[T]] = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < remainder else 0)
        result.append(list(items[start:start + size]))
        start += size
    return result


def partition_dataset(items: Sequence[T], shards: int, *,
                      scheme: str = "round_robin") -> list[list[T]]:
    """Split a *dataset* (not a query batch) into ``shards`` parts.

    Used by :class:`repro.service.ShardedCorpus` to spread the corpus
    over independently searchable shards. ``"round_robin"`` (default)
    interleaves so shards see statistically similar length/prefix
    mixes — important when a deadline aborts lagging shards, since each
    completed shard should be a representative sample. ``"balanced"``
    keeps contiguous runs (better prefix locality per shard).

    >>> partition_dataset(["a", "b", "c"], 2)
    [['a', 'c'], ['b']]
    """
    if scheme == "round_robin":
        return round_robin_chunks(items, shards)
    if scheme == "balanced":
        return balanced_chunks(items, shards)
    raise ParallelismError(
        f"unknown partition scheme {scheme!r}; "
        "expected 'round_robin' or 'balanced'"
    )


def round_robin_chunks(items: Sequence[T], chunks: int) -> list[list[T]]:
    """Deal ``items`` round-robin over ``chunks`` lists.

    Interleaving spreads expensive neighbouring queries (query files are
    often sorted!) across workers better than contiguous runs.

    >>> round_robin_chunks([1, 2, 3, 4, 5], 2)
    [[1, 3, 5], [2, 4]]
    """
    if chunks < 1:
        raise ParallelismError(f"chunks must be positive, got {chunks}")
    result: list[list[T]] = [[] for _ in range(chunks)]
    for index, item in enumerate(items):
        result[index % chunks].append(item)
    return result
