"""Result records for scheduler-model runs.

A :class:`SimulationResult` carries everything a thread-sweep table
needs: modelled wall-clock time, the work actually performed, and the
utilization timeline that drives (and explains) the adaptive manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class UtilizationSample:
    """One utilization observation: ``busy / alive`` workers at ``time``."""

    time: float
    alive: int
    busy: int

    @property
    def utilization(self) -> float:
        """Fraction of alive workers that were busy (0.0 when none alive)."""
        if self.alive == 0:
            return 0.0
        return self.busy / self.alive


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one scheduler-model run.

    Attributes
    ----------
    wall_time:
        Modelled elapsed seconds from batch start to last join.
    total_work:
        Sum of all per-query service times (invariant across strategies:
        parallelism spreads work, never removes it).
    queries:
        Number of queries executed.
    threads_opened:
        Workers created over the whole run (>= peak for adaptive runs).
    peak_threads:
        Largest number of simultaneously alive workers.
    creation_overhead:
        Modelled seconds spent creating/joining threads.
    contention_overhead:
        Worker-seconds lost waiting because more workers were runnable
        than cores exist (0 whenever the pool never oversubscribes).
    utilization_samples:
        Timeline of utilization observations (adaptive runs sample on
        the manager's cadence; static runs sample at task boundaries).
    """

    wall_time: float
    total_work: float
    queries: int
    threads_opened: int
    peak_threads: int
    creation_overhead: float = 0.0
    contention_overhead: float = 0.0
    utilization_samples: tuple[UtilizationSample, ...] = field(
        default_factory=tuple
    )

    @property
    def speedup_bound(self) -> float:
        """``total_work / wall_time`` — effective parallelism achieved."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.total_work / self.wall_time

    @property
    def mean_utilization(self) -> float:
        """Average of the utilization samples (0.0 when none taken)."""
        if not self.utilization_samples:
            return 0.0
        total = sum(s.utilization for s in self.utilization_samples)
        return total / len(self.utilization_samples)

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"wall={self.wall_time:.3f}s work={self.total_work:.3f}s "
            f"queries={self.queries} threads={self.threads_opened} "
            f"(peak {self.peak_threads}) "
            f"speedup={self.speedup_bound:.2f}x"
        )
