"""Deterministic scheduler model for thread-count experiments.

CPython's GIL serializes CPU-bound threads, so the paper's thread-count
sweeps (Tables II, IV, VI, VIII) cannot be measured directly in Python.
This module substitutes a *processor-sharing scheduler model*: given the
**measured** single-thread cost of every query, it replays how a batch
would unfold on ``cores`` cores under each of the paper's strategies,
modelling exactly the three effects the paper's numbers exhibit:

* **creation/join overhead** — threads are created serially by the
  master and joined serially at the end; many short-lived threads lose
  (thread-per-query, Table III stage 5);
* **core contention** — when more workers are runnable than cores
  exist, everyone's rate drops and context switching wastes extra time
  (32 threads on 100 city queries, Table II);
* **load balancing** — static partitions suffer from skewed query
  costs; more (or dynamically managed) workers smooth the skew, which
  is why 16–32 threads win on the long-running DNA batches
  (Tables VI/VIII).

The model is fully deterministic: the same costs and parameters always
produce the same wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ParallelismError
from repro.parallel.metrics import SimulationResult, UtilizationSample
from repro.parallel.partition import round_robin_chunks
from repro.parallel.strategies import AdaptiveStrategy

#: Workers never advance by less than this, to keep the loop finite in
#: the face of float rounding.
_EPSILON = 1e-12


@dataclass(frozen=True)
class SchedulerModel:
    """Hardware/runtime parameters of the modelled machine.

    Defaults approximate the paper's testbed: a virtualized 8-core i7
    where thread creation was expensive enough to dominate short
    queries (section 5.3.5).

    Parameters
    ----------
    cores:
        Physical parallelism available.
    thread_create_cost:
        Seconds the master spends creating one thread (serialized).
    thread_join_cost:
        Seconds the master spends joining one thread (serialized).
    context_switch_penalty:
        Fractional rate loss per unit of oversubscription: with ``b``
        busy workers on ``c < b`` cores, each runs at
        ``(c / b) / (1 + penalty * (b / c - 1))``.
    manager_interval:
        Sampling cadence of the adaptive manager, seconds.
    """

    cores: int = 8
    thread_create_cost: float = 0.05
    thread_join_cost: float = 0.01
    context_switch_penalty: float = 0.10
    manager_interval: float = 0.25

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ParallelismError(f"cores must be >= 1, got {self.cores}")
        if self.thread_create_cost < 0 or self.thread_join_cost < 0:
            raise ParallelismError("thread costs must be non-negative")
        if self.context_switch_penalty < 0:
            raise ParallelismError(
                "context_switch_penalty must be non-negative"
            )
        if self.manager_interval <= 0:
            raise ParallelismError("manager_interval must be positive")

    def rate(self, busy: int) -> float:
        """Execution rate of each busy worker (1.0 = full core speed)."""
        if busy <= 0:
            return 1.0
        if busy <= self.cores:
            return 1.0
        oversubscription = busy / self.cores
        return (self.cores / busy) / (
            1.0 + self.context_switch_penalty * (oversubscription - 1.0)
        )


class _Worker:
    """Mutable per-worker state inside the model."""

    __slots__ = ("available_at", "queue", "remaining", "busy", "closed")

    def __init__(self, available_at: float,
                 queue: list[float]) -> None:
        self.available_at = available_at
        self.queue = queue          # per-worker backlog (static modes)
        self.remaining = 0.0        # work left on the current query
        self.busy = False
        self.closed = False


def _validate_costs(costs: Sequence[float]) -> list[float]:
    validated = []
    for index, cost in enumerate(costs):
        if cost < 0:
            raise ParallelismError(
                f"query cost at index {index} is negative: {cost}"
            )
        validated.append(float(cost))
    return validated


def simulate_serial(costs: Sequence[float]) -> SimulationResult:
    """The no-parallelism baseline: wall time is simply the total work."""
    validated = _validate_costs(costs)
    total = sum(validated)
    return SimulationResult(
        wall_time=total, total_work=total, queries=len(validated),
        threads_opened=0, peak_threads=0,
    )


def simulate_fixed_pool(costs: Sequence[float], threads: int,
                        model: SchedulerModel = SchedulerModel(),
                        ) -> SimulationResult:
    """Paper strategy 2: ``threads`` workers over a static partition.

    Queries are dealt round-robin (the paper's "simple partitioning");
    each worker then runs its backlog sequentially.
    """
    if threads < 1:
        raise ParallelismError(f"threads must be >= 1, got {threads}")
    validated = _validate_costs(costs)
    chunks = round_robin_chunks(validated, threads)
    return _run_static(chunks, model, queries=len(validated))


def simulate_thread_per_query(costs: Sequence[float],
                              model: SchedulerModel = SchedulerModel(),
                              ) -> SimulationResult:
    """Paper strategy 1: one short-lived worker per query."""
    validated = _validate_costs(costs)
    chunks = [[cost] for cost in validated]
    if not chunks:
        return simulate_serial([])
    return _run_static(chunks, model, queries=len(validated))


def _run_static(chunks: list[list[float]], model: SchedulerModel,
                queries: int) -> SimulationResult:
    """Processor-sharing replay of statically partitioned work."""
    total_work = sum(sum(chunk) for chunk in chunks)
    workers = [
        _Worker(available_at=(i + 1) * model.thread_create_cost,
                queue=list(chunk))
        for i, chunk in enumerate(chunks)
    ]
    creation_overhead = len(workers) * model.thread_create_cost
    join_overhead = len(workers) * model.thread_join_cost

    time = 0.0
    contention_wait = 0.0
    samples: list[UtilizationSample] = []

    while True:
        # Activate workers whose creation finished and start next tasks.
        for worker in workers:
            if worker.closed or worker.busy:
                continue
            if worker.available_at <= time + _EPSILON:
                if worker.queue:
                    worker.remaining = worker.queue.pop(0)
                    worker.busy = True
                    # Zero-cost queries complete instantly.
                    while worker.busy and worker.remaining <= _EPSILON:
                        if worker.queue:
                            worker.remaining = worker.queue.pop(0)
                        else:
                            worker.busy = False
                            worker.closed = True
                else:
                    worker.closed = True

        busy_workers = [w for w in workers if w.busy]
        if not busy_workers:
            pending = [
                w.available_at for w in workers
                if not w.closed and not w.busy and w.available_at > time
            ]
            if not pending:
                break
            time = min(pending)
            continue

        rate = model.rate(len(busy_workers))
        next_completion = min(w.remaining for w in busy_workers) / rate
        upcoming = [
            w.available_at - time for w in workers
            if not w.closed and not w.busy and w.available_at > time
        ]
        delta = next_completion
        if upcoming:
            delta = min(delta, min(upcoming))
        delta = max(delta, _EPSILON)

        alive = sum(
            1 for w in workers
            if not w.closed and w.available_at <= time + _EPSILON
        )
        samples.append(UtilizationSample(time, alive, len(busy_workers)))

        for worker in busy_workers:
            worker.remaining -= delta * rate
            if worker.remaining <= _EPSILON:
                worker.remaining = 0.0
                worker.busy = False
                if not worker.queue:
                    worker.closed = True
        contention_wait += delta * len(busy_workers) * (1.0 - rate)
        time += delta

    wall = time + join_overhead
    return SimulationResult(
        wall_time=wall,
        total_work=total_work,
        queries=queries,
        threads_opened=len(workers),
        peak_threads=len(workers),
        creation_overhead=creation_overhead + join_overhead,
        contention_overhead=contention_wait,
        utilization_samples=tuple(samples),
    )


def simulate_work_stealing(costs: Sequence[float], threads: int,
                           model: SchedulerModel = SchedulerModel(),
                           steal_cost: float = 0.0005,
                           ) -> SimulationResult:
    """A fixed pool with work stealing: idle workers raid busy backlogs.

    Starts from the same static round-robin partition as
    :func:`simulate_fixed_pool`, but a worker that drains its own
    backlog steals the tail half of the largest remaining backlog
    (paying ``steal_cost`` seconds per steal). This bounds the
    imbalance penalty of skewed workloads without the master thread the
    paper's adaptive strategy needs — the classic third way between
    static partitioning and a shared queue.
    """
    if threads < 1:
        raise ParallelismError(f"threads must be >= 1, got {threads}")
    if steal_cost < 0:
        raise ParallelismError("steal_cost must be non-negative")
    validated = _validate_costs(costs)
    if not validated:
        return simulate_serial([])
    chunks = round_robin_chunks(validated, threads)
    total_work = sum(validated)

    workers = [
        _Worker(available_at=(i + 1) * model.thread_create_cost,
                queue=list(chunk))
        for i, chunk in enumerate(chunks)
    ]
    time = 0.0
    contention_wait = 0.0
    steals = 0

    while True:
        # Activation + stealing happen at event boundaries.
        for worker in workers:
            if worker.closed or worker.busy:
                continue
            if worker.available_at > time + _EPSILON:
                continue
            if not worker.queue:
                # Steal the tail half of the largest backlog.
                victim = max(
                    (w for w in workers if len(w.queue) > 1),
                    key=lambda w: len(w.queue), default=None,
                )
                if victim is not None:
                    half = len(victim.queue) // 2
                    worker.queue = victim.queue[-half:]
                    del victim.queue[-half:]
                    steals += 1
                    # The steal's bookkeeping delays this worker a bit.
                    worker.available_at = time + steal_cost
                    continue
            if worker.queue:
                worker.remaining = worker.queue.pop(0)
                worker.busy = worker.remaining > _EPSILON
                while worker.queue and not worker.busy:
                    worker.remaining = worker.queue.pop(0)
                    worker.busy = worker.remaining > _EPSILON
                if not worker.busy and not worker.queue:
                    worker.closed = True
            else:
                worker.closed = True

        busy_workers = [w for w in workers if w.busy]
        if not busy_workers:
            pending = [
                w.available_at for w in workers
                if not w.closed and not w.busy
                and w.available_at > time
            ]
            if not pending:
                break
            time = min(pending)
            continue

        rate = model.rate(len(busy_workers))
        delta = min(w.remaining for w in busy_workers) / rate
        upcoming = [
            w.available_at - time for w in workers
            if not w.closed and not w.busy and w.available_at > time
        ]
        if upcoming:
            delta = min(delta, min(upcoming))
        delta = max(delta, _EPSILON)
        for worker in busy_workers:
            worker.remaining -= delta * rate
            if worker.remaining <= _EPSILON:
                worker.remaining = 0.0
                worker.busy = False
        contention_wait += delta * len(busy_workers) * (1.0 - rate)
        time += delta

    wall = time + threads * model.thread_join_cost
    return SimulationResult(
        wall_time=wall,
        total_work=total_work,
        queries=len(validated),
        threads_opened=threads,
        peak_threads=threads,
        creation_overhead=threads * (model.thread_create_cost
                                     + model.thread_join_cost),
        contention_overhead=contention_wait,
    )


def simulate_adaptive(costs: Sequence[float],
                      strategy: AdaptiveStrategy = AdaptiveStrategy(),
                      model: SchedulerModel = SchedulerModel(),
                      ) -> SimulationResult:
    """Paper strategy 3: master–slave manager over a shared work queue.

    Workers pull queries from one queue (dynamic load balancing); a
    dedicated master samples utilization every ``model.manager_interval``
    seconds, opening a worker above ``open_threshold`` and retiring an
    idle worker below ``close_threshold``.
    """
    validated = _validate_costs(costs)
    if not validated:
        return simulate_serial([])

    queue = list(validated)
    total_work = sum(validated)
    workers: list[_Worker] = []
    threads_opened = 0
    peak = 0

    def spawn(now: float) -> None:
        nonlocal threads_opened
        workers.append(
            _Worker(available_at=now + model.thread_create_cost, queue=[])
        )
        threads_opened += 1

    for _ in range(strategy.min_threads):
        spawn(threads_opened * model.thread_create_cost)

    time = 0.0
    next_tick = model.manager_interval
    contention_wait = 0.0
    samples: list[UtilizationSample] = []

    while True:
        for worker in workers:
            if worker.closed or worker.busy:
                continue
            if worker.available_at <= time + _EPSILON and queue:
                worker.remaining = queue.pop(0)
                worker.busy = worker.remaining > _EPSILON
                while queue and not worker.busy:
                    worker.remaining = queue.pop(0)
                    worker.busy = worker.remaining > _EPSILON

        busy_workers = [w for w in workers if w.busy]
        alive = sum(
            1 for w in workers
            if not w.closed and w.available_at <= time + _EPSILON
        )
        peak = max(peak, alive)

        if not busy_workers and not queue:
            break

        rate = model.rate(len(busy_workers))
        candidates = [next_tick - time]
        if busy_workers:
            candidates.append(min(w.remaining for w in busy_workers) / rate)
        pending = [
            w.available_at - time for w in workers
            if not w.closed and not w.busy and w.available_at > time
        ]
        if pending:
            candidates.append(min(pending))
        delta = max(min(candidates), _EPSILON)

        for worker in busy_workers:
            worker.remaining -= delta * rate
            if worker.remaining <= _EPSILON:
                worker.remaining = 0.0
                worker.busy = False
        contention_wait += delta * len(busy_workers) * (1.0 - rate)
        time += delta

        if time + _EPSILON >= next_tick:
            next_tick += model.manager_interval
            busy = sum(1 for w in workers if w.busy)
            alive = sum(
                1 for w in workers
                if not w.closed and w.available_at <= time + _EPSILON
            )
            utilization = busy / alive if alive else 1.0
            samples.append(UtilizationSample(time, alive, busy))
            if (queue and utilization > strategy.open_threshold
                    and alive < strategy.max_threads):
                spawn(time)
            elif utilization < strategy.close_threshold \
                    and alive > strategy.min_threads:
                for worker in workers:
                    if (not worker.closed and not worker.busy
                            and worker.available_at <= time + _EPSILON):
                        worker.closed = True
                        break

    for worker in workers:
        worker.closed = True
    wall = time + threads_opened * model.thread_join_cost
    creation = threads_opened * (
        model.thread_create_cost + model.thread_join_cost
    )
    return SimulationResult(
        wall_time=wall,
        total_work=total_work,
        queries=len(validated),
        threads_opened=threads_opened,
        peak_threads=peak,
        creation_overhead=creation,
        contention_overhead=contention_wait,
        utilization_samples=tuple(samples),
    )
