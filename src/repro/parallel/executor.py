"""Real executors: run a query function over a batch, in parallel or not.

These are the *actual* execution backends searchers use. Each runner
maps a callable over queries and returns results in input order, so the
choice of runner can never change a result set — only elapsed time
(and, under the GIL, barely that for CPU-bound work; the scheduler
model in :mod:`repro.parallel.simulator` exists for exactly that
reason).

``ProcessPoolRunner`` achieves true parallelism for picklable work; it
is the practical choice for large batch runs of this library.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
from typing import Callable, Sequence, TypeVar

from repro.exceptions import ParallelismError
from repro.parallel.partition import balanced_chunks

Q = TypeVar("Q")
R = TypeVar("R")

QueryFunction = Callable[[Q], R]


class SerialRunner:
    """Run queries one after another on the calling thread."""

    name = "serial"

    def run(self, function: QueryFunction, queries: Sequence[Q]) -> list[R]:
        """Apply ``function`` to each query, preserving order."""
        return [function(query) for query in queries]


class ThreadPerQueryRunner:
    """Paper strategy 1: spawn one thread per query, join it, repeat batch.

    Kept deliberately naive — it demonstrates (and lets tests assert)
    that results are identical to serial execution while the overhead
    story of section 5.3.5 plays out.

    ``max_live`` bounds simultaneously running threads so a 100,000-query
    batch cannot exhaust process limits; the paper's C++ version had the
    same practical cap via stack exhaustion, just less politely.
    """

    name = "thread-per-query"

    def __init__(self, max_live: int = 128) -> None:
        if max_live < 1:
            raise ParallelismError(f"max_live must be >= 1, got {max_live}")
        self._max_live = max_live

    def run(self, function: QueryFunction, queries: Sequence[Q]) -> list[R]:
        """Apply ``function`` to each query on its own thread."""
        results: list[R | None] = [None] * len(queries)
        errors: list[BaseException] = []

        def work(index: int, query: Q) -> None:
            try:
                results[index] = function(query)
            except BaseException as error:  # propagated after join
                errors.append(error)

        live: list[threading.Thread] = []
        for index, query in enumerate(queries):
            thread = threading.Thread(
                target=work, args=(index, query), daemon=True
            )
            thread.start()
            live.append(thread)
            if len(live) >= self._max_live:
                for thread in live:
                    thread.join()
                live.clear()
        for thread in live:
            thread.join()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]


class ThreadPoolRunner:
    """Paper strategy 2/3 plumbing: a fixed pool of pull-workers.

    Workers pull indices from a shared queue (dynamic load balancing,
    as the paper's managed variant does). Results keep input order.
    """

    name = "thread-pool"

    def __init__(self, threads: int = 8) -> None:
        if threads < 1:
            raise ParallelismError(f"threads must be >= 1, got {threads}")
        self._threads = threads

    @property
    def threads(self) -> int:
        """Pool size."""
        return self._threads

    def run(self, function: QueryFunction, queries: Sequence[Q]) -> list[R]:
        """Apply ``function`` to each query across the pool."""
        if not queries:
            return []
        results: list[R | None] = [None] * len(queries)
        errors: list[BaseException] = []
        work_queue: queue_module.SimpleQueue[int | None] = (
            queue_module.SimpleQueue()
        )
        for index in range(len(queries)):
            work_queue.put(index)
        worker_count = min(self._threads, len(queries))
        for _ in range(worker_count):
            work_queue.put(None)  # one poison pill per worker

        def worker() -> None:
            while True:
                index = work_queue.get()
                if index is None:
                    return
                try:
                    results[index] = function(queries[index])
                except BaseException as error:
                    errors.append(error)
                    return

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(worker_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]


def _run_chunk(payload: tuple[QueryFunction, list[Q]]) -> list[R]:
    """Module-level helper so process pools can pickle the work unit."""
    function, chunk = payload
    return [function(query) for query in chunk]


def runner_from_strategy(strategy):
    """Build the real executor matching a strategy descriptor.

    Maps :mod:`repro.parallel.strategies` values onto their executors,
    so experiment code can hold one strategy object and obtain either
    surface (this, or the scheduler model) from it.

    >>> from repro.parallel.strategies import FixedPoolStrategy
    >>> runner_from_strategy(FixedPoolStrategy(threads=4)).threads
    4
    """
    from repro.parallel.adaptive import AdaptiveManager, ManagerRules
    from repro.parallel.strategies import (
        AdaptiveStrategy,
        FixedPoolStrategy,
        SerialStrategy,
        ThreadPerQueryStrategy,
    )

    if isinstance(strategy, SerialStrategy):
        return SerialRunner()
    if isinstance(strategy, ThreadPerQueryStrategy):
        return ThreadPerQueryRunner()
    if isinstance(strategy, FixedPoolStrategy):
        return ThreadPoolRunner(threads=strategy.threads)
    if isinstance(strategy, AdaptiveStrategy):
        return AdaptiveManager(ManagerRules(
            min_threads=strategy.min_threads,
            max_threads=strategy.max_threads,
            open_threshold=strategy.open_threshold,
            close_threshold=strategy.close_threshold,
        ))
    raise ParallelismError(
        f"no executor for strategy {strategy!r}"
    )


class ProcessPoolRunner:
    """True parallelism via worker processes (picklable work only).

    Queries are split into contiguous chunks, one per worker, because
    per-query dispatch would drown in pickling overhead for the
    sub-millisecond queries this library produces.
    """

    name = "process-pool"

    def __init__(self, processes: int | None = None) -> None:
        if processes is not None and processes < 1:
            raise ParallelismError(
                f"processes must be >= 1, got {processes}"
            )
        self._processes = processes or multiprocessing.cpu_count()

    @property
    def processes(self) -> int:
        """Pool size."""
        return self._processes

    def run(self, function: QueryFunction, queries: Sequence[Q]) -> list[R]:
        """Apply ``function`` to each query across worker processes."""
        if not queries:
            return []
        worker_count = min(self._processes, len(queries))
        chunks = balanced_chunks(list(queries), worker_count)
        payloads = [(function, chunk) for chunk in chunks if chunk]
        with multiprocessing.Pool(processes=worker_count) as pool:
            chunk_results = pool.map(_run_chunk, payloads)
        results: list[R] = []
        for chunk_result in chunk_results:
            results.extend(chunk_result)
        return results
