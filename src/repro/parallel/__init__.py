"""Parallel execution: strategies, real executors, and a scheduler model.

The paper evaluates three parallelization strategies (sections 3.5/3.6):

1. **thread per query** — lowest effort, drowns in creation overhead;
2. **fixed pool** — one thread per core (or a sweep over 4/8/16/32);
3. **adaptive management** — a master–slave manager that opens a thread
   when average utilization exceeds 70 % and closes one below 30 %.

Two execution surfaces implement them:

* :mod:`repro.parallel.executor` — *real* executors on
  :mod:`threading` / :mod:`multiprocessing`. Faithful plumbing, but
  CPython's GIL serializes CPU-bound threads, so thread counts cannot
  reproduce the paper's wall-clock sweeps here.
* :mod:`repro.parallel.simulator` — a deterministic processor-sharing
  scheduler model. Fed with *measured* single-thread per-query costs,
  it replays the paper's Tables II, IV, VI and VIII: creation overhead,
  core contention and load balancing are modelled explicitly.

DESIGN.md documents this substitution; both surfaces are tested for the
invariant that strategy choice never changes results, only time.
"""

from repro.parallel.adaptive import AdaptiveManager, ManagerRules
from repro.parallel.executor import (
    ProcessPoolRunner,
    SerialRunner,
    ThreadPerQueryRunner,
    ThreadPoolRunner,
    runner_from_strategy,
)
from repro.parallel.metrics import SimulationResult, UtilizationSample
from repro.parallel.partition import (
    balanced_chunks,
    partition_dataset,
    round_robin_chunks,
)
from repro.parallel.simulator import (
    SchedulerModel,
    simulate_adaptive,
    simulate_fixed_pool,
    simulate_thread_per_query,
    simulate_work_stealing,
)
from repro.parallel.strategies import (
    AdaptiveStrategy,
    FixedPoolStrategy,
    SerialStrategy,
    Strategy,
    ThreadPerQueryStrategy,
)

__all__ = [
    "Strategy",
    "SerialStrategy",
    "ThreadPerQueryStrategy",
    "FixedPoolStrategy",
    "AdaptiveStrategy",
    "balanced_chunks",
    "partition_dataset",
    "round_robin_chunks",
    "SerialRunner",
    "ThreadPoolRunner",
    "ThreadPerQueryRunner",
    "ProcessPoolRunner",
    "runner_from_strategy",
    "AdaptiveManager",
    "ManagerRules",
    "SchedulerModel",
    "simulate_fixed_pool",
    "simulate_thread_per_query",
    "simulate_adaptive",
    "simulate_work_stealing",
    "SimulationResult",
    "UtilizationSample",
]
