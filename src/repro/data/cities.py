"""Synthetic world city-name generator (Table I: "City names").

The competition's geographical dataset is not distributed, so this
generator produces names with the same statistical shape the paper
relies on (section 2.4 and Table I):

* short strings — length capped at 64, typically 6–20 symbols,
* a large alphabet (~255 symbols) spanning several scripts,
* natural-language structure: names are built from per-"language"
  syllable inventories with prefixes, suffixes and compounding, so the
  set contains near-duplicates exactly the way real gazetteers do
  ("Neustadt", "Neustadt am Rübenberge", ...).

Generation is deterministic given a seed, so experiments are repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.alphabet import Alphabet, city_alphabet

#: Maximum city-name length from Table I of the paper.
MAX_CITY_NAME_LENGTH = 64


@dataclass(frozen=True)
class _LanguageModel:
    """Syllable inventory and morphology for one synthetic language."""

    name: str
    onsets: tuple[str, ...]
    vowels: tuple[str, ...]
    codas: tuple[str, ...]
    prefixes: tuple[str, ...] = ()
    suffixes: tuple[str, ...] = ()
    connectors: tuple[str, ...] = (" ",)
    weight: float = 1.0


_LANGUAGES: tuple[_LanguageModel, ...] = (
    _LanguageModel(
        name="germanic",
        onsets=("b", "br", "d", "f", "g", "gr", "h", "k", "kl", "l", "m",
                "n", "r", "s", "sch", "st", "w", "z"),
        vowels=("a", "e", "i", "o", "u", "ei", "au", "ie", "ä", "ö", "ü"),
        codas=("", "n", "r", "l", "s", "ch", "ck", "rg", "nd", "rn", "tt"),
        prefixes=("Neu", "Alt", "Ober", "Unter", "Bad ", "Groß", "Klein"),
        suffixes=("burg", "berg", "dorf", "hausen", "heim", "stadt", "feld",
                  "bach", "tal", "hofen"),
        connectors=(" ", " am ", " an der ", "-"),
        weight=2.0,
    ),
    _LanguageModel(
        name="romance",
        onsets=("b", "c", "d", "f", "g", "l", "m", "n", "p", "r", "s", "t",
                "v", "vi", "gi"),
        vowels=("a", "e", "i", "o", "u", "ia", "io", "é", "á", "í", "ó"),
        codas=("", "n", "r", "s", "l"),
        prefixes=("San ", "Santa ", "Villa", "Porto ", "Monte "),
        suffixes=("o", "a", "ella", "ino", "ona", "ia"),
        connectors=(" ", " de ", " del ", " di "),
        weight=1.6,
    ),
    _LanguageModel(
        name="slavic",
        onsets=("b", "br", "d", "dr", "g", "k", "kr", "l", "m", "n", "p",
                "r", "s", "st", "v", "z", "ž", "č"),
        vowels=("a", "e", "i", "o", "u", "y"),
        codas=("", "v", "n", "k", "sk", "ck"),
        prefixes=("Novo", "Staro", "Velik"),
        suffixes=("ov", "ovo", "iče", "grad", "ice", "no", "sk"),
        connectors=(" ", "-"),
        weight=1.2,
    ),
    _LanguageModel(
        name="anglo",
        onsets=("b", "bl", "c", "ch", "d", "f", "g", "h", "k", "l", "m",
                "n", "p", "r", "s", "sh", "t", "th", "w", "wh"),
        vowels=("a", "e", "i", "o", "u", "ea", "oo", "ou"),
        codas=("", "n", "r", "l", "m", "ck", "th", "rd", "nd"),
        prefixes=("New ", "Old ", "East ", "West ", "North ", "South ",
                  "Lake ", "Fort ", "Port ", "Mount "),
        suffixes=("ton", "ville", "field", "wood", "ford", "port", "dale",
                  "borough", "chester", " City", " Springs", " Falls"),
        connectors=(" ", " upon "),
        weight=1.8,
    ),
    _LanguageModel(
        name="nordic",
        onsets=("b", "d", "f", "fj", "g", "h", "hj", "k", "l", "m", "n",
                "r", "s", "sk", "t", "v"),
        vowels=("a", "e", "i", "o", "u", "ø", "å", "æ", "ei"),
        codas=("", "n", "r", "l", "s", "nd", "rg"),
        suffixes=("vik", "sund", "fjord", "havn", "strand", "dal", "nes"),
        connectors=(" ",),
        weight=0.8,
    ),
    _LanguageModel(
        name="hellenic",
        onsets=("Θ", "Λ", "Π", "Σ", "Κ", "Δ", "θ", "λ", "π", "σ", "κ", "δ"),
        vowels=("α", "ε", "ι", "ο", "ω"),
        codas=("", "ς", "ν"),
        suffixes=("πολις", "ος", "ια"),
        connectors=(" ",),
        weight=0.3,
    ),
    _LanguageModel(
        name="cyrillic",
        onsets=("Б", "В", "Г", "Д", "К", "Л", "М", "Н", "П", "С", "б", "в",
                "г", "д", "к", "л", "м", "н", "п", "с"),
        vowels=("а", "е", "и", "о", "у", "ы"),
        codas=("", "в", "н", "к"),
        suffixes=("град", "ово", "ск", "поль"),
        connectors=(" ", "-"),
        weight=0.5,
    ),
    _LanguageModel(
        name="cjk",
        onsets=("北", "上", "広", "山", "川", "市", "京", "海", "島", "町", "村"),
        vowels=("",),
        codas=("",),
        suffixes=("市", "町", "村"),
        connectors=("",),
        weight=0.2,
    ),
)


@dataclass
class CityNameGenerator:
    """Deterministic generator of synthetic city names.

    Parameters
    ----------
    seed:
        Seed for the private :class:`random.Random` instance. The same
        seed always produces the same dataset.
    alphabet:
        Target alphabet; generated names are guaranteed to validate
        against it (symbols outside it never appear, by construction of
        the language models).

    Examples
    --------
    >>> names = CityNameGenerator(seed=7).generate(3)
    >>> len(names)
    3
    >>> all(len(name) <= 64 for name in names)
    True
    """

    seed: int = 2013
    alphabet: Alphabet = field(default_factory=city_alphabet)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        weights = [language.weight for language in _LANGUAGES]
        self._languages = _LANGUAGES
        self._weights = weights

    def _syllable(self, language: _LanguageModel) -> str:
        rng = self._rng
        return (
            rng.choice(language.onsets)
            + rng.choice(language.vowels)
            + rng.choice(language.codas)
        )

    def _stem(self, language: _LanguageModel) -> str:
        syllables = self._rng.choices((1, 2, 3), weights=(2, 5, 2))[0]
        stem = "".join(self._syllable(language) for _ in range(syllables))
        return stem.capitalize()

    def generate_one(self) -> str:
        """Generate a single city name (length ≤ 64)."""
        rng = self._rng
        language = rng.choices(self._languages, weights=self._weights)[0]
        name = self._stem(language)
        if language.prefixes and rng.random() < 0.18:
            name = rng.choice(language.prefixes) + name.lower().capitalize()
        if language.suffixes and rng.random() < 0.55:
            name += rng.choice(language.suffixes)
        # Compounds: "X an der Y", "X-Y", matching gazetteer structure.
        if rng.random() < 0.12:
            connector = rng.choice(language.connectors)
            name = name + connector + self._stem(language)
        return name[:MAX_CITY_NAME_LENGTH]

    def generate(self, count: int, *, unique: bool = False) -> list[str]:
        """Generate ``count`` names.

        With ``unique=True`` duplicates are rejected and regenerated; by
        default duplicates are kept, as real gazetteers contain repeated
        names (there are dozens of Springfields).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if not unique:
            return [self.generate_one() for _ in range(count)]
        names: list[str] = []
        seen: set[str] = set()
        attempts = 0
        while len(names) < count:
            name = self.generate_one()
            attempts += 1
            if name not in seen:
                seen.add(name)
                names.append(name)
            if attempts > 100 * max(count, 1):
                raise RuntimeError(
                    "could not generate enough unique names; "
                    "the language models saturate below the requested count"
                )
        return names


def generate_city_names(count: int, seed: int = 2013, *,
                        unique: bool = False) -> list[str]:
    """Convenience wrapper: ``CityNameGenerator(seed).generate(count)``."""
    return CityNameGenerator(seed=seed).generate(count, unique=unique)
