"""Query workloads: the (queries, threshold) half of an experiment.

The paper measures 100, 500 and 1,000 queries against each dataset
(section 5.2) at the thresholds of Table I. A :class:`Workload` bundles
the query strings with their threshold ``k``; :func:`make_workload`
builds one the way the competition did — by sampling dataset strings and
perturbing them, so that every query has at least one match and the
searcher's result-collection path is genuinely exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.data.corruptions import apply_random_edits
from repro.distance.banded import check_threshold
from repro.exceptions import ReproError, WorkloadError

#: Query counts measured throughout the paper's evaluation.
PAPER_QUERY_COUNTS = (100, 500, 1000)

#: Thresholds from Table I.
CITY_THRESHOLDS = (0, 1, 2, 3)
DNA_THRESHOLDS = (0, 4, 8, 16)


@dataclass(frozen=True)
class Workload:
    """An immutable batch of similarity queries sharing one threshold.

    Attributes
    ----------
    queries:
        The query strings, in execution order.
    k:
        The edit-distance threshold every query runs at.
    name:
        Label used by the benchmark harness ("city-100" etc.).
    """

    queries: tuple[str, ...]
    k: int
    name: str = "workload"

    def __post_init__(self) -> None:
        check_threshold(self.k)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.queries)

    def take(self, count: int) -> "Workload":
        """A prefix workload with the first ``count`` queries.

        ``count`` larger than the workload clamps to the whole workload
        and keeps the original name — the label only carries a
        ``[:count]`` suffix when it truly truncates, so a report never
        claims more queries than it ran.

        Raises
        ------
        WorkloadError
            If ``count`` is negative.
        """
        if count < 0:
            raise WorkloadError(
                f"cannot take {count} queries from workload "
                f"{self.name!r}: count must be non-negative"
            )
        if count >= len(self.queries):
            return self
        return Workload(self.queries[:count], self.k,
                        f"{self.name}[:{count}]")


def make_workload(dataset: Sequence[str], count: int, k: int, *,
                  alphabet_symbols: str,
                  seed: int = 2013,
                  perturb: bool = True,
                  name: str = "workload") -> Workload:
    """Sample ``count`` queries for ``dataset`` at threshold ``k``.

    Each query starts from a uniformly sampled dataset string; with
    ``perturb=True`` (the default) a uniform number of edits in
    ``[0, k]`` is applied, so the workload mixes exact and approximate
    hits exactly the way competition query sets do. Every perturbed
    query therefore still has at least one guaranteed match at ``k``.

    Raises
    ------
    ReproError
        If the dataset is empty — there is nothing to sample from.
    """
    check_threshold(k)
    if count < 0:
        raise WorkloadError(
            f"count must be non-negative, got {count}"
        )
    if not dataset:
        raise ReproError("cannot build a workload from an empty dataset")
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        base = dataset[rng.randrange(len(dataset))]
        if perturb and k > 0:
            edits = rng.randint(0, k)
            base = apply_random_edits(base, edits, alphabet_symbols, rng)
        queries.append(base)
    return Workload(tuple(queries), k, name)


def save_workload(workload: Workload, path) -> None:
    """Persist a workload: queries in the competition's line format,
    threshold and name in a ``<path>.meta.json`` sidecar.

    The query file stays byte-compatible with competition tooling; the
    sidecar carries what that format cannot (``k``, the label).
    """
    import json
    from pathlib import Path

    from repro.data.io import write_strings

    path = Path(path)
    write_strings(path, workload.queries)
    sidecar = path.with_suffix(path.suffix + ".meta.json")
    sidecar.write_text(
        json.dumps({"k": workload.k, "name": workload.name}),
        encoding="utf-8",
    )


def load_workload(path) -> Workload:
    """Load a workload saved by :func:`save_workload`.

    Raises
    ------
    ReproError
        If the sidecar is missing or malformed — a bare query file has
        no threshold, so it cannot round-trip into a workload.
    """
    import json
    from pathlib import Path

    from repro.data.io import read_queries

    path = Path(path)
    sidecar = path.with_suffix(path.suffix + ".meta.json")
    if not sidecar.exists():
        raise ReproError(
            f"no metadata sidecar at {sidecar}; a bare query file has "
            "no threshold (load it with read_queries and build a "
            "Workload yourself)"
        )
    try:
        metadata = json.loads(sidecar.read_text(encoding="utf-8"))
        k = metadata["k"]
        name = metadata.get("name", path.stem)
    except (ValueError, KeyError, TypeError) as error:
        raise ReproError(
            f"malformed workload sidecar {sidecar}: {error}"
        ) from error
    return Workload(tuple(read_queries(path)), k, name)


def paper_workloads(dataset: Sequence[str], k: int, *,
                    alphabet_symbols: str, seed: int = 2013,
                    name: str = "workload",
                    counts: Sequence[int] = PAPER_QUERY_COUNTS,
                    ) -> dict[int, Workload]:
    """The 100/500/1000-query series used by every table of the paper.

    Builds the largest workload once and returns prefix views, so the
    500-query run executes the same first 500 queries as the
    1,000-query run — matching how the competition query files nest.
    """
    largest = make_workload(
        dataset, max(counts), k,
        alphabet_symbols=alphabet_symbols, seed=seed, name=name,
    )
    return {count: largest.take(count) for count in sorted(counts)}
