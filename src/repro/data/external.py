"""Loaders for real-world datasets in common external formats.

The paper's datasets came from the EDBT/ICDT 2013 competition and are
not distributed, but their public equivalents are: `GeoNames
<https://www.geonames.org/>`_ dumps carry millions of place names in
tab-separated files, and sequencing reads ship as FASTA. These loaders
let adopters run the library (and the whole benchmark harness, via
``repro.bench``'s dataset hooks) on the real thing.

Both loaders stream, validate and de-junk their input; they never load
more than ``max_count`` strings.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.exceptions import DatasetFormatError


def read_delimited_column(path: str | Path, column: int = 1, *,
                          delimiter: str = "\t",
                          max_count: int | None = None,
                          skip_blank_fields: bool = True) -> list[str]:
    """Extract one column from a delimited file (GeoNames style).

    GeoNames ``allCountries.txt`` keeps the place name in column 1
    (0-based) of a tab-separated row — the defaults target exactly
    that layout.

    Parameters
    ----------
    path:
        The file to read (UTF-8).
    column:
        0-based column index to extract.
    delimiter:
        Field separator.
    max_count:
        Stop after this many extracted strings.
    skip_blank_fields:
        Silently drop rows whose target field is empty (real dumps
        contain them); with ``False`` they raise.

    Raises
    ------
    DatasetFormatError
        On rows with too few columns, undecodable bytes, or (when
        ``skip_blank_fields=False``) empty fields.
    """
    path = Path(path)
    strings: list[str] = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, raw_line in enumerate(handle, start=1):
                if max_count is not None and len(strings) >= max_count:
                    break
                line = raw_line.rstrip("\n").rstrip("\r")
                if not line:
                    continue
                fields = line.split(delimiter)
                if column >= len(fields):
                    raise DatasetFormatError(
                        f"row has {len(fields)} fields, column "
                        f"{column} requested",
                        path=str(path), line_number=line_number,
                    )
                value = fields[column]
                if not value:
                    if skip_blank_fields:
                        continue
                    raise DatasetFormatError(
                        f"column {column} is empty",
                        path=str(path), line_number=line_number,
                    )
                strings.append(value)
    except UnicodeDecodeError as error:
        raise DatasetFormatError(
            f"file is not valid UTF-8: {error}", path=str(path)
        ) from error
    return strings


def _iter_fasta_records(path: Path) -> Iterator[tuple[str, str]]:
    header: str | None = None
    chunks: list[str] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    yield header, "".join(chunks)
                header = line[1:].strip()
                chunks = []
            else:
                if header is None:
                    raise DatasetFormatError(
                        "sequence data before the first '>' header",
                        path=str(path), line_number=line_number,
                    )
                chunks.append(line)
    if header is not None:
        yield header, "".join(chunks)


def read_fasta(path: str | Path, *, max_count: int | None = None,
               uppercase: bool = True,
               alphabet: str | None = "ACGNT") -> list[str]:
    """Read sequences from a FASTA file.

    Parameters
    ----------
    path:
        FASTA file (``>header`` lines followed by sequence lines, which
        may wrap).
    max_count:
        Stop after this many sequences.
    uppercase:
        Fold sequences to upper case (read files mix cases to mark
        repeats).
    alphabet:
        When given, reject sequences containing other symbols; pass
        ``None`` to accept anything.

    Raises
    ------
    DatasetFormatError
        On structural problems or out-of-alphabet symbols.
    """
    path = Path(path)
    allowed = set(alphabet) if alphabet is not None else None
    sequences: list[str] = []
    for header, sequence in _iter_fasta_records(path):
        if max_count is not None and len(sequences) >= max_count:
            break
        if uppercase:
            sequence = sequence.upper()
        if not sequence:
            raise DatasetFormatError(
                f"record {header!r} has an empty sequence",
                path=str(path),
            )
        if allowed is not None:
            bad = set(sequence) - allowed
            if bad:
                raise DatasetFormatError(
                    f"record {header!r} contains symbols outside "
                    f"{alphabet!r}: {sorted(bad)[:5]!r}",
                    path=str(path),
                )
        sequences.append(sequence)
    return sequences


def write_fasta(path: str | Path, sequences: list[str], *,
                prefix: str = "read") -> int:
    """Write sequences as FASTA (for interoperability round-trips)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for index, sequence in enumerate(sequences):
            if not sequence:
                raise DatasetFormatError(
                    "refusing to write an empty sequence",
                    path=str(path),
                )
            handle.write(f">{prefix}{index}\n")
            # Conventional 70-column wrapping.
            for start in range(0, len(sequence), 70):
                handle.write(sequence[start:start + 70])
                handle.write("\n")
    return len(sequences)
