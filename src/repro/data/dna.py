"""Synthetic genome-read generator (Table I: "DNA").

The competition's human-genome reads are not distributed. Real reads are
substrings of a reference genome plus sequencing noise; this module
reproduces that process:

1. Build a deterministic synthetic reference genome over ``{A, C, G, T}``
   with locally varying GC content and occasional repeats (real genomes
   are highly repetitive, which is what makes similarity search on reads
   non-trivial — many reads nearly collide).
2. Sample fixed-length windows ("reads") from random positions.
3. Inject sequencing noise: substitutions, rare indels, and ``N`` calls
   (the unknown-base symbol that gives the competition data its
   five-symbol alphabet).

Everything is deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.alphabet import DNA_ALPHABET, Alphabet

#: Read length from Table I of the paper ("ca. 100").
DEFAULT_READ_LENGTH = 100

_BASES = "ACGT"


def synthesize_genome(length: int, seed: int = 2013,
                      repeat_fraction: float = 0.3) -> str:
    """Build a synthetic reference genome of ``length`` bases.

    ``repeat_fraction`` of the genome is filled by copying earlier
    segments (with light mutation), modelling the repeat structure that
    makes reads from different loci nearly identical.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ValueError(
            f"repeat_fraction must be within [0, 1], got {repeat_fraction}"
        )
    rng = random.Random(seed)
    genome: list[str] = []
    while len(genome) < length:
        if genome and rng.random() < repeat_fraction:
            # Copy an earlier segment, then mutate ~2% of its bases.
            segment_length = min(
                rng.randint(50, 500), length - len(genome), len(genome)
            )
            start = rng.randrange(0, len(genome) - segment_length + 1)
            segment = genome[start:start + segment_length]
            for i in range(len(segment)):
                if rng.random() < 0.02:
                    segment[i] = rng.choice(_BASES)
            genome.extend(segment)
        else:
            # Fresh sequence with a locally biased GC content.
            gc_bias = rng.uniform(0.35, 0.65)
            segment_length = min(rng.randint(200, 1000), length - len(genome))
            for _ in range(segment_length):
                if rng.random() < gc_bias:
                    genome.append(rng.choice("GC"))
                else:
                    genome.append(rng.choice("AT"))
    return "".join(genome[:length])


@dataclass
class DnaReadGenerator:
    """Deterministic generator of noisy reads from a synthetic genome.

    Parameters
    ----------
    genome_length:
        Length of the underlying reference. Must be at least
        ``read_length``. Larger genomes produce more diverse reads.
    read_length:
        Mean read length (Table I: about 100). Individual reads vary by
        ``length_jitter`` to exercise the length filter.
    substitution_rate, indel_rate, n_rate:
        Per-base noise probabilities applied to each sampled window.
    duplicate_fraction:
        Probability that a read re-samples an earlier read's window
        instead of a fresh position, modelling the PCR/optical
        duplicates real sequencing libraries contain (each duplicate
        still receives independent noise, so duplicates are
        near-identical rather than exact).
    seed:
        Seed for the private RNG.

    Examples
    --------
    >>> reads = DnaReadGenerator(genome_length=5000, seed=1).generate(4)
    >>> sorted(set("".join(reads)) - set("ACGNT"))
    []
    """

    genome_length: int = 100_000
    read_length: int = DEFAULT_READ_LENGTH
    length_jitter: int = 4
    substitution_rate: float = 0.01
    indel_rate: float = 0.001
    n_rate: float = 0.002
    duplicate_fraction: float = 0.2
    seed: int = 2013

    def __post_init__(self) -> None:
        if self.read_length < 1:
            raise ValueError(
                f"read_length must be positive, got {self.read_length}"
            )
        if self.genome_length < self.read_length + self.length_jitter:
            raise ValueError(
                "genome_length must be at least read_length + length_jitter "
                f"({self.read_length + self.length_jitter}), "
                f"got {self.genome_length}"
            )
        if not 0.0 <= self.duplicate_fraction <= 1.0:
            raise ValueError(
                "duplicate_fraction must be within [0, 1], got "
                f"{self.duplicate_fraction}"
            )
        self._rng = random.Random(self.seed)
        self._genome = synthesize_genome(self.genome_length, seed=self.seed)
        self._windows: list[tuple[int, int]] = []

    @property
    def genome(self) -> str:
        """The underlying synthetic reference genome."""
        return self._genome

    @property
    def alphabet(self) -> Alphabet:
        """The five-symbol read alphabet ``{A, C, G, N, T}``."""
        return DNA_ALPHABET

    def generate_one(self) -> str:
        """Sample one noisy read.

        With probability ``duplicate_fraction`` (and once at least one
        read exists) the genomic window of an earlier read is reused —
        a PCR duplicate — before fresh noise is applied.
        """
        rng = self._rng
        if self._windows and rng.random() < self.duplicate_fraction:
            start, length = self._windows[rng.randrange(len(self._windows))]
        else:
            length = self.read_length + rng.randint(
                -self.length_jitter, self.length_jitter
            )
            length = max(1, length)
            start = rng.randrange(0, len(self._genome) - length + 1)
            self._windows.append((start, length))
        read = list(self._genome[start:start + length])
        # Sequencing noise, applied base by base.
        i = 0
        while i < len(read):
            roll = rng.random()
            if roll < self.n_rate:
                read[i] = "N"
            elif roll < self.n_rate + self.substitution_rate:
                read[i] = rng.choice(_BASES)
            elif roll < self.n_rate + self.substitution_rate + self.indel_rate:
                if rng.random() < 0.5 and len(read) > 1:
                    del read[i]
                    continue
                read.insert(i, rng.choice(_BASES))
                i += 1
            i += 1
        return "".join(read)

    def generate(self, count: int) -> list[str]:
        """Sample ``count`` noisy reads."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.generate_one() for _ in range(count)]


def generate_reads(count: int, seed: int = 2013, *,
                   genome_length: int | None = None,
                   read_length: int = DEFAULT_READ_LENGTH) -> list[str]:
    """Convenience wrapper around :class:`DnaReadGenerator`.

    ``genome_length`` defaults to ``max(20 * read_length, 40 * count)``
    capped at one million, balancing read diversity against setup time.
    """
    if genome_length is None:
        genome_length = min(max(20 * read_length, 40 * count), 1_000_000)
        genome_length = max(genome_length, read_length + 8)
    generator = DnaReadGenerator(
        genome_length=genome_length, read_length=read_length, seed=seed
    )
    return generator.generate(count)
