"""Alphabets and string encoders.

The paper contrasts two regimes (section 2.4): DNA reads drawn from a
five-symbol alphabet, and city names drawn from a large multilingual
alphabet of roughly 255 symbols. This module models an alphabet as an
explicit, ordered set of symbols and provides:

* validation (``contains`` / ``validate``),
* dense integer encoding (``encode`` / ``decode``) used by the
  bit-parallel and packed distance kernels (paper sections 3.4 and 6),
* frequency vectors (``frequency_vector``) used for PETER-style pruning
  (paper section 2.3 and future work in section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.exceptions import AlphabetError

#: Symbols of the DNA read alphabet used by the competition data (Table I).
DNA_SYMBOLS = "ACGNT"

#: Vowels used by the paper's future-work frequency filter for city names.
CITY_FREQUENCY_SYMBOLS = "AEIOU"


@dataclass(frozen=True)
class Alphabet:
    """An ordered alphabet with dense integer codes.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"dna"``.
    symbols:
        The alphabet as a string of unique characters. Order defines the
        integer code of each symbol (``symbols[0]`` encodes to ``0``).

    Examples
    --------
    >>> dna = Alphabet("dna", "ACGNT")
    >>> dna.encode("GATT")
    (2, 0, 4, 4)
    >>> dna.decode((2, 0, 4, 4))
    'GATT'
    """

    name: str
    symbols: str
    _codes: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.symbols:
            raise AlphabetError("an alphabet needs at least one symbol")
        codes = {symbol: code for code, symbol in enumerate(self.symbols)}
        if len(codes) != len(self.symbols):
            raise AlphabetError(
                f"alphabet {self.name!r} repeats symbols: {self.symbols!r}"
            )
        object.__setattr__(self, "_codes", codes)

    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._codes

    @property
    def size(self) -> int:
        """Number of symbols in the alphabet."""
        return len(self.symbols)

    @property
    def bits_per_symbol(self) -> int:
        """Bits needed to store one symbol code (at least 1).

        The paper's dictionary-compression future-work item (section 6)
        observes that five DNA symbols fit in three bits.
        """
        return max(1, (self.size - 1).bit_length())

    def code(self, symbol: str) -> int:
        """Return the integer code of ``symbol``.

        Raises
        ------
        AlphabetError
            If ``symbol`` is not part of the alphabet.
        """
        try:
            return self._codes[symbol]
        except KeyError:
            raise AlphabetError(
                f"symbol {symbol!r} is not in alphabet {self.name!r}"
            ) from None

    def validate(self, text: str) -> str:
        """Return ``text`` unchanged if every symbol is in the alphabet.

        Raises
        ------
        AlphabetError
            Naming the first offending symbol and its position.
        """
        for position, symbol in enumerate(text):
            if symbol not in self._codes:
                raise AlphabetError(
                    f"symbol {symbol!r} at position {position} of {text!r} "
                    f"is not in alphabet {self.name!r}"
                )
        return text

    def encode(self, text: str) -> tuple[int, ...]:
        """Encode ``text`` into a tuple of dense integer codes."""
        codes = self._codes
        try:
            return tuple(codes[symbol] for symbol in text)
        except KeyError:
            # Re-run validation to raise with position information.
            self.validate(text)
            raise  # pragma: no cover - validate always raises first

    def decode(self, codes: tuple[int, ...] | list[int]) -> str:
        """Invert :meth:`encode`."""
        symbols = self.symbols
        try:
            return "".join(symbols[code] for code in codes)
        except IndexError:
            bad = next(code for code in codes if not 0 <= code < self.size)
            raise AlphabetError(
                f"code {bad} is out of range for alphabet {self.name!r} "
                f"of size {self.size}"
            ) from None

    def frequency_vector(self, text: str,
                         tracked: str | None = None) -> tuple[int, ...]:
        """Count occurrences of each tracked symbol in ``text``.

        By default every alphabet symbol is tracked, which is what
        PETER-style trie nodes store (paper section 2.3). Passing
        ``tracked`` restricts the vector, e.g. to the vowels ``"AEIOU"``
        the paper suggests for city names (section 6).
        """
        if tracked is None:
            tracked = self.symbols
        return tuple(text.count(symbol) for symbol in tracked)


@lru_cache(maxsize=None)
def dna_alphabet() -> Alphabet:
    """The five-symbol DNA read alphabet ``{A, C, G, N, T}``."""
    return Alphabet("dna", DNA_SYMBOLS)


#: Module-level singleton for the common case.
DNA_ALPHABET = dna_alphabet()


@lru_cache(maxsize=None)
def ascii_lowercase_alphabet() -> Alphabet:
    """Lower-case ASCII letters; handy for tests and examples."""
    import string

    return Alphabet("ascii-lower", string.ascii_lowercase)


@lru_cache(maxsize=None)
def city_alphabet() -> Alphabet:
    """A large natural-language alphabet (~340 symbols).

    The same order of magnitude as Table I of the paper ("ca. 255
    symbols"): ASCII letters, digits, punctuation that occurs in place
    names, Latin letters with diacritics, plus Greek, Cyrillic and CJK
    blocks so the multilingual regime the paper describes (section 2.4)
    is exercised. Generated datasets typically *use* 100-150 of these —
    Table I, like this constant, reports the available inventory.
    """
    import string

    blocks = [
        string.ascii_letters,
        string.digits,
        " '’-.()/,",
        # Latin-1 and Latin Extended letters common in place names.
        "ÀÁÂÃÄÅÆÇÈÉÊËÌÍÎÏÐÑÒÓÔÕÖØÙÚÛÜÝÞß",
        "àáâãäåæçèéêëìíîïðñòóôõöøùúûüýþÿ",
        "ĀāĂăĄąĆćČčĎďĐđĒēĖėĘęĚěĞğĢģĪīĮįİıĶķĻļŁłŃńŅņŇňŌōŐőŒœŔŕŘřŚśŞşŠšŢţŤťŪūŮůŰűŲųŹźŻżŽž",
        # Full Greek and Russian Cyrillic alphabets.
        "ΑΒΓΔΕΖΗΘΙΚΛΜΝΞΟΠΡΣΤΥΦΧΨΩαβγδεζηθικλμνξοπρστυφχψως",
        "АБВГДЕЁЖЗИЙКЛМНОПРСТУФХЦЧШЩЪЫЬЭЮЯ"
        "абвгдеёжзийклмнопрстуфхцчшщъыьэюя",
        # A small CJK sample, standing in for the paper's remark that
        # "adding the Chinese language will enlarge the alphabet".
        "北京上海広島市町村山川",
    ]
    seen: list[str] = []
    for block in blocks:
        for symbol in block:
            if symbol not in seen:
                seen.append(symbol)
    return Alphabet("city", "".join(seen))
