"""Dataset statistics — the numbers behind Table I of the paper.

:func:`describe` computes the properties Table I reports for each
dataset (count, alphabet size, length statistics) plus a few the
analysis in section 2.4 relies on (length distribution percentiles,
symbol frequencies).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of a string dataset.

    Attributes mirror Table I's columns plus supporting detail.
    """

    count: int
    alphabet_size: int
    min_length: int
    max_length: int
    mean_length: float
    median_length: float
    total_symbols: int
    most_common_symbols: tuple[tuple[str, int], ...]

    def table_row(self, name: str, thresholds: Sequence[int]) -> str:
        """Render this dataset as one row of Table I."""
        k_values = ", ".join(str(k) for k in thresholds)
        return (
            f"{name:<12} {self.count:>10,} {self.alphabet_size:>9} "
            f"{self.max_length:>8} {k_values:>14}"
        )


def describe(strings: Sequence[str]) -> DatasetStats:
    """Compute :class:`DatasetStats` for ``strings``.

    An empty dataset yields all-zero statistics rather than raising, so
    the reporting layer can describe intermediate states.
    """
    if not strings:
        return DatasetStats(
            count=0, alphabet_size=0, min_length=0, max_length=0,
            mean_length=0.0, median_length=0.0, total_symbols=0,
            most_common_symbols=(),
        )
    lengths = sorted(len(s) for s in strings)
    symbol_counts: Counter[str] = Counter()
    for string in strings:
        symbol_counts.update(string)
    count = len(strings)
    total_symbols = sum(lengths)
    middle = count // 2
    if count % 2:
        median = float(lengths[middle])
    else:
        median = (lengths[middle - 1] + lengths[middle]) / 2.0
    return DatasetStats(
        count=count,
        alphabet_size=len(symbol_counts),
        min_length=lengths[0],
        max_length=lengths[-1],
        mean_length=total_symbols / count,
        median_length=median,
        total_symbols=total_symbols,
        most_common_symbols=tuple(symbol_counts.most_common(10)),
    )


def length_histogram(strings: Sequence[str],
                     bucket_width: int = 8) -> dict[range, int]:
    """Histogram of string lengths in fixed-width buckets.

    Returns a mapping from ``range(lo, hi)`` buckets to counts; useful
    for checking that generated datasets match the shapes in Table I.
    """
    if bucket_width < 1:
        raise ValueError(f"bucket_width must be positive, got {bucket_width}")
    histogram: dict[range, int] = {}
    if not strings:
        return histogram
    max_length = max(len(s) for s in strings)
    buckets = [
        range(lo, lo + bucket_width)
        for lo in range(0, max_length + 1, bucket_width)
    ]
    counts = [0] * len(buckets)
    for string in strings:
        counts[len(string) // bucket_width] += 1
    for bucket, bucket_count in zip(buckets, counts):
        histogram[bucket] = bucket_count
    return histogram
