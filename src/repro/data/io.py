"""Competition file formats: datasets, query files and result files.

The paper's implementations (section 3.1) read a data file and a query
file and write the matches to a result file. The formats, mirrored from
the EDBT/ICDT 2013 competition:

* **data / query files** — UTF-8 text, one string per line; blank lines
  are invalid (an empty dataset string cannot be told apart from a
  formatting accident).
* **result files** — one line per query in input order:
  ``<query>TAB<match>TAB<match>...``; a query with no matches produces a
  line containing only the query.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.exceptions import DatasetFormatError


def read_strings(path: str | Path, *, max_count: int | None = None,
                 allow_empty_file: bool = False) -> list[str]:
    """Read a one-string-per-line dataset or query file.

    Parameters
    ----------
    path:
        File to read (UTF-8).
    max_count:
        Read at most this many lines; ``None`` reads everything.
    allow_empty_file:
        By default an empty file raises, because every downstream
        consumer (index construction, workload building) needs at least
        one string; pass ``True`` where an empty set is legitimate.

    Raises
    ------
    DatasetFormatError
        On blank lines, undecodable bytes, or an (unexpectedly) empty file.
    """
    path = Path(path)
    strings: list[str] = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, raw_line in enumerate(handle, start=1):
                if max_count is not None and len(strings) >= max_count:
                    break
                line = raw_line.rstrip("\n").rstrip("\r")
                if not line:
                    raise DatasetFormatError(
                        "blank line (strings must be non-empty)",
                        path=str(path), line_number=line_number,
                    )
                strings.append(line)
    except UnicodeDecodeError as error:
        raise DatasetFormatError(
            f"file is not valid UTF-8: {error}", path=str(path)
        ) from error
    if not strings and not allow_empty_file:
        raise DatasetFormatError("file contains no strings", path=str(path))
    return strings


def read_queries(path: str | Path, *,
                 max_count: int | None = None) -> list[str]:
    """Read a query file — same format and validation as a data file."""
    return read_strings(path, max_count=max_count)


def write_strings(path: str | Path, strings: Iterable[str]) -> int:
    """Write strings one per line; returns the number written.

    Raises
    ------
    DatasetFormatError
        If a string is empty or contains a newline — it could not be
        read back.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for string in strings:
            if not string:
                raise DatasetFormatError(
                    "refusing to write an empty string", path=str(path)
                )
            if "\n" in string or "\r" in string:
                raise DatasetFormatError(
                    f"string {string!r} contains a line break",
                    path=str(path),
                )
            handle.write(string)
            handle.write("\n")
            count += 1
    return count


def write_result_file(path: str | Path, queries: Sequence[str],
                      results: Mapping[str, Sequence[str]] |
                      Sequence[Sequence[str]]) -> None:
    """Write a competition-style result file.

    Parameters
    ----------
    queries:
        Queries in execution order (result lines follow this order).
    results:
        Either a mapping from query to its matches, or a sequence of
        match lists parallel to ``queries``.
    """
    path = Path(path)
    if not isinstance(results, Mapping):
        if len(results) != len(queries):
            raise DatasetFormatError(
                f"{len(queries)} queries but {len(results)} result rows",
                path=str(path),
            )
        rows = list(results)
    else:
        rows = [results.get(query, ()) for query in queries]
    with path.open("w", encoding="utf-8") as handle:
        for query, matches in zip(queries, rows):
            handle.write(query)
            for match in matches:
                handle.write("\t")
                handle.write(match)
            handle.write("\n")


def read_result_file(path: str | Path) -> list[tuple[str, list[str]]]:
    """Parse a result file back into ``(query, matches)`` pairs."""
    path = Path(path)
    rows: list[tuple[str, list[str]]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.rstrip("\n").rstrip("\r")
            if not line:
                raise DatasetFormatError(
                    "blank result line", path=str(path),
                    line_number=line_number,
                )
            query, *matches = line.split("\t")
            rows.append((query, matches))
    return rows
