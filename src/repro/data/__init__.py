"""Dataset substrate: alphabets, generators, workloads and competition I/O.

The EDBT/ICDT 2013 competition datasets the paper evaluates on are not
publicly distributed, so this package provides deterministic synthetic
generators whose statistical shape matches Table I of the paper:

* :func:`repro.data.cities.generate_city_names` — natural-language strings,
  large alphabet (~255 symbols across scripts), length at most 64.
* :func:`repro.data.dna.generate_reads` — reads over ``{A, C, G, N, T}``
  of length about 100, sampled from a synthetic reference genome.

Query workloads with a controlled true edit distance are produced by
:mod:`repro.data.corruptions` and :mod:`repro.data.workload`, and the
competition's one-string-per-line file format is handled by
:mod:`repro.data.io`.
"""

from repro.data.alphabet import (
    DNA_ALPHABET,
    Alphabet,
    ascii_lowercase_alphabet,
    city_alphabet,
)
from repro.data.cities import CityNameGenerator, generate_city_names
from repro.data.corruptions import apply_random_edits, edit_script_names
from repro.data.dna import DnaReadGenerator, generate_reads
from repro.data.external import (
    read_delimited_column,
    read_fasta,
    write_fasta,
)
from repro.data.io import (
    read_queries,
    read_strings,
    write_result_file,
    write_strings,
)
from repro.data.stats import DatasetStats, describe
from repro.data.workload import (
    Workload,
    load_workload,
    make_workload,
    save_workload,
)

__all__ = [
    "Alphabet",
    "DNA_ALPHABET",
    "ascii_lowercase_alphabet",
    "city_alphabet",
    "CityNameGenerator",
    "generate_city_names",
    "DnaReadGenerator",
    "generate_reads",
    "apply_random_edits",
    "edit_script_names",
    "read_strings",
    "read_queries",
    "write_strings",
    "write_result_file",
    "read_delimited_column",
    "read_fasta",
    "write_fasta",
    "DatasetStats",
    "describe",
    "Workload",
    "make_workload",
    "save_workload",
    "load_workload",
]
