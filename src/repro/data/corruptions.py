"""Controlled corruption: derive queries at a known edit distance.

Benchmark workloads need queries whose *true* distance to some dataset
string is known, so result sizes are non-trivial at every threshold the
paper sweeps (k up to 3 for cities, up to 16 for DNA). This module
applies exactly ``n`` random edit operations to a string.

Note that applying ``n`` operations yields a string at distance *at
most* ``n`` — operations can cancel (insert then delete the same spot)
or a cheaper path can exist. Workload builders that need the exact
distance recompute it; see :mod:`repro.data.workload`.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.exceptions import ReproError

#: The three operation names of section 2.2.
EDIT_OPERATIONS = ("insert", "delete", "replace")


def edit_script_names() -> tuple[str, ...]:
    """The operation kinds :func:`apply_random_edits` can apply."""
    return EDIT_OPERATIONS


def apply_one_edit(text: str, alphabet_symbols: Sequence[str],
                   rng: random.Random) -> str:
    """Apply one uniformly chosen edit operation to ``text``.

    Deletions are skipped for empty strings (there is nothing to delete
    or replace), in which case an insert is applied instead.
    """
    if not alphabet_symbols:
        raise ReproError("cannot corrupt text with an empty symbol pool")
    operation = rng.choice(EDIT_OPERATIONS)
    if not text and operation != "insert":
        operation = "insert"
    if operation == "insert":
        position = rng.randint(0, len(text))
        symbol = rng.choice(alphabet_symbols)
        return text[:position] + symbol + text[position:]
    position = rng.randrange(len(text))
    if operation == "delete":
        return text[:position] + text[position + 1:]
    # Replace with a symbol guaranteed to differ when possible, so the
    # operation is never a silent no-op on alphabets of size > 1.
    current = text[position]
    choices = [s for s in alphabet_symbols if s != current]
    symbol = rng.choice(choices) if choices else current
    return text[:position] + symbol + text[position + 1:]


def apply_random_edits(text: str, edits: int,
                       alphabet_symbols: Sequence[str],
                       seed: int | random.Random = 0) -> str:
    """Apply ``edits`` random operations to ``text``.

    Parameters
    ----------
    text:
        The string to corrupt.
    edits:
        Number of operations; the result is within edit distance
        ``edits`` of ``text`` (possibly less, see module docs).
    alphabet_symbols:
        Pool of symbols inserts and replaces draw from.
    seed:
        Integer seed or an existing :class:`random.Random` to draw from.

    Examples
    --------
    >>> corrupted = apply_random_edits("Berlin", 2, "abc", seed=5)
    >>> from repro.distance import edit_distance
    >>> edit_distance("Berlin", corrupted) <= 2
    True
    """
    if edits < 0:
        raise ValueError(f"edits must be non-negative, got {edits}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    for _ in range(edits):
        text = apply_one_edit(text, alphabet_symbols, rng)
    return text
