"""Extra experiments beyond the paper's artifacts.

* **shootout** — every index structure in the library against the
  optimized scan, on both datasets: the comparison the paper's title
  implies but its evaluation (trie only) never ran.
* **sweep** — threshold sensitivity: how the scan/trie crossover moves
  with ``k``, quantifying the "which regime wins" question the paper
  answers only at aggregate level.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.bench.experiment import (
    ExperimentScale,
    load_city_dataset,
    load_city_workload,
    load_dna_dataset,
    load_dna_workload,
)
from repro.bench.tables import TableReport
from repro.core.sequential import SequentialScanSearcher
from repro.data.workload import Workload
from repro.exceptions import ExperimentError
from repro.index.automaton import automaton_trie_search
from repro.index.bktree import bktree_from
from repro.index.compressed import CompressedTrie
from repro.index.dawg import Dawg
from repro.index.qgram_index import QGramIndex
from repro.index.traversal import trie_similarity_search
from repro.index.trie import PrefixTrie

SearchFunction = Callable[[str, int], list[str]]


def _time_and_verify(search: SearchFunction, workload: Workload,
                     reference: dict[str, list[str]], name: str) -> float:
    """Total seconds for the workload; results must match the reference."""
    total = 0.0
    for query in workload.queries:
        started = time.perf_counter()
        strings = search(query, workload.k)
        total += time.perf_counter() - started
        if strings != reference[query]:
            raise ExperimentError(
                f"{name} returned wrong results for {query!r}: "
                f"{strings[:3]} vs {reference[query][:3]}"
            )
    return total


def _contenders(dataset: Sequence[str],
                tracked: str) -> list[tuple[str, SearchFunction]]:
    """(name, search function) for every structure in the shootout."""
    scan = SequentialScanSearcher(dataset, kernel="bitparallel")
    trie = PrefixTrie(dataset)
    compressed = CompressedTrie(dataset)
    freq_trie = CompressedTrie(dataset, tracked_symbols=tracked)
    qgram = QGramIndex(dataset, q=2)
    bktree = bktree_from(list(dataset))
    dawg = Dawg(dataset)
    return [
        ("sequential scan (bit-parallel)",
         lambda q, k: [m.string for m in scan.search(q, k)]),
        ("prefix trie",
         lambda q, k: [m.string
                       for m in trie_similarity_search(trie, q, k)]),
        ("compressed trie",
         lambda q, k: [m.string
                       for m in trie_similarity_search(compressed, q, k)]),
        ("compressed trie + freq vectors",
         lambda q, k: [m.string
                       for m in trie_similarity_search(freq_trie, q, k)]),
        ("trie x Levenshtein automaton",
         lambda q, k: [m.string
                       for m in automaton_trie_search(compressed, q, k)]),
        ("inverted q-gram index",
         lambda q, k: qgram.search_strings(q, k)),
        ("BK-tree",
         lambda q, k: bktree.search_strings(q, k)),
        ("DAWG (minimal acyclic DFA)",
         lambda q, k: dawg.search_strings(q, k)),
    ]


def _reference_results(dataset: Sequence[str],
                       workload: Workload) -> dict[str, list[str]]:
    searcher = SequentialScanSearcher(dataset, kernel="reference")
    return {
        query: [m.string for m in searcher.search(query, workload.k)]
        for query in workload.queries
    }


def run_shootout(scale: ExperimentScale) -> TableReport:
    """Every index structure vs the optimized scan, both datasets."""
    cities = load_city_dataset(scale.city_count)
    reads = load_dna_dataset(scale.dna_count)
    city_workload = load_city_workload(
        scale.city_count, scale.query_counts[0], scale.city_k
    )
    dna_workload = load_dna_workload(
        scale.dna_count, scale.query_counts[0], scale.dna_k
    )
    city_reference = _reference_results(cities, city_workload)
    dna_reference = _reference_results(reads, dna_workload)

    report = TableReport(
        title=(
            "Index shootout: all structures vs the optimized scan "
            f"({len(city_workload)} queries; cities k={scale.city_k}, "
            f"DNA k={scale.dna_k})"
        ),
        columns=[f"cities (k={scale.city_k})", f"DNA (k={scale.dna_k})"],
    )
    city_contenders = _contenders(cities, "AEIOU")
    dna_contenders = _contenders(reads, "ACGNT")
    for (name, city_search), (_, dna_search) in zip(city_contenders,
                                                    dna_contenders):
        report.add_row(name, [
            _time_and_verify(city_search, city_workload, city_reference,
                             name),
            _time_and_verify(dna_search, dna_workload, dna_reference,
                             name),
        ])
    report.add_footnote(
        "every cell verified against the reference scan before timing "
        "counts; structures beyond the paper's trie are library "
        "extensions (see DESIGN.md)"
    )
    return report


def run_scaling(scale: ExperimentScale) -> TableReport:
    """Dataset-size scaling: the paper's "number of data records" item.

    The scan's per-query cost grows linearly with dataset size; the
    trie's grows sub-linearly (branch saturation near the root). This
    sweep measures both on DNA across a 10x size range, answering the
    paper's final future-work question: yes, size moves the crossover
    toward the index.
    """
    from repro.data.dna import DnaReadGenerator
    from repro.data.workload import make_workload

    queries = max(3, scale.query_counts[0] // 2)
    report = TableReport(
        title=(
            f"Dataset-size scaling, DNA, k={scale.dna_k} "
            f"({queries} queries per cell)"
        ),
        columns=["scan", "compressed trie"],
    )
    base = max(50, scale.dna_count // 2)
    for count in (base, 2 * base, 5 * base, 10 * base):
        generator = DnaReadGenerator(
            genome_length=max(5_000, 25 * count), seed=2013
        )
        reads = tuple(generator.generate(count))
        workload = make_workload(reads, queries, scale.dna_k,
                                 alphabet_symbols="ACGNT", seed=3)
        reference = _reference_results(reads, workload)
        scan = SequentialScanSearcher(reads, kernel="bitparallel")
        trie = CompressedTrie(reads)
        report.add_row(f"{count:,} reads", [
            _time_and_verify(
                lambda q, k: [m.string for m in scan.search(q, k)],
                workload, reference, "scan",
            ),
            _time_and_verify(
                lambda q, k: [m.string
                              for m in trie_similarity_search(trie, q, k)],
                workload, reference, "trie",
            ),
        ])
    report.add_footnote(
        "scan cost grows linearly in dataset size; trie cost "
        "sub-linearly (prefix saturation) — the trie/scan ratio "
        "improves with scale, supporting the paper's 750k-read regime"
    )
    return report


def run_joins(scale: ExperimentScale) -> TableReport:
    """Join-strategy comparison: scan vs prefix-filter vs trie probing.

    A dirty-to-clean join on cities (the record-linkage workload the
    competition's join track models) and a read-dedup self-join on DNA.
    All strategies must produce identical pairs; the table compares
    their time and candidate counts.
    """
    from repro.core.join import index_join, prefix_join, scan_join

    cities = list(load_city_dataset(scale.city_count))
    reads = list(load_dna_dataset(max(60, scale.dna_count // 4)))
    dirty = cities[:: max(1, len(cities) // 100)][:100]

    report = TableReport(
        title=(
            f"Join strategies: {len(dirty)} probes x "
            f"{len(cities):,} cities (k={scale.city_k}) and "
            f"{len(reads)}-read DNA self-join (k={scale.dna_k})"
        ),
        columns=["cities R-S join", "DNA self-join"],
    )
    expected_city = scan_join(dirty, cities, scale.city_k).pairs
    expected_dna = scan_join(reads, None, scale.dna_k).pairs
    strategies = (
        ("length-banded scan", scan_join),
        ("prefix-filtered (Ed-Join)", prefix_join),
        ("trie probing", index_join),
    )
    for name, join in strategies:
        city_result = join(dirty, cities, scale.city_k)
        dna_result = join(reads, None, scale.dna_k)
        if city_result.pairs != expected_city:
            raise ExperimentError(f"{name} returned wrong city pairs")
        if dna_result.pairs != expected_dna:
            raise ExperimentError(f"{name} returned wrong DNA pairs")
        report.add_row(name, [city_result.seconds, dna_result.seconds])
    report.add_footnote(
        f"result sets verified identical across strategies "
        f"({len(expected_city)} city pairs, {len(expected_dna)} DNA "
        f"pairs)"
    )
    return report


def run_threshold_sweep(scale: ExperimentScale) -> TableReport:
    """Scan vs compressed trie across every Table-I threshold."""
    cities = load_city_dataset(scale.city_count)
    reads = load_dna_dataset(scale.dna_count)
    queries = scale.query_counts[0]

    city_scan = SequentialScanSearcher(cities, kernel="bitparallel")
    city_trie = CompressedTrie(cities)
    dna_scan = SequentialScanSearcher(reads, kernel="bitparallel")
    dna_trie = CompressedTrie(reads)

    report = TableReport(
        title=(
            f"Threshold sensitivity: scan vs compressed trie "
            f"({queries} queries per cell)"
        ),
        columns=["city scan", "city trie", "DNA scan", "DNA trie"],
    )
    city_ks = (0, 1, 2, 3)
    dna_ks = (0, 4, 8, 16)
    for city_k, dna_k in zip(city_ks, dna_ks):
        city_workload = load_city_workload(scale.city_count, queries,
                                           city_k)
        dna_workload = load_dna_workload(scale.dna_count, queries, dna_k)
        city_reference = _reference_results(cities, city_workload)
        dna_reference = _reference_results(reads, dna_workload)
        cells = [
            _time_and_verify(
                lambda q, k: [m.string for m in city_scan.search(q, k)],
                city_workload, city_reference, "city scan",
            ),
            _time_and_verify(
                lambda q, k: [
                    m.string
                    for m in trie_similarity_search(city_trie, q, k)
                ],
                city_workload, city_reference, "city trie",
            ),
            _time_and_verify(
                lambda q, k: [m.string for m in dna_scan.search(q, k)],
                dna_workload, dna_reference, "DNA scan",
            ),
            _time_and_verify(
                lambda q, k: [
                    m.string
                    for m in trie_similarity_search(dna_trie, q, k)
                ],
                dna_workload, dna_reference, "DNA trie",
            ),
        ]
        report.add_row(f"city k={city_k} / DNA k={dna_k}", cells)
    report.add_footnote(
        "the scan's bit-parallel cost is k-independent; the trie's "
        "band widens with k — the crossover the paper reports at "
        "aggregate level moves with the threshold"
    )
    return report
