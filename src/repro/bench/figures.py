"""Figure renderers: the paper's Figures 6 and 7 as text charts.

Both figures compare the best sequential with the best index-based
solution across the three query batches. The renderer produces a
grouped bar chart in plain text plus the underlying series, so the
"who wins by what factor" story is visible in any terminal or log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ComparisonSeries:
    """One line of a comparison figure."""

    name: str
    seconds: tuple[float, ...]


def render_comparison_figure(title: str, columns: Sequence[str],
                             series: Sequence[ComparisonSeries],
                             width: int = 48) -> str:
    """Grouped horizontal bar chart, one group per query batch.

    >>> figure = render_comparison_figure(
    ...     "demo", ["100"],
    ...     [ComparisonSeries("seq", (1.0,)),
    ...      ComparisonSeries("idx", (2.0,))])
    >>> "seq" in figure and "idx" in figure
    True
    """
    if not series:
        raise ValueError("a comparison figure needs at least one series")
    for line in series:
        if len(line.seconds) != len(columns):
            raise ValueError(
                f"series {line.name!r} has {len(line.seconds)} values for "
                f"{len(columns)} columns"
            )
    peak = max(max(line.seconds) for line in series) or 1.0
    name_width = max(len(line.name) for line in series) + 2

    lines = [title, "=" * len(title)]
    for column_index, column in enumerate(columns):
        lines.append(f"{column}:")
        for line in series:
            value = line.seconds[column_index]
            bar = "#" * max(1, round(width * value / peak))
            lines.append(
                f"  {line.name:<{name_width}}{bar} {value:.3f}s"
            )
        lines.append("")

    # Winner summary per column — the sentence the paper draws from
    # each figure.
    for column_index, column in enumerate(columns):
        ranked = sorted(series, key=lambda s: s.seconds[column_index])
        winner, runner_up = ranked[0], ranked[-1]
        loser_time = runner_up.seconds[column_index]
        winner_time = winner.seconds[column_index]
        if loser_time > 0:
            share = 100.0 * winner_time / loser_time
            lines.append(
                f"{column}: {winner.name} wins, needing {share:.0f}% of "
                f"{runner_up.name}'s time"
            )
    return "\n".join(lines)
