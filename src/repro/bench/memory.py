"""Memory footprints: what each structure costs to hold in RAM.

The paper motivates both compression (section 4.2) and the PETER
design it builds on (section 2.3: "very long suffixes are stored in a
file, in order to hold the tree in main memory") by memory pressure.
This module measures the deep in-memory size of every structure the
library offers, so the time/space trade-off behind those decisions is
visible.

``deep_sizeof`` walks the object graph with :func:`sys.getsizeof`,
deduplicating shared objects by identity — which is precisely what
makes DAWG suffix sharing measurable. ``numpy`` arrays are handled
specially: an owning array counts header plus buffer, a view counts
its header and attributes the buffer to its base (counted once), and
an ``mmap``-backed array counts headers only — the buffer lives in the
page cache, not on this process's heap, which is exactly the segment
story :func:`measure_compiled_footprints` quantifies.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

from repro.index.bktree import bktree_from
from repro.index.compressed import CompressedTrie
from repro.index.dawg import Dawg
from repro.index.qgram_index import QGramIndex
from repro.index.trie import PrefixTrie

#: Attribute-bearing objects are traversed through these hooks.
_ATOMIC = (int, float, complex, bool, bytes, str, type(None))


def deep_sizeof(root: Any) -> int:
    """Total bytes of ``root`` and everything reachable from it.

    Shared sub-objects (e.g. DAWG suffix states, interned strings) are
    counted once; atomic values are counted per occurrence via their
    container slots plus one object header each when distinct.
    """
    seen: set[int] = set()
    total = 0
    stack = [root]
    while stack:
        obj = stack.pop()
        identity = id(obj)
        if identity in seen:
            continue
        seen.add(identity)
        total += sys.getsizeof(obj)
        if isinstance(obj, _ATOMIC):
            continue
        if isinstance(obj, np.ndarray):
            # getsizeof already includes the buffer for an owning
            # array and only the header for a view; chase the base so
            # a shared buffer is charged exactly once. An mmap base
            # (np.memmap) costs its small object header, never the
            # mapped bytes — those are page cache, not heap.
            if obj.base is not None:
                stack.append(obj.base)
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        else:
            if hasattr(obj, "__dict__"):
                stack.append(obj.__dict__)
            slots = getattr(type(obj), "__slots__", ())
            for slot in slots:
                if hasattr(obj, slot):
                    stack.append(getattr(obj, slot))
    return total


def format_bytes(size: int) -> str:
    """Human-friendly byte count.

    >>> format_bytes(2048)
    '2.0 KiB'
    """
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def measure_footprints(strings: list[str]) -> dict[str, int]:
    """Deep sizes (bytes) of the raw data and every index over it."""
    return {
        "raw strings (list)": deep_sizeof(list(strings)),
        "prefix trie": deep_sizeof(PrefixTrie(strings)),
        "compressed trie": deep_sizeof(CompressedTrie(strings)),
        "compressed trie + freq vectors": deep_sizeof(
            CompressedTrie(strings, tracked_symbols="AEIOU")
        ),
        "DAWG": deep_sizeof(Dawg(strings)),
        "inverted q-gram index": deep_sizeof(QGramIndex(strings, q=2)),
        "BK-tree": deep_sizeof(bktree_from(strings)),
    }


def measure_compiled_footprints(
        strings: list[str], *, segment_path: str | None = None
) -> dict[str, int]:
    """Deep sizes (bytes) of the compiled scan/index artifacts.

    Measures the raw-speed layer's storage ladder: the encoded
    compiled corpus, its packed (``numpy``) variant, the flat trie —
    and, when ``segment_path`` is given, the same packed corpus saved
    there and mmap-loaded back, whose arrays cost this process nothing
    beyond object headers.
    """
    from repro.index.flat import FlatTrie
    from repro.scan.corpus import CompiledCorpus

    packed = CompiledCorpus(strings, packed=True)
    sizes = {
        "raw strings (list)": deep_sizeof(list(strings)),
        "compiled corpus (encoded)": deep_sizeof(CompiledCorpus(strings)),
        "compiled corpus (packed)": deep_sizeof(packed),
        "flat trie": deep_sizeof(FlatTrie(strings)),
    }
    if segment_path is not None:
        from repro.speed import load_segment, save_segment

        save_segment(packed, segment_path)
        sizes["corpus segment (mmap heap cost)"] = deep_sizeof(
            load_segment(segment_path)
        )
    return sizes


def render_compiled_footprints(strings: list[str], label: str, *,
                               segment_path: str | None = None) -> str:
    """Text report of compiled-artifact memory footprints."""
    from repro.scan.corpus import CompiledCorpus

    sizes = measure_compiled_footprints(strings,
                                        segment_path=segment_path)
    raw = sizes["raw strings (list)"]
    lines = [
        f"Compiled-artifact footprints over {len(strings):,} "
        f"{label} strings",
        "-" * 60,
    ]
    for name, size in sizes.items():
        ratio = size / raw if raw else 0.0
        lines.append(
            f"{name:<34} {format_bytes(size):>10}   {ratio:>5.1f}x raw"
        )
    profile = CompiledCorpus(strings, packed=True).storage_profile()
    lines.append(
        f"packed code storage: {format_bytes(profile['packed_bytes'])} "
        f"vs {format_bytes(profile['byte_code_bytes'])} byte codes "
        f"({profile['packed_reduction']:.2f}x reduction)"
    )
    return "\n".join(lines)


def render_footprints(strings: list[str], label: str) -> str:
    """Text report of index memory footprints for one dataset."""
    sizes = measure_footprints(strings)
    raw = sizes["raw strings (list)"]
    lines = [
        f"Memory footprints over {len(strings):,} {label} strings",
        "-" * 60,
    ]
    for name, size in sizes.items():
        ratio = size / raw if raw else 0.0
        lines.append(
            f"{name:<34} {format_bytes(size):>10}   {ratio:>5.1f}x raw"
        )
    return "\n".join(lines)
