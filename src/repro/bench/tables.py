"""Table renderers matching the paper's appendix layout.

Every evaluation table of the paper has the same shape: one row per
approach (or thread count), one column per query-count batch, seconds
in the cells. :func:`render_table` reproduces that layout; cells may be
marked as estimates (the paper's own "≈ half day" in Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class Cell:
    """One measured (or estimated) duration."""

    seconds: float
    estimated: bool = False


@dataclass
class TableReport:
    """A rendered experiment table plus its raw numbers.

    ``rows`` maps row label → list of cells, in column order.
    """

    title: str
    columns: Sequence[str]
    row_labels: list[str] = field(default_factory=list)
    cells: list[list[Cell]] = field(default_factory=list)
    footnotes: list[str] = field(default_factory=list)

    def add_row(self, label: str, durations: Sequence[float | Cell]) -> None:
        """Append one row; plain floats become exact cells."""
        if len(durations) != len(self.columns):
            raise ValueError(
                f"row {label!r} has {len(durations)} cells for "
                f"{len(self.columns)} columns"
            )
        row = [
            cell if isinstance(cell, Cell) else Cell(float(cell))
            for cell in durations
        ]
        self.row_labels.append(label)
        self.cells.append(row)

    def add_footnote(self, text: str) -> None:
        """Append an explanatory footnote line."""
        self.footnotes.append(text)

    def cell(self, row_label: str, column_index: int) -> Cell:
        """Look up one cell by row label and column index."""
        return self.cells[self.row_labels.index(row_label)][column_index]

    def row(self, row_label: str) -> list[Cell]:
        """All cells of one row."""
        return list(self.cells[self.row_labels.index(row_label)])

    def best_row(self, column_index: int = -1) -> str:
        """Row label with the smallest duration in ``column_index``."""
        best_label = self.row_labels[0]
        best_value = self.cells[0][column_index].seconds
        for label, row in zip(self.row_labels, self.cells):
            if row[column_index].seconds < best_value:
                best_value = row[column_index].seconds
                best_label = label
        return best_label

    def render(self) -> str:
        """Render the table as aligned text."""
        return render_table(self)


def format_seconds(seconds: float, estimated: bool = False) -> str:
    """Human-friendly duration, flagged when extrapolated.

    >>> format_seconds(83.73)
    '83.73 sec'
    >>> format_seconds(43200, estimated=True)
    '~ half day (est.)'
    """
    if seconds >= 6 * 3600:
        text = "~ half day" if seconds < 18 * 3600 else (
            "~ 1 day" if seconds < 36 * 3600 else "~ 2 days"
        )
    elif seconds >= 3600:
        text = f"{seconds / 3600:.1f} h"
    elif seconds >= 600:
        text = f"{seconds / 60:.1f} min"
    else:
        text = f"{seconds:.2f} sec"
    if estimated:
        text += " (est.)"
    return text


def render_table(report: TableReport, label_width: int = 44,
                 cell_width: int = 22) -> str:
    """Aligned-text rendering of a :class:`TableReport`."""
    lines = [report.title, "=" * len(report.title)]
    header = " " * label_width + "".join(
        f"{column:>{cell_width}}" for column in report.columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in zip(report.row_labels, report.cells):
        rendered = "".join(
            f"{format_seconds(cell.seconds, cell.estimated):>{cell_width}}"
            for cell in row
        )
        lines.append(f"{label:<{label_width}}{rendered}")
    for footnote in report.footnotes:
        lines.append(f"  note: {footnote}")
    return "\n".join(lines)
