"""One entry per paper artifact: tables I–IX, figures 6–7, ablations.

Every experiment is a function ``run(scale) -> str`` that

1. builds (or loads from cache) the scaled dataset and workloads,
2. verifies each approach's results against the reference on a small
   batch (the paper's correctness gate — a benchmark of wrong code is
   worthless),
3. measures wall-clock seconds, and
4. renders the paper's row/column layout at the paper's query counts.

Two kinds of cells appear:

* **measured+extrapolated** — serial stages are measured on the scaled
  workload and extrapolated linearly to the column's query count
  (serial batch cost is linear in the number of queries);
* **simulated** — parallel rows replay the column's full query count
  through the scheduler model of :mod:`repro.parallel.simulator`, using
  measured per-query costs and a machine calibrated so that thread
  create+join overhead is ~6x the mean query cost — the ratio the
  paper's own Tables II/III imply for its Boost-on-Hyper-V testbed.
  (The GIL forbids measuring CPU-bound thread sweeps directly; see
  DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.bench.experiment import (
    PAPER_QUERY_LABELS,
    ExperimentScale,
    estimate_workload_seconds,
    load_city_dataset,
    load_city_workload,
    load_dna_dataset,
    load_dna_workload,
    measure_per_query_costs,
    measure_workload,
)
from repro.bench.figures import ComparisonSeries, render_comparison_figure
from repro.bench.tables import Cell, TableReport
from repro.core.indexed import IndexedSearcher
from repro.core.searcher import Searcher
from repro.core.sequential import SequentialScanSearcher
from repro.core.verification import verify_result_sets
from repro.data.stats import describe
from repro.data.workload import CITY_THRESHOLDS, DNA_THRESHOLDS, Workload
from repro.exceptions import ExperimentError
from repro.parallel.simulator import (
    SchedulerModel,
    simulate_fixed_pool,
    simulate_thread_per_query,
)

#: Thread counts the paper sweeps in Tables II, IV, VI and VIII.
THREAD_SWEEP = (4, 8, 16, 32)

#: Thread create/join overhead relative to the mean query cost; derived
#: from the paper's own numbers (Table II at 100 queries: each extra
#: thread costs ~0.14 s against a 22 ms query — a ratio of ~6).
CREATE_COST_FACTOR = 5.0
JOIN_COST_FACTOR = 1.0


@dataclass(frozen=True)
class Experiment:
    """A registered paper artifact."""

    id: str
    paper_ref: str
    description: str
    run: Callable[[ExperimentScale], "TableReport | str"]


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _city_workloads(scale: ExperimentScale) -> list[Workload]:
    return [
        load_city_workload(scale.city_count, queries, scale.city_k)
        for queries in scale.query_counts
    ]


def _dna_workloads(scale: ExperimentScale) -> list[Workload]:
    return [
        load_dna_workload(scale.dna_count, queries, scale.dna_k)
        for queries in scale.query_counts
    ]


def _columns(scale: ExperimentScale) -> list[str]:
    return [f"{label} queries" for label in PAPER_QUERY_LABELS]


def _calibrated_machine(costs: Sequence[float]) -> SchedulerModel:
    """A scheduler model whose overhead:work ratio matches the paper's."""
    mean = sum(costs) / len(costs) if costs else 1e-6
    mean = max(mean, 1e-9)
    return SchedulerModel(
        cores=8,
        thread_create_cost=CREATE_COST_FACTOR * mean,
        thread_join_cost=JOIN_COST_FACTOR * mean,
        context_switch_penalty=0.10,
    )


def _extend_costs(costs: Sequence[float], target: int) -> list[float]:
    """Cycle measured per-query costs up to the paper's query count."""
    if not costs:
        raise ExperimentError("cannot extend an empty cost list")
    repeated = list(costs) * (target // len(costs) + 1)
    return repeated[:target]


def _measured_cells(searcher: Searcher, workloads: list[Workload],
                    ) -> list[Cell]:
    """Measure each scaled batch, extrapolate to the paper's counts.

    Each batch runs twice and the faster run counts — the standard
    noise-robust choice, and essential for the smallest batch, whose
    first run is dominated by first-touch effects.
    """
    cells = []
    for workload, paper_count in zip(workloads, PAPER_QUERY_LABELS):
        _, first = measure_workload(searcher, workload)
        _, second = measure_workload(searcher, workload)
        factor = paper_count / len(workload)
        cells.append(Cell(min(first, second) * factor))
    return cells


def _estimated_cells(searcher: Searcher, workloads: list[Workload],
                     ) -> list[Cell]:
    """Sample-extrapolate a too-slow configuration (paper: '~ half day')."""
    cells = []
    for workload, paper_count in zip(workloads, PAPER_QUERY_LABELS):
        seconds = estimate_workload_seconds(searcher, workload,
                                            sample_queries=2)
        factor = paper_count / len(workload)
        cells.append(Cell(seconds * factor, estimated=True))
    return cells


def _simulated_pool_cells(costs_per_workload: list[list[float]],
                          threads: int) -> list[Cell]:
    """Fixed-pool rows at the paper's query counts."""
    cells = []
    for costs, paper_count in zip(costs_per_workload, PAPER_QUERY_LABELS):
        extended = _extend_costs(costs, paper_count)
        machine = _calibrated_machine(costs)
        cells.append(
            Cell(simulate_fixed_pool(extended, threads, machine).wall_time)
        )
    return cells


def _simulated_per_query_cells(costs_per_workload: list[list[float]],
                               ) -> list[Cell]:
    """Thread-per-query rows at the paper's query counts."""
    cells = []
    for costs, paper_count in zip(costs_per_workload, PAPER_QUERY_LABELS):
        extended = _extend_costs(costs, paper_count)
        machine = _calibrated_machine(costs)
        cells.append(
            Cell(simulate_thread_per_query(extended, machine).wall_time)
        )
    return cells


def _verify_against_reference(dataset: Sequence[str], searcher: Searcher,
                              workload: Workload, name: str) -> None:
    """The paper's gate: identical results on a small batch, or bust."""
    gate = workload.take(min(5, len(workload)))
    reference = SequentialScanSearcher(
        dataset, kernel="reference"
    ).run_workload(gate)
    verify_result_sets(reference, searcher.run_workload(gate),
                       candidate_name=name)


def _best_thread_count(costs_per_workload: list[list[float]]) -> int:
    """Thread count minimizing modelled time on the largest paper batch."""
    costs = costs_per_workload[-1]
    extended = _extend_costs(costs, PAPER_QUERY_LABELS[-1])
    machine = _calibrated_machine(costs)
    return min(
        THREAD_SWEEP,
        key=lambda threads: simulate_fixed_pool(
            extended, threads, machine
        ).wall_time,
    )


_SCALING_FOOTNOTE = (
    "cells are paper-scale equivalents: serial rows measured on the "
    "scaled workload and extrapolated linearly to the column's query "
    "count; parallel rows simulated at the column's query count from "
    "measured per-query costs (calibrated machine, 8 cores)"
)


def _sequential_stage_table(dataset: tuple[str, ...],
                            workloads: list[Workload],
                            columns: list[str], title: str, *,
                            estimate_base: bool,
                            pool_threads: int) -> TableReport:
    """Tables III and VII: the six sequential stages."""
    report = TableReport(title=title, columns=columns)
    stages: list[tuple[str, SequentialScanSearcher]] = [
        ("1) base implementation",
         SequentialScanSearcher(dataset, kernel="reference")),
        ("2) calculation of the edit distance",
         SequentialScanSearcher(dataset, kernel="banded")),
        ("3) value or reference",
         SequentialScanSearcher(dataset, kernel="banded-reused")),
        ("4) simple data types and program methods",
         SequentialScanSearcher(dataset, kernel="bitparallel")),
    ]
    for name, searcher in stages[1:]:
        _verify_against_reference(dataset, searcher, workloads[0], name)

    stage4_costs: list[list[float]] = []
    for name, searcher in stages:
        if name.startswith("1)") and estimate_base:
            report.add_row(name, _estimated_cells(searcher, workloads))
        else:
            report.add_row(name, _measured_cells(searcher, workloads))
        if name.startswith("4)"):
            stage4_costs = [
                measure_per_query_costs(searcher, workload)
                for workload in workloads
            ]

    report.add_row("5) parallelism (thread per query)",
                   _simulated_per_query_cells(stage4_costs))
    report.add_row(
        f"6) management of parallelism ({pool_threads} threads)",
        _simulated_pool_cells(stage4_costs, pool_threads),
    )
    report.add_footnote(_SCALING_FOOTNOTE)
    if estimate_base:
        report.add_footnote(
            "stage 1 extrapolated from 2 sampled queries, as the paper "
            "itself estimated its DNA base implementation"
        )
    return report


def _thread_sweep_table(costs_per_workload: list[list[float]],
                        columns: list[str], title: str) -> TableReport:
    """Tables II, IV, VI, VIII: wall time per thread count."""
    report = TableReport(title=title, columns=columns)
    for threads in THREAD_SWEEP:
        report.add_row(f"{threads} threads",
                       _simulated_pool_cells(costs_per_workload, threads))
    report.add_footnote(_SCALING_FOOTNOTE)
    return report


def _index_stage_table(dataset: tuple[str, ...], workloads: list[Workload],
                       columns: list[str], title: str, *,
                       pool_threads: int) -> TableReport:
    """Tables V and IX: the three index stages."""
    report = TableReport(title=title, columns=columns)
    trie = IndexedSearcher(dataset, index="trie")
    compressed = IndexedSearcher(dataset, index="compressed")
    for name, searcher in (
        ("1) base implementation (prefix tree)", trie),
        ("2) compression", compressed),
    ):
        _verify_against_reference(dataset, searcher, workloads[0], name)
        report.add_row(name, _measured_cells(searcher, workloads))
    compressed_costs = [
        measure_per_query_costs(compressed, workload)
        for workload in workloads
    ]
    report.add_row(
        f"3) management of parallelism ({pool_threads} threads)",
        _simulated_pool_cells(compressed_costs, pool_threads),
    )
    report.add_footnote(
        f"trie nodes: {trie.node_count:,} -> compressed "
        f"{compressed.node_count:,} "
        f"({100.0 * compressed.node_count / max(1, trie.node_count):.0f}%)"
    )
    report.add_footnote(_SCALING_FOOTNOTE)
    return report


def _best_sequential(dataset: tuple[str, ...],
                     workload: Workload) -> SequentialScanSearcher:
    """The faster of the two serial kernel champions on this data.

    The paper picks stage 4 as its best serial stage on both datasets;
    in Python the bit-parallel kernel wins on short city names while the
    buffer-reusing banded kernel wins on long DNA reads, so the harness
    measures both on a small batch and keeps the winner — the paper's
    accept-if-faster rule applied once more.
    """
    probe = workload.take(min(5, len(workload)))
    candidates = [
        SequentialScanSearcher(dataset, kernel="bitparallel"),
        SequentialScanSearcher(dataset, kernel="banded-reused"),
    ]
    timed = [
        (sum(measure_per_query_costs(searcher, probe)), searcher)
        for searcher in candidates
    ]
    return min(timed, key=lambda pair: pair[0])[1]


def _best_vs_best_figure(dataset: tuple[str, ...],
                         workloads: list[Workload],
                         columns: list[str], title: str, *,
                         tracked_symbols: str) -> str:
    """Figures 6 and 7: best sequential vs best index-based.

    Three series: the best sequential stage, the paper's index
    configuration (length annotations only, section 4.1), and the
    paper's own future-work extension — PETER-style frequency vectors
    in the nodes (section 6) — so the figure shows both the comparison
    the paper ran and the one it proposed.
    """
    sequential = _best_sequential(dataset, workloads[0])
    indexed = IndexedSearcher(dataset, index="compressed")
    indexed_freq = IndexedSearcher(dataset, index="compressed",
                                   frequency_pruning=True,
                                   tracked_symbols=tracked_symbols)
    _verify_against_reference(dataset, sequential, workloads[0],
                              "best sequential")
    _verify_against_reference(dataset, indexed, workloads[0], "best index")
    _verify_against_reference(dataset, indexed_freq, workloads[0],
                              "index + frequency vectors")
    series = []
    for name, searcher in (
        ("best sequential", sequential),
        ("best index-based", indexed),
        ("index + freq vectors (§6)", indexed_freq),
    ):
        costs = [measure_per_query_costs(searcher, w) for w in workloads]
        threads = _best_thread_count(costs)
        series.append(ComparisonSeries(
            f"{name} ({threads} threads)",
            tuple(cell.seconds
                  for cell in _simulated_pool_cells(costs, threads)),
        ))
    return render_comparison_figure(title, columns, series)


# ---------------------------------------------------------------------------
# Table I — dataset properties
# ---------------------------------------------------------------------------

def run_table01(scale: ExperimentScale) -> str:
    """Table I: the two datasets and their properties."""
    cities = load_city_dataset(scale.city_count)
    reads = load_dna_dataset(scale.dna_count)
    city_stats = describe(cities)
    dna_stats = describe(reads)
    header = (
        f"{'dataset':<12} {'#data sets':>10} {'#symbols':>9} "
        f"{'max len':>8} {'edit distance':>14}"
    )
    lines = [
        "Table I: datasets and their properties "
        f"(scale={scale.factor:g}; paper: 400,000 cities / 750,000 reads)",
        header,
        "-" * len(header),
        city_stats.table_row("City names", CITY_THRESHOLDS),
        dna_stats.table_row("DNA", DNA_THRESHOLDS),
        "",
        f"city mean length: {city_stats.mean_length:.1f} "
        f"(paper regime: short strings, large alphabet)",
        f"DNA mean length: {dna_stats.mean_length:.1f} "
        f"(paper regime: long strings, 5-symbol alphabet)",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# City names: Tables II, III, IV, V and Figure 6
# ---------------------------------------------------------------------------

def run_table02(scale: ExperimentScale) -> TableReport:
    """Table II: thread sweep of the sequential solution on cities."""
    dataset = load_city_dataset(scale.city_count)
    workloads = _city_workloads(scale)
    searcher = SequentialScanSearcher(dataset, kernel="bitparallel")
    costs = [measure_per_query_costs(searcher, w) for w in workloads]
    report = _thread_sweep_table(
        costs, _columns(scale),
        "Table II: management of parallelism, sequential, city names",
    )
    report.add_footnote(f"paper optimum at 1000 queries: 8 threads; "
                        f"model optimum here: {_best_thread_count(costs)}")
    return report


def run_table03(scale: ExperimentScale) -> TableReport:
    """Table III: staged sequential improvements on cities."""
    dataset = load_city_dataset(scale.city_count)
    report = _sequential_stage_table(
        dataset, _city_workloads(scale), _columns(scale),
        "Table III: evaluation of the sequential solution, city names",
        estimate_base=False, pool_threads=8,
    )
    return report


def run_table04(scale: ExperimentScale) -> TableReport:
    """Table IV: thread sweep of the index-based solution on cities."""
    dataset = load_city_dataset(scale.city_count)
    workloads = _city_workloads(scale)
    searcher = IndexedSearcher(dataset, index="compressed")
    costs = [measure_per_query_costs(searcher, w) for w in workloads]
    report = _thread_sweep_table(
        costs, _columns(scale),
        "Table IV: management of parallelism, index-based, city names",
    )
    report.add_footnote(f"paper optimum at 1000 queries: 32 threads; "
                        f"model optimum here: {_best_thread_count(costs)}")
    return report


def run_table05(scale: ExperimentScale) -> TableReport:
    """Table V: staged index improvements on cities."""
    dataset = load_city_dataset(scale.city_count)
    workloads = _city_workloads(scale)
    searcher = IndexedSearcher(dataset, index="compressed")
    costs = [measure_per_query_costs(searcher, w) for w in workloads]
    report = _index_stage_table(
        dataset, workloads, _columns(scale),
        "Table V: evaluation of the index-based solution, city names",
        pool_threads=_best_thread_count(costs),
    )
    return report


def run_fig06(scale: ExperimentScale) -> str:
    """Figure 6: best sequential vs best index-based, city names."""
    return _best_vs_best_figure(
        load_city_dataset(scale.city_count),
        _city_workloads(scale), _columns(scale),
        "Figure 6: best sequential vs best index-based, city names "
        "(paper: sequential wins, needing 4-58% of the index's time)",
        tracked_symbols="AEIOU",
    )


# ---------------------------------------------------------------------------
# DNA: Tables VI, VII, VIII, IX and Figure 7
# ---------------------------------------------------------------------------

def run_table06(scale: ExperimentScale) -> TableReport:
    """Table VI: thread sweep of the sequential solution on DNA."""
    dataset = load_dna_dataset(scale.dna_count)
    workloads = _dna_workloads(scale)
    searcher = SequentialScanSearcher(dataset, kernel="bitparallel")
    costs = [measure_per_query_costs(searcher, w) for w in workloads]
    report = _thread_sweep_table(
        costs, _columns(scale),
        "Table VI: management of parallelism, sequential, DNA",
    )
    report.add_footnote(
        f"paper optimum at 1000 queries: 32 threads (within 2.5% of 8/16); "
        f"model optimum here: {_best_thread_count(costs)}"
    )
    return report


def run_table07(scale: ExperimentScale) -> TableReport:
    """Table VII: staged sequential improvements on DNA."""
    dataset = load_dna_dataset(scale.dna_count)
    report = _sequential_stage_table(
        dataset, _dna_workloads(scale), _columns(scale),
        "Table VII: evaluation of the sequential solution, DNA",
        estimate_base=True, pool_threads=16,
    )
    return report


def run_table08(scale: ExperimentScale) -> TableReport:
    """Table VIII: thread sweep of the index-based solution on DNA."""
    dataset = load_dna_dataset(scale.dna_count)
    workloads = _dna_workloads(scale)
    searcher = IndexedSearcher(dataset, index="compressed")
    costs = [measure_per_query_costs(searcher, w) for w in workloads]
    report = _thread_sweep_table(
        costs, _columns(scale),
        "Table VIII: management of parallelism, index-based, DNA",
    )
    report.add_footnote(f"paper optimum at 1000 queries: 16 threads; "
                        f"model optimum here: {_best_thread_count(costs)}")
    return report


def run_table09(scale: ExperimentScale) -> TableReport:
    """Table IX: staged index improvements on DNA."""
    dataset = load_dna_dataset(scale.dna_count)
    workloads = _dna_workloads(scale)
    searcher = IndexedSearcher(dataset, index="compressed")
    costs = [measure_per_query_costs(searcher, w) for w in workloads]
    report = _index_stage_table(
        dataset, workloads, _columns(scale),
        "Table IX: evaluation of the index-based solution, DNA",
        pool_threads=_best_thread_count(costs),
    )
    return report


def run_fig07(scale: ExperimentScale) -> str:
    """Figure 7: best sequential vs best index-based, DNA."""
    return _best_vs_best_figure(
        load_dna_dataset(scale.dna_count),
        _dna_workloads(scale), _columns(scale),
        "Figure 7: best sequential vs best index-based, DNA "
        "(paper: the index wins on long reads)",
        tracked_symbols="ACGNT",
    )


# ---------------------------------------------------------------------------
# Ablations — the paper's future-work items (section 6)
# ---------------------------------------------------------------------------

def run_ablation(scale: ExperimentScale) -> str:
    """Section 6 future work, measured: sorting, packing, freq, q-grams."""
    from repro.bench.ablation import run_future_work_ablation

    return run_future_work_ablation(scale)


def run_shootout(scale: ExperimentScale) -> TableReport:
    """All index structures vs the optimized scan (beyond the paper)."""
    from repro.bench.extras import run_shootout as run

    return run(scale)


def run_sweep(scale: ExperimentScale) -> TableReport:
    """Threshold sensitivity of the scan/trie crossover."""
    from repro.bench.extras import run_threshold_sweep

    return run_threshold_sweep(scale)


def run_scaling(scale: ExperimentScale) -> TableReport:
    """Dataset-size scaling of the scan/trie comparison on DNA."""
    from repro.bench.extras import run_scaling as run

    return run(scale)


def run_joins(scale: ExperimentScale) -> TableReport:
    """Join strategies compared on both regimes."""
    from repro.bench.extras import run_joins as run

    return run(scale)


def run_memory(scale: ExperimentScale) -> str:
    """Deep memory footprints of every structure, both datasets."""
    from repro.bench.memory import render_footprints

    cities = list(load_city_dataset(scale.city_count))
    reads = list(load_dna_dataset(scale.dna_count))
    return "\n\n".join([
        render_footprints(cities, "city-name"),
        render_footprints(reads, "DNA-read"),
    ])


EXPERIMENTS: dict[str, Experiment] = {
    experiment.id: experiment
    for experiment in (
        Experiment("table01", "Table I",
                   "dataset properties", run_table01),
        Experiment("table02", "Table II",
                   "thread sweep, sequential, cities", run_table02),
        Experiment("table03", "Table III",
                   "sequential stages, cities", run_table03),
        Experiment("table04", "Table IV",
                   "thread sweep, index, cities", run_table04),
        Experiment("table05", "Table V",
                   "index stages, cities", run_table05),
        Experiment("table06", "Table VI",
                   "thread sweep, sequential, DNA", run_table06),
        Experiment("table07", "Table VII",
                   "sequential stages, DNA", run_table07),
        Experiment("table08", "Table VIII",
                   "thread sweep, index, DNA", run_table08),
        Experiment("table09", "Table IX",
                   "index stages, DNA", run_table09),
        Experiment("fig06", "Figure 6",
                   "best-vs-best, cities", run_fig06),
        Experiment("fig07", "Figure 7",
                   "best-vs-best, DNA", run_fig07),
        Experiment("ablation", "Section 6",
                   "future-work ablations", run_ablation),
        Experiment("shootout", "beyond the paper",
                   "all index structures vs the scan", run_shootout),
        Experiment("sweep", "beyond the paper",
                   "threshold sensitivity of the crossover", run_sweep),
        Experiment("memory", "sections 2.3/4.2 context",
                   "index memory footprints", run_memory),
        Experiment("scaling", "section 6 (number of records)",
                   "dataset-size scaling, DNA", run_scaling),
        Experiment("joins", "competition join track",
                   "join-strategy comparison", run_joins),
    )
}


def run_experiment_raw(experiment_id: str,
                       scale: ExperimentScale | None = None,
                       ) -> TableReport | str:
    """Run one experiment, returning its report object.

    Table experiments return a :class:`TableReport` so callers (the
    benchmark suite, notably) can assert on individual cells; figure
    and ablation experiments return rendered text.
    """
    if experiment_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        )
    if scale is None:
        scale = ExperimentScale.from_env()
    return EXPERIMENTS[experiment_id].run(scale)


def run_experiment(experiment_id: str,
                   scale: ExperimentScale | None = None) -> str:
    """Run one registered experiment and return its text report."""
    result = run_experiment_raw(experiment_id, scale)
    if isinstance(result, TableReport):
        return result.render()
    return result
