"""Benchmark harness: regenerate every table and figure of the paper.

The harness separates three concerns:

* :mod:`repro.bench.experiment` — scaling (Python is ~two orders of
  magnitude slower per DP cell than the paper's C++; ``REPRO_SCALE``
  grows dataset/query sizes toward paper scale), dataset caching, and
  measurement primitives (wall-clock only, like the paper).
* :mod:`repro.bench.tables` / :mod:`repro.bench.figures` — renderers
  that print the same row/column layout the paper's appendix uses.
* :mod:`repro.bench.registry` — one entry per paper artifact
  (table01…table09, fig06, fig07, ablation) mapping to a callable that
  produces the report; the ``benchmarks/`` pytest files are thin
  wrappers over this registry.
"""

from repro.bench.experiment import (
    ExperimentScale,
    estimate_workload_seconds,
    load_city_dataset,
    load_dna_dataset,
    measure_per_query_costs,
    measure_workload,
)
from repro.bench.figures import render_comparison_figure
from repro.bench.memory import deep_sizeof, measure_footprints, \
    render_footprints
from repro.bench.profile import (
    CostProfile,
    imbalance_report,
    partition_imbalance,
    profile_costs,
)
from repro.bench.registry import (
    EXPERIMENTS,
    run_experiment,
    run_experiment_raw,
)
from repro.bench.tables import format_seconds, render_table

__all__ = [
    "ExperimentScale",
    "load_city_dataset",
    "load_dna_dataset",
    "measure_workload",
    "measure_per_query_costs",
    "estimate_workload_seconds",
    "render_table",
    "format_seconds",
    "render_comparison_figure",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiment_raw",
    "deep_sizeof",
    "measure_footprints",
    "render_footprints",
    "CostProfile",
    "profile_costs",
    "partition_imbalance",
    "imbalance_report",
]
