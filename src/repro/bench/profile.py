"""Workload cost profiles: the statistics behind the parallel story.

The thread-sweep tables hinge on properties of the per-query cost
distribution — a skewed batch balances poorly over few static
partitions, which is why more threads than cores can help (paper
Tables IV/VIII). This module turns a list of measured costs into the
numbers that explain those effects, plus a direct imbalance analysis
of the static round-robin partitioning the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ExperimentError
from repro.parallel.partition import round_robin_chunks


@dataclass(frozen=True)
class CostProfile:
    """Summary statistics of a per-query cost distribution."""

    count: int
    total: float
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float
    coefficient_of_variation: float

    @property
    def skew_ratio(self) -> float:
        """``max / mean`` — 1.0 for perfectly uniform costs."""
        if self.mean == 0:
            return 0.0
        return self.maximum / self.mean

    def summary(self) -> str:
        """One-line human-readable profile."""
        return (
            f"n={self.count} total={self.total:.3f}s "
            f"mean={1000 * self.mean:.2f}ms p50={1000 * self.p50:.2f}ms "
            f"p99={1000 * self.p99:.2f}ms max={1000 * self.maximum:.2f}ms "
            f"cv={self.coefficient_of_variation:.2f}"
        )


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending sequence."""
    if not ordered:
        raise ExperimentError("cannot take a percentile of no samples")
    rank = max(0, min(len(ordered) - 1,
                      round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def profile_costs(costs: Sequence[float]) -> CostProfile:
    """Build a :class:`CostProfile` from measured per-query seconds.

    >>> profile_costs([1.0, 1.0, 2.0]).skew_ratio
    1.5
    """
    if not costs:
        raise ExperimentError("cannot profile an empty cost list")
    if any(cost < 0 for cost in costs):
        raise ExperimentError("costs must be non-negative")
    ordered = sorted(costs)
    count = len(ordered)
    total = sum(ordered)
    mean = total / count
    variance = sum((cost - mean) ** 2 for cost in ordered) / count
    cv = (variance ** 0.5) / mean if mean > 0 else 0.0
    return CostProfile(
        count=count,
        total=total,
        mean=mean,
        p50=_percentile(ordered, 0.50),
        p90=_percentile(ordered, 0.90),
        p99=_percentile(ordered, 0.99),
        maximum=ordered[-1],
        coefficient_of_variation=cv,
    )


def partition_imbalance(costs: Sequence[float], threads: int) -> float:
    """Makespan inflation of a static round-robin partition.

    Returns ``makespan / (total / threads)`` — 1.0 is a perfect split;
    values well above 1 mean the slowest worker drags the batch, which
    is exactly when *more* workers (finer chunks) or dynamic pulling
    (the paper's managed strategy) pay off.

    >>> partition_imbalance([1.0, 1.0, 1.0, 1.0], 2)
    1.0
    """
    if threads < 1:
        raise ExperimentError(f"threads must be >= 1, got {threads}")
    if not costs:
        raise ExperimentError("cannot analyse an empty cost list")
    chunks = round_robin_chunks(list(costs), threads)
    makespan = max(sum(chunk) for chunk in chunks)
    ideal = sum(costs) / threads
    if ideal == 0:
        return 1.0
    return makespan / ideal


def imbalance_report(costs: Sequence[float],
                     thread_counts: Sequence[int] = (4, 8, 16, 32),
                     ) -> str:
    """Imbalance factors across the paper's thread sweep, as text."""
    profile = profile_costs(costs)
    lines = [
        f"cost profile: {profile.summary()}",
        "static round-robin imbalance (makespan / ideal):",
    ]
    for threads in thread_counts:
        factor = partition_imbalance(costs, threads)
        lines.append(f"  {threads:>3} threads: {factor:.3f}x")
    return "\n".join(lines)
