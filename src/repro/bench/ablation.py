"""Future-work ablations (paper section 6), measured.

The paper closes with a list of unexplored ideas; this module measures
each one against the configuration it would extend:

* **Sorting** — presort by length, scan only the feasible window.
* **Dictionary compression** — 3-bit-packed DNA distance kernel.
* **Frequency vectors** — PETER-style trie pruning on/off.
* **Another well-known index** — the inverted q-gram index versus the
  compressed trie and the optimized scan.
"""

from __future__ import annotations

import time

from repro.bench.experiment import (
    ExperimentScale,
    load_city_dataset,
    load_city_workload,
    load_dna_dataset,
    load_dna_workload,
    measure_workload,
)
from repro.bench.tables import TableReport
from repro.core.indexed import IndexedSearcher
from repro.core.sequential import SequentialScanSearcher
from repro.core.verification import verify_result_sets
from repro.data.alphabet import DNA_ALPHABET
from repro.distance.banded import edit_distance_bounded
from repro.distance.packed import pack, packed_edit_distance_bounded
from repro.index.traversal import TraversalStats, trie_similarity_search
from repro.index.trie import PrefixTrie


def _packing_microbench(reads: tuple[str, ...], k: int,
                        pairs: int = 300) -> tuple[float, float, float]:
    """(unpacked seconds, packed seconds, storage saving) over read pairs."""
    sample = reads[: 2 * pairs]
    unpacked_pairs = list(zip(sample[0::2], sample[1::2]))
    packed_pairs = [
        (pack(x, DNA_ALPHABET), pack(y, DNA_ALPHABET))
        for x, y in unpacked_pairs
    ]
    started = time.perf_counter()
    for x, y in unpacked_pairs:
        edit_distance_bounded(x, y, k)
    unpacked_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for px, py in packed_pairs:
        packed_edit_distance_bounded(px, py, k)
    packed_seconds = time.perf_counter() - started
    raw_bits = sum(8 * len(x) + 8 * len(y) for x, y in unpacked_pairs)
    packed_bits = sum(
        px.storage_bits + py.storage_bits for px, py in packed_pairs
    )
    saving = 1.0 - packed_bits / raw_bits if raw_bits else 0.0
    return unpacked_seconds, packed_seconds, saving


def run_future_work_ablation(scale: ExperimentScale) -> str:
    """Measure every section-6 idea; returns the combined report."""
    cities = load_city_dataset(scale.city_count)
    reads = load_dna_dataset(scale.dna_count)
    city_workload = load_city_workload(
        scale.city_count, scale.query_counts[0], scale.city_k
    )
    dna_workload = load_dna_workload(
        scale.dna_count, scale.query_counts[0], scale.dna_k
    )
    columns = ["cities", "DNA"]
    report = TableReport(
        title="Section 6 future work, measured "
              f"({len(city_workload)} queries per cell)",
        columns=columns,
    )

    # --- Sorting: length-ordered scan vs plain scan ---------------------
    plain_city = SequentialScanSearcher(cities, kernel="bitparallel")
    sorted_city = SequentialScanSearcher(
        cities, kernel="bitparallel", order="length"
    )
    plain_dna = SequentialScanSearcher(reads, kernel="bitparallel")
    sorted_dna = SequentialScanSearcher(
        reads, kernel="bitparallel", order="length"
    )
    reference_city, plain_city_s = measure_workload(plain_city, city_workload)
    reference_dna, plain_dna_s = measure_workload(plain_dna, dna_workload)
    sorted_city_results, sorted_city_s = measure_workload(
        sorted_city, city_workload
    )
    sorted_dna_results, sorted_dna_s = measure_workload(
        sorted_dna, dna_workload
    )
    verify_result_sets(reference_city, sorted_city_results,
                       candidate_name="sorted scan (cities)")
    verify_result_sets(reference_dna, sorted_dna_results,
                       candidate_name="sorted scan (DNA)")
    report.add_row("scan, unsorted", [plain_city_s, plain_dna_s])
    report.add_row("scan, presorted by length", [sorted_city_s,
                                                 sorted_dna_s])

    # --- Frequency vectors: trie pruning on/off -------------------------
    freq_rows = []
    for dataset, workload, tracked, reference in (
        (cities, city_workload, "AEIOU", reference_city),
        (reads, dna_workload, "ACGNT", reference_dna),
    ):
        plain = IndexedSearcher(dataset, index="trie")
        pruned = IndexedSearcher(dataset, index="trie",
                                 frequency_pruning=True,
                                 tracked_symbols=tracked)
        plain_results, plain_seconds = measure_workload(plain, workload)
        pruned_results, pruned_seconds = measure_workload(pruned, workload)
        verify_result_sets(reference, plain_results,
                           candidate_name="trie")
        verify_result_sets(reference, pruned_results,
                           candidate_name="trie+freq")
        freq_rows.append((plain_seconds, pruned_seconds))
    report.add_row("trie, no frequency vectors",
                   [freq_rows[0][0], freq_rows[1][0]])
    report.add_row("trie, frequency vectors (PETER)",
                   [freq_rows[0][1], freq_rows[1][1]])

    # --- Another index: inverted q-grams --------------------------------
    qgram_city = IndexedSearcher(cities, index="qgram", q=2)
    qgram_dna = IndexedSearcher(reads, index="qgram", q=4)
    qc_results, qc_seconds = measure_workload(qgram_city, city_workload)
    qd_results, qd_seconds = measure_workload(qgram_dna, dna_workload)
    verify_result_sets(reference_city, qc_results,
                       candidate_name="qgram (cities)")
    verify_result_sets(reference_dna, qd_results,
                       candidate_name="qgram (DNA)")
    report.add_row("inverted q-gram index", [qc_seconds, qd_seconds])

    rendered = report.render()

    # --- Dictionary compression: 3-bit packed DNA kernel ----------------
    unpacked_s, packed_s, saving = _packing_microbench(reads, scale.dna_k)
    pruning_note = _frequency_pruning_note(reads, dna_workload.queries[0],
                                           scale.dna_k)
    lines = [
        rendered,
        "",
        "dictionary compression (3-bit DNA packing, banded kernel, "
        f"{min(len(reads) // 2, 300)} pairs):",
        f"  unpacked: {unpacked_s:.3f}s   packed: {packed_s:.3f}s   "
        f"storage saved: {100 * saving:.0f}%",
        pruning_note,
    ]
    return "\n".join(lines)


def _frequency_pruning_note(reads: tuple[str, ...], query: str,
                            k: int) -> str:
    """Quantify how many branches frequency vectors prune on one query."""
    trie = PrefixTrie(reads, tracked_symbols="ACGNT",
                      case_insensitive_frequencies=False)
    with_stats = TraversalStats()
    trie_similarity_search(trie, query, k, use_frequency_pruning=True,
                           stats=with_stats)
    without_stats = TraversalStats()
    trie_similarity_search(trie, query, k, use_frequency_pruning=False,
                           stats=without_stats)
    return (
        "frequency-vector pruning on one DNA query: "
        f"{with_stats.nodes_visited:,} nodes visited with vectors vs "
        f"{without_stats.nodes_visited:,} without "
        f"({with_stats.branches_pruned_by_frequency:,} branches cut)"
    )
