"""Experiment scaling, dataset caching and measurement primitives.

The paper measures wall-clock seconds ("actual execution and not the
CPU time", section 5.2) for 100/500/1,000 queries over 400,000 city
names / 750,000 DNA reads. A pure-Python reproduction pays roughly two
orders of magnitude per DP cell, so the default scale shrinks both axes
while preserving every *ratio* the paper reports. Set the
``REPRO_SCALE`` environment variable (a float; 1.0 is the default) to
grow toward paper scale; ``REPRO_SCALE=100`` approximates the original
sizes.

The paper could not measure its own DNA base implementation either —
Table VII row 1 reads "≈ half day". :func:`estimate_workload_seconds`
reproduces that honestly: measure a sample of query/candidate pairs,
extrapolate, and label the figure as an estimate.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.result import ResultSet
from repro.core.searcher import QueryRunner, Searcher
from repro.data.cities import generate_city_names
from repro.data.dna import DnaReadGenerator
from repro.data.workload import Workload, make_workload
from repro.exceptions import ExperimentError

#: Default (scale 1.0) sizes, chosen so the full benchmark suite runs
#: in minutes while every paper ratio survives.
BASE_CITY_COUNT = 2000
BASE_DNA_COUNT = 400
BASE_QUERY_COUNTS = (10, 30, 60)

#: The paper's query-count labels; reports show "label (actual n)".
PAPER_QUERY_LABELS = (100, 500, 1000)

#: Default thresholds for the scaled runs. Cities use Table I's hardest
#: threshold (k=3): the Myers scan's cost is k-independent while the trie
#: band widens with k, and k=3 is where the scaled-down datasets show the
#: same crossover the paper reports at full scale (see EXPERIMENTS.md).
#: DNA uses the middle threshold of Table I's range.
CITY_DEFAULT_K = 3
DNA_DEFAULT_K = 8


def _scale_from_env() -> float:
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as error:
        raise ExperimentError(
            f"REPRO_SCALE must be a number, got {raw!r}"
        ) from error
    if scale <= 0:
        raise ExperimentError(f"REPRO_SCALE must be positive, got {scale}")
    return scale


@dataclass(frozen=True)
class ExperimentScale:
    """Resolved experiment sizes for the current scale factor.

    Attributes
    ----------
    factor:
        The scale multiplier (``REPRO_SCALE``).
    city_count / dna_count:
        Dataset sizes.
    query_counts:
        The three batch sizes standing in for the paper's 100/500/1000.
    city_k / dna_k:
        Default thresholds used by the tables.
    """

    factor: float = 1.0
    city_count: int = BASE_CITY_COUNT
    dna_count: int = BASE_DNA_COUNT
    query_counts: tuple[int, ...] = BASE_QUERY_COUNTS
    city_k: int = CITY_DEFAULT_K
    dna_k: int = DNA_DEFAULT_K

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Build the scale from ``REPRO_SCALE`` (default 1.0)."""
        factor = _scale_from_env()
        return cls(
            factor=factor,
            city_count=max(10, int(BASE_CITY_COUNT * factor)),
            dna_count=max(10, int(BASE_DNA_COUNT * factor)),
            query_counts=tuple(
                max(2, int(count * min(factor, 10.0)))
                for count in BASE_QUERY_COUNTS
            ),
        )

    def query_label(self, index: int) -> str:
        """Paper column label for the ``index``-th query count."""
        label = PAPER_QUERY_LABELS[index]
        actual = self.query_counts[index]
        return f"{label} queries (n={actual})"


@lru_cache(maxsize=8)
def load_city_dataset(count: int, seed: int = 2013) -> tuple[str, ...]:
    """Generate (and memoize) the synthetic city-name dataset."""
    return tuple(generate_city_names(count, seed=seed))


@lru_cache(maxsize=8)
def load_dna_dataset(count: int, seed: int = 2013) -> tuple[str, ...]:
    """Generate (and memoize) the synthetic DNA-read dataset."""
    generator = DnaReadGenerator(
        genome_length=max(5_000, 25 * count), seed=seed
    )
    return tuple(generator.generate(count))


@lru_cache(maxsize=32)
def load_city_workload(count: int, queries: int, k: int,
                       seed: int = 2013) -> Workload:
    """Workload over the memoized city dataset."""
    dataset = load_city_dataset(count, seed)
    return make_workload(
        dataset, queries, k, alphabet_symbols="abcdefghilmnorstu",
        seed=seed + 1, name=f"city-{queries}q-k{k}",
    )


@lru_cache(maxsize=32)
def load_dna_workload(count: int, queries: int, k: int,
                      seed: int = 2013) -> Workload:
    """Workload over the memoized DNA dataset."""
    dataset = load_dna_dataset(count, seed)
    return make_workload(
        dataset, queries, k, alphabet_symbols="ACGNT",
        seed=seed + 1, name=f"dna-{queries}q-k{k}",
    )


def measure_workload(searcher: Searcher, workload: Workload,
                     runner: QueryRunner | None = None,
                     ) -> tuple[ResultSet, float]:
    """Run a workload and return ``(results, wall seconds)``.

    Times only query execution — index/searcher construction happened
    before this call, matching the paper's measurement window
    (section 4.1).
    """
    started = time.perf_counter()
    results = searcher.run_workload(workload, runner)
    return results, time.perf_counter() - started


def measure_per_query_costs(searcher: Searcher, workload: Workload, *,
                            warmup: bool = True) -> list[float]:
    """Measured single-thread seconds for each query individually.

    These costs feed the scheduler model
    (:mod:`repro.parallel.simulator`) for the thread-sweep tables.
    A warmup pass runs the whole batch once first, so first-touch
    effects (page faults on index nodes, bytecode specialization) do
    not get billed to whichever query happens to run first — small
    batches are otherwise dominated by them.
    """
    costs = []
    k = workload.k
    if warmup:
        for query in workload.queries:
            searcher.search(query, k)
    for query in workload.queries:
        started = time.perf_counter()
        searcher.search(query, k)
        costs.append(time.perf_counter() - started)
    return costs


def estimate_workload_seconds(searcher: Searcher, workload: Workload, *,
                              sample_queries: int = 3) -> float:
    """Extrapolated batch time from a small measured sample.

    For configurations too slow to run outright (the paper's own DNA
    base implementation: "≈ half day"), measure ``sample_queries``
    queries and scale linearly. Reports must label the result as an
    estimate; :func:`repro.bench.tables.format_seconds` does so when
    passed ``estimated=True``.
    """
    if sample_queries < 1:
        raise ExperimentError(
            f"sample_queries must be >= 1, got {sample_queries}"
        )
    sample = workload.take(min(sample_queries, len(workload)))
    if not len(sample):
        return 0.0
    started = time.perf_counter()
    for query in sample.queries:
        searcher.search(query, sample.k)
    elapsed = time.perf_counter() - started
    return elapsed * (len(workload) / len(sample))
