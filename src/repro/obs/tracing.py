"""Request-scoped distributed tracing with cross-boundary propagation.

The registry's :class:`repro.obs.registry.Span` records answer "where
did *this registry's* time go" — they are anonymous, per-registry, and
deliberately not merged across processes (their ``started`` offsets are
process-local). A serving stack needs the complementary question
answered: **where did this one request's time go**, across an asyncio
gateway, a thread pool, a process pool and a background compaction
thread. That is what this module provides:

* :class:`TraceContext` — the propagated identity of one request:
  ``trace_id`` (shared by every span of one submit), ``span_id`` (the
  current node), ``parent_id`` (the edge to the enclosing node) and
  ``baggage`` (small string key/values that ride along, e.g. the
  gateway's shed decision). Contexts are immutable; :meth:`TraceContext.child`
  mints the next hop. They serialize to plain dicts
  (:meth:`TraceContext.to_dict`) so they cross process boundaries next
  to the existing counter handoff.
* :class:`TraceSpan` — one completed, attributed section: name, the
  three ids, wall-clock start (``time.time()`` — comparable across
  processes on one host, unlike ``perf_counter``), duration, ``pid``
  and ``tid`` for Perfetto lane stitching, and string tags.
* :class:`Tracer` — the bounded, thread-safe collector. One tracer per
  serving stack; every layer appends to it either directly or by
  shipping serialized spans back from workers (:meth:`Tracer.adopt`).

**Propagation model.** Within one thread the active context is ambient
(a thread-local installed with :func:`use_trace`), so deep layers emit
spans with :func:`trace_span` without threading arguments through every
signature. Across boundaries the handoff is explicit:

* asyncio → thread: the gateway wraps the executor callable with
  :func:`bound` so the worker thread re-installs the tracer + context;
* thread → process: the task ships ``context.child().to_dict()``, the
  worker records spans locally (its own ``pid``/``tid``) and returns
  them alongside the counter 4-tuple; the parent rejoins them with
  :meth:`Tracer.adopt`;
* foreground → background compaction: the mutating call captures its
  ambient pair and the compaction thread re-installs it, so the
  compaction span parents under the insert that triggered it.

**Sampling.** A context is minted for *every* request (events and
slowlog exemplars want the trace_id even when spans are off), but span
recording is gated on ``context.sampled``: an unsampled context makes
:func:`trace_span` return a shared no-op, so tracing can stay enabled
in production at near-zero cost (the <5% overhead guard in
``tests/traffic/test_trace_propagation.py`` pins this down).

Examples
--------
>>> tracer = Tracer()
>>> with tracer.root("gateway.submit") as ctx:
...     with trace_span("service.submit"):
...         with trace_span("shard[0]"):
...             pass
>>> tree = span_tree(tracer.spans())
>>> [child.name for child in tree.children[tree.roots[0].span_id]]
['service.submit']
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

#: Spans kept per tracer before new ones are dropped (and counted by
#: :attr:`Tracer.dropped`) — request tracing must never grow unbounded.
DEFAULT_MAX_SPANS = 4096


def new_id() -> str:
    """A fresh 16-hex-digit span/trace id (random, collision-safe)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one request at one point in the tree.

    Attributes
    ----------
    trace_id:
        Shared by every span of one submit — the tree's identity.
    span_id:
        The current node's id; spans recorded under this context use it.
    parent_id:
        The enclosing node's span_id (``None`` at the root).
    baggage:
        Small string key/value pairs that propagate to every child
        (e.g. ``shed=admit``); kept as a sorted tuple so the context
        stays hashable and order-stable.
    sampled:
        Whether spans under this context are recorded. Ids and baggage
        propagate regardless, so events and exemplars can always carry
        the trace_id.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None
    baggage: tuple[tuple[str, str], ...] = ()
    sampled: bool = True

    def child(self) -> "TraceContext":
        """The context of a new span one level below this one."""
        return TraceContext(
            trace_id=self.trace_id, span_id=new_id(),
            parent_id=self.span_id, baggage=self.baggage,
            sampled=self.sampled,
        )

    def with_baggage(self, **items: str) -> "TraceContext":
        """This context with extra baggage entries (same span ids)."""
        merged = dict(self.baggage)
        for key, value in items.items():
            merged[key] = str(value)
        return TraceContext(
            trace_id=self.trace_id, span_id=self.span_id,
            parent_id=self.parent_id,
            baggage=tuple(sorted(merged.items())), sampled=self.sampled,
        )

    def baggage_value(self, key: str, default: str = "") -> str:
        """One baggage value (``default`` when absent)."""
        for name, value in self.baggage:
            if name == key:
                return value
        return default

    def to_dict(self) -> dict:
        """A JSON/pickle-friendly form for crossing process boundaries."""
        return {
            "trace_id": self.trace_id, "span_id": self.span_id,
            "parent_id": self.parent_id,
            "baggage": [list(pair) for pair in self.baggage],
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TraceContext":
        """Rebuild a shipped context (inverse of :meth:`to_dict`)."""
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            baggage=tuple(
                (str(key), str(value))
                for key, value in payload.get("baggage", ())
            ),
            sampled=bool(payload.get("sampled", True)),
        )


@dataclass(frozen=True)
class TraceSpan:
    """One completed, request-attributed section.

    ``started`` is wall-clock (``time.time()``) so spans from different
    processes on one host line up on a shared axis; ``pid``/``tid``
    place the span on its Perfetto lane.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    started: float
    seconds: float
    pid: int
    tid: int
    thread: str = ""
    tags: tuple[tuple[str, str], ...] = ()

    def to_dict(self) -> dict:
        """A JSON-friendly form (what workers ship back)."""
        return {
            "name": self.name, "trace_id": self.trace_id,
            "span_id": self.span_id, "parent_id": self.parent_id,
            "started": self.started, "seconds": self.seconds,
            "pid": self.pid, "tid": self.tid, "thread": self.thread,
            "tags": [list(pair) for pair in self.tags],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TraceSpan":
        """Rebuild a shipped span (inverse of :meth:`to_dict`)."""
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            started=float(payload["started"]),
            seconds=float(payload["seconds"]),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            thread=str(payload.get("thread", "")),
            tags=tuple(
                (str(key), str(value))
                for key, value in payload.get("tags", ())
            ),
        )


class Tracer:
    """The bounded, thread-safe collector of one stack's trace spans.

    Parameters
    ----------
    max_spans:
        Spans kept before new ones are dropped (counted, never raised —
        tracing must not fail a request).
    sample_rate:
        Fraction of minted root contexts that record spans. ``1.0``
        records everything; ``0.0`` is "enabled but unsampled": every
        request still gets a trace_id (for events and exemplars) but
        no spans, at near-zero cost. Sampling is deterministic
        (every ``round(1/rate)``-th mint) so tests are stable.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.root("gateway.submit") as ctx:
    ...     len(ctx.trace_id)
    16
    >>> tracer.spans()[0].name
    'gateway.submit'
    """

    enabled = True

    def __init__(self, *, max_spans: int = DEFAULT_MAX_SPANS,
                 sample_rate: float = 1.0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            from repro.exceptions import ReproError

            raise ReproError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self._max_spans = max_spans
        self._sample_rate = sample_rate
        self._sample_period = (
            0 if sample_rate <= 0.0 else max(1, round(1.0 / sample_rate))
        )
        self._minted = 0
        self._dropped = 0
        self._spans: list[TraceSpan] = []
        self._lock = threading.Lock()

    @property
    def sample_rate(self) -> float:
        """The configured sampling fraction."""
        return self._sample_rate

    @property
    def dropped(self) -> int:
        """Spans discarded because the collector was full."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._spans)

    # -- minting and recording -----------------------------------------

    def mint(self, *, baggage: Mapping[str, str] | None = None
             ) -> TraceContext:
        """A fresh root context (no parent), sampling decided here."""
        with self._lock:
            self._minted += 1
            sampled = (self._sample_period > 0
                       and self._minted % self._sample_period == 0)
        packed = tuple(sorted(
            (str(key), str(value))
            for key, value in (baggage or {}).items()
        ))
        identity = new_id()
        return TraceContext(trace_id=identity, span_id=new_id(),
                            baggage=packed, sampled=sampled)

    def record(self, span: TraceSpan) -> None:
        """Append one completed span (bounded; drops count, not raise)."""
        with self._lock:
            if len(self._spans) < self._max_spans:
                self._spans.append(span)
            else:
                self._dropped += 1

    def record_span(self, name: str, context: TraceContext,
                    started: float, seconds: float,
                    tags: Mapping[str, str] | None = None) -> None:
        """Record an already-measured section under ``context``.

        The explicit-timing twin of :meth:`span` for callers that
        measured the section anyway (the gateway, the batch executors)
        — one call, no context-manager overhead on the hot path.
        """
        if not context.sampled:
            return
        current = threading.current_thread()
        self.record(TraceSpan(
            name=name, trace_id=context.trace_id,
            span_id=context.span_id, parent_id=context.parent_id,
            started=started, seconds=seconds,
            pid=os.getpid(), tid=current.ident or 0,
            thread=current.name,
            tags=tuple(sorted(
                (str(key), str(value))
                for key, value in (tags or {}).items()
            )),
        ))

    @contextmanager
    def root(self, name: str, *,
             baggage: Mapping[str, str] | None = None
             ) -> Iterator[TraceContext]:
        """Mint a root context, make it ambient, record its span.

        The entry point for stacks without a gateway (``Service`` used
        standalone, the CLI, tests): one block opens the tree.
        """
        context = self.mint(baggage=baggage)
        started = time.time()
        clock = time.perf_counter()
        try:
            with use_trace(self, context):
                yield context
        finally:
            # Record even when the block raised — a failed attempt's
            # span is exactly what the trace is for.
            self.record_span(name, context, started,
                             time.perf_counter() - clock)

    @contextmanager
    def span(self, name: str, *, context: TraceContext,
             tags: Mapping[str, str] | None = None
             ) -> Iterator[TraceContext]:
        """Open a child span of ``context``, ambient for the block."""
        child = context.child()
        started = time.time()
        clock = time.perf_counter()
        try:
            with use_trace(self, child):
                yield child
        finally:
            self.record_span(name, child, started,
                             time.perf_counter() - clock, tags=tags)

    # -- cross-boundary rejoin -----------------------------------------

    def adopt(self, spans: Iterable) -> int:
        """Fold worker-shipped spans in; returns how many were added.

        Accepts :class:`TraceSpan` objects or their ``to_dict`` forms.
        The shipped spans keep their own ``pid``/``tid`` — that is the
        point: the export stitches them onto the worker's lane.
        """
        added = 0
        for span in spans:
            if not isinstance(span, TraceSpan):
                span = TraceSpan.from_dict(span)
            self.record(span)
            added += 1
        return added

    # -- snapshots ------------------------------------------------------

    def spans(self) -> tuple[TraceSpan, ...]:
        """Every collected span, in arrival order."""
        with self._lock:
            return tuple(self._spans)

    def spans_for(self, trace_id: str) -> tuple[TraceSpan, ...]:
        """The spans of one trace, in arrival order."""
        return tuple(span for span in self.spans()
                     if span.trace_id == trace_id)

    def export(self) -> list[dict]:
        """Every span as a plain dict (what workers return)."""
        return [span.to_dict() for span in self.spans()]

    def reset(self) -> None:
        """Drop every collected span (the mint counter survives)."""
        with self._lock:
            self._spans.clear()
            self._dropped = 0


class NullTracer(Tracer):
    """A tracer that discards everything — the off switch.

    Mints unsampled contexts (so code paths that *require* a context
    still get ids) and records nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_spans=0, sample_rate=0.0)

    def record(self, span: TraceSpan) -> None:
        pass

    def adopt(self, spans: Iterable) -> int:
        return 0


#: Shared no-op tracer for unconditional hook calls.
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# ambient propagation

_ambient = threading.local()


def current_trace() -> tuple[Tracer | None, TraceContext | None]:
    """The calling thread's ambient (tracer, context) pair."""
    return (getattr(_ambient, "tracer", None),
            getattr(_ambient, "context", None))


def current_context() -> TraceContext | None:
    """The calling thread's ambient context (``None`` outside a trace)."""
    return getattr(_ambient, "context", None)


def current_trace_id() -> str:
    """The ambient trace_id, or ``""`` outside a trace.

    The one-liner event logs and exemplars use to stamp themselves.
    """
    context = getattr(_ambient, "context", None)
    return context.trace_id if context is not None else ""


@contextmanager
def use_trace(tracer: Tracer | None,
              context: TraceContext | None) -> Iterator[None]:
    """Install a (tracer, context) pair as this thread's ambient pair."""
    previous = (getattr(_ambient, "tracer", None),
                getattr(_ambient, "context", None))
    _ambient.tracer = tracer
    _ambient.context = context
    try:
        yield
    finally:
        _ambient.tracer, _ambient.context = previous


class _NullSpan:
    """A reusable do-nothing span context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """An open ambient child span (internal; built by :func:`trace_span`)."""

    __slots__ = ("_tracer", "_context", "_name", "_tags",
                 "_wall", "_clock", "_previous")

    def __init__(self, tracer: Tracer, context: TraceContext,
                 name: str, tags: Mapping[str, str] | None) -> None:
        self._tracer = tracer
        self._context = context
        self._name = name
        self._tags = tags

    def __enter__(self) -> TraceContext:
        self._previous = _ambient.context
        _ambient.context = self._context
        self._wall = time.time()
        self._clock = time.perf_counter()
        return self._context

    def __exit__(self, *exc: object) -> bool:
        seconds = time.perf_counter() - self._clock
        _ambient.context = self._previous
        self._tracer.record_span(self._name, self._context,
                                 self._wall, seconds, tags=self._tags)
        return False


def trace_span(name: str, tags: Mapping[str, str] | None = None):
    """Open a child span of the ambient context, as a context manager.

    The workhorse of deep-layer instrumentation: sharding, the live
    corpus and the executors call it unconditionally. Outside a trace —
    or under an unsampled context — it returns a shared no-op object,
    so the cost is two thread-local reads and a branch.
    """
    tracer = getattr(_ambient, "tracer", None)
    context = getattr(_ambient, "context", None)
    if tracer is None or context is None or not context.sampled:
        return _NULL_SPAN
    return _SpanHandle(tracer, context.child(), name, tags)


def emit_span(name: str, seconds: float,
              tags: Mapping[str, str] | None = None,
              wall_end: float | None = None) -> None:
    """Record an already-measured child span under the ambient context.

    For hot paths that already timed the section (the batch executors'
    per-scan timing exists for counter shipping anyway): no context
    manager, no extra clock reads beyond one ``time.time()``. The span
    is a *leaf* — it does not become ambient for anything.
    """
    tracer = getattr(_ambient, "tracer", None)
    context = getattr(_ambient, "context", None)
    if tracer is None or context is None or not context.sampled:
        return
    end = wall_end if wall_end is not None else time.time()
    tracer.record_span(name, context.child(), end - seconds, seconds,
                       tags=tags)


def ship_context() -> dict | None:
    """The ambient context serialized for a worker boundary.

    ``None`` outside a trace or under an unsampled context — tasks then
    skip span collection entirely, keeping the unsampled path free.
    :func:`worker_span` mints the fresh span id on the worker side, so
    worker spans become children of the shipping call site's span. A
    caller that wants an intermediate node (one per ticket, say) mints
    ``context.child()`` itself and records that child as a span too —
    shipping an unrecorded child would orphan the worker spans.
    """
    tracer = getattr(_ambient, "tracer", None)
    context = getattr(_ambient, "context", None)
    if tracer is None or context is None or not context.sampled:
        return None
    return context.to_dict()


def worker_span(name: str, shipped: Mapping | None, started: float,
                seconds: float,
                tags: Mapping[str, str] | None = None) -> tuple:
    """One span dict measured inside a worker, ready to ship back.

    ``shipped`` is the task's :func:`ship_context` payload (``None``
    returns ``()`` so callers can pass it through unconditionally);
    ``started`` is wall-clock (``time.time()``). The span keeps the
    worker's own pid/tid — that is what lane stitching needs.
    """
    if shipped is None:
        return ()
    context = TraceContext.from_dict(shipped)
    current = threading.current_thread()
    return (TraceSpan(
        name=name, trace_id=context.trace_id,
        span_id=new_id(), parent_id=context.span_id,
        started=started, seconds=seconds,
        pid=os.getpid(), tid=current.ident or 0, thread=current.name,
        tags=tuple(sorted(
            (str(key), str(value))
            for key, value in (tags or {}).items()
        )),
    ).to_dict(),)


def adopt_spans(spans: Iterable) -> None:
    """Fold worker-shipped span dicts into the ambient tracer, if any."""
    if not spans:
        return
    tracer = getattr(_ambient, "tracer", None)
    if tracer is not None:
        tracer.adopt(spans)


def bound(tracer: Tracer | None, context: TraceContext | None,
          fn: Callable, *args, **kwargs) -> Callable[[], object]:
    """A zero-arg callable running ``fn`` under (tracer, context).

    The asyncio→thread handoff: the gateway builds the executor
    callable with ``bound(tracer, ctx, service.submit, request)`` so
    the pool thread re-installs the ambient pair before descending.
    """
    def call() -> object:
        with use_trace(tracer, context):
            return fn(*args, **kwargs)

    return call


# ----------------------------------------------------------------------
# tree assembly (tests, the CI smoke, the exporter)

@dataclass(frozen=True)
class SpanTree:
    """One assembled trace: roots, children edges, and every span."""

    trace_id: str
    spans: tuple[TraceSpan, ...]
    roots: tuple[TraceSpan, ...]
    children: Mapping[str, tuple[TraceSpan, ...]] = field(
        default_factory=dict)

    def walk(self) -> Iterator[tuple[int, TraceSpan]]:
        """Depth-first (depth, span) pairs, children by start time."""
        def descend(span: TraceSpan, depth: int
                    ) -> Iterator[tuple[int, TraceSpan]]:
            yield depth, span
            for child in self.children.get(span.span_id, ()):
                yield from descend(child, depth + 1)

        for root in self.roots:
            yield from descend(root, 0)

    def render(self) -> str:
        """An indented text rendering (debugging aid)."""
        lines = [f"trace {self.trace_id} ({len(self.spans)} spans)"]
        for depth, span in self.walk():
            lines.append(
                f"{'  ' * (depth + 1)}{span.name}  "
                f"{span.seconds * 1e3:.3f}ms  pid={span.pid}"
            )
        return "\n".join(lines)


def span_tree(spans: Iterable[TraceSpan],
              trace_id: str | None = None) -> SpanTree:
    """Assemble one trace's spans into a :class:`SpanTree`.

    With ``trace_id`` unset, the spans must all belong to one trace
    (the single-submit invariant the CI smoke asserts); a mix raises
    :class:`repro.exceptions.ReproError`. A span whose parent never
    arrived (dropped, or a worker that died before shipping) is kept
    as an extra root rather than lost.
    """
    from repro.exceptions import ReproError

    chosen = [span for span in spans
              if trace_id is None or span.trace_id == trace_id]
    if not chosen:
        raise ReproError(
            "no spans to assemble"
            + (f" for trace {trace_id}" if trace_id else "")
        )
    identities = {span.trace_id for span in chosen}
    if len(identities) > 1:
        raise ReproError(
            f"spans from {len(identities)} traces "
            f"({sorted(identities)}); pass trace_id= to pick one"
        )
    by_id = {span.span_id: span for span in chosen}
    children: dict[str, list[TraceSpan]] = {}
    roots: list[TraceSpan] = []
    for span in chosen:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    return SpanTree(
        trace_id=chosen[0].trace_id,
        spans=tuple(chosen),
        roots=tuple(sorted(roots, key=lambda span: span.started)),
        children={
            parent: tuple(sorted(kids, key=lambda span: span.started))
            for parent, kids in children.items()
        },
    )
