"""Unified observability: metrics, tracing, and the one-call report API.

The paper's whole method is evidential — keep an optimization only if
it verifies identically *and* measurably helps — so per-stage counters
(filter hits, pruned subtrees, dedup savings) are first-class outputs
of this library, not debug prints. This package is the single
instrumentation layer both engines share:

:mod:`repro.obs.registry`
    :class:`MetricsRegistry` — counters, gauges, nesting monotonic
    timers — plus span-based tracing (``with trace("scan.kernel")``)
    and the :data:`NULL` no-op registry the hot paths default to.
:mod:`repro.obs.report`
    :class:`SearchReport`, the frozen per-call record every engine
    returns through ``SearchEngine.search(..., report=True)`` /
    ``SearchEngine.last_report``, with its documented schema and
    validator.
:mod:`repro.obs.export`
    Structured-dict, JSON-lines and Prometheus-text exporters for
    registries and reports.
:mod:`repro.obs.validate`
    ``python -m repro.obs.validate FILE...`` — the CI gate that checks
    emitted benchmark/CLI reports against the schema.

See ``docs/OBSERVABILITY.md`` for the tour and the migration notes for
the deprecated ``last_stats`` / ``batch_stats`` surfaces.
"""

from repro.obs.export import (
    to_dict,
    to_json,
    to_json_lines,
    to_prometheus,
)
from repro.obs.registry import (
    NULL,
    MetricsRegistry,
    NullRegistry,
    Span,
    counter_delta,
    current_registry,
    trace,
    use_registry,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    SCHEMA_VERSION,
    BatchCounters,
    SearchReport,
    build_report,
    report_from_dict,
    require_valid_report,
    validate_report,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL",
    "Span",
    "trace",
    "use_registry",
    "current_registry",
    "counter_delta",
    "SearchReport",
    "BatchCounters",
    "build_report",
    "report_from_dict",
    "validate_report",
    "require_valid_report",
    "REPORT_SCHEMA",
    "SCHEMA_VERSION",
    "to_dict",
    "to_json",
    "to_json_lines",
    "to_prometheus",
]
