"""Unified observability: metrics, tracing, and the one-call report API.

The paper's whole method is evidential — keep an optimization only if
it verifies identically *and* measurably helps — so per-stage counters
(filter hits, pruned subtrees, dedup savings) are first-class outputs
of this library, not debug prints. This package is the single
instrumentation layer both engines share:

:mod:`repro.obs.registry`
    :class:`MetricsRegistry` — counters, gauges, nesting monotonic
    timers, latency histograms — plus span-based tracing
    (``with trace("scan.kernel")``) and the :data:`NULL` no-op
    registry the hot paths default to.
:mod:`repro.obs.hist`
    :class:`Histogram` — fixed-boundary log-bucket latency/size
    histograms whose state is bucketwise additive, so worker shipping,
    merging, and before/after windowing are exact.
:mod:`repro.obs.report`
    :class:`SearchReport`, the frozen per-call record every engine
    returns through ``SearchEngine.search(..., report=True)`` /
    ``SearchEngine.last_report``, with its documented schema and
    validator. Schema v2 adds per-call histogram quantile summaries.
:mod:`repro.obs.recorder`
    :class:`FlightRecorder` — the bounded slow-query flight recorder
    behind ``Service`` event exemplars and the CLI ``--slowlog``.
:mod:`repro.obs.tracing`
    Request-scoped distributed tracing: :class:`TraceContext` minted
    per gateway submit, propagated across the asyncio/thread/process
    boundaries, collected as :class:`TraceSpan` trees by a
    :class:`Tracer` (``trace_span``/``use_trace`` for ambient
    propagation, ``span_tree`` for assembly).
:mod:`repro.obs.events`
    :class:`EventLog` — the bounded, trace-stamped JSON-lines log of
    operational transitions (admission, shed, ladder rungs, cache
    traffic, flushes, compactions, epoch bumps).
:mod:`repro.obs.sampler`
    :class:`TelemetrySampler` — periodic gauge snapshots into bounded
    ring-buffer time series, behind the ``repro metrics`` CLI.
:mod:`repro.obs.traceexport`
    Span export to Chrome/Perfetto trace-event JSON
    (``--trace-out FILE``), with per-pid/tid lane stitching for
    request traces.
:mod:`repro.obs.export`
    Structured-dict, JSON-lines and Prometheus-text exporters for
    registries and reports.
:mod:`repro.obs.validate`
    ``python -m repro.obs.validate FILE...`` — the CI gate that checks
    emitted benchmark/CLI reports against the schema.
:mod:`repro.obs.regress`
    ``python -m repro.obs.regress BASELINE CURRENT`` — the noise-aware
    regression gate CI runs over committed ``BENCH_*.json`` baselines.

See ``docs/OBSERVABILITY.md`` for the tour and the migration notes for
the deprecated ``last_stats`` / ``batch_stats`` surfaces.
"""

from repro.obs.events import (
    EVENT_KINDS,
    NO_EVENTS,
    EventLog,
    NullEventLog,
    validate_event,
    validate_event_lines,
)
from repro.obs.export import (
    telemetry_to_prometheus,
    to_dict,
    to_json,
    to_json_lines,
    to_prometheus,
)
from repro.obs.hist import (
    Histogram,
    hists_delta,
    summarize,
)
from repro.obs.recorder import (
    FlightRecorder,
    QueryExemplar,
)
from repro.obs.sampler import (
    TelemetrySampler,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    SpanTree,
    TraceContext,
    Tracer,
    TraceSpan,
    current_context,
    current_trace,
    current_trace_id,
    emit_span,
    span_tree,
    trace_span,
    use_trace,
)
from repro.obs.registry import (
    NULL,
    MetricsRegistry,
    NullRegistry,
    Span,
    counter_delta,
    current_registry,
    trace,
    use_registry,
)
from repro.obs.report import (
    HISTOGRAM_SUMMARY_KEYS,
    REPORT_SCHEMA,
    SCHEMA_VERSION,
    BatchCounters,
    SearchReport,
    build_report,
    report_from_dict,
    require_valid_report,
    validate_report,
)
from repro.obs.traceexport import (
    trace_document,
    write_trace,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL",
    "Span",
    "trace",
    "use_registry",
    "current_registry",
    "counter_delta",
    "Histogram",
    "hists_delta",
    "summarize",
    "FlightRecorder",
    "QueryExemplar",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceContext",
    "TraceSpan",
    "SpanTree",
    "span_tree",
    "trace_span",
    "emit_span",
    "use_trace",
    "current_trace",
    "current_context",
    "current_trace_id",
    "EventLog",
    "NullEventLog",
    "NO_EVENTS",
    "EVENT_KINDS",
    "validate_event",
    "validate_event_lines",
    "TelemetrySampler",
    "trace_document",
    "write_trace",
    "SearchReport",
    "BatchCounters",
    "build_report",
    "report_from_dict",
    "validate_report",
    "require_valid_report",
    "REPORT_SCHEMA",
    "SCHEMA_VERSION",
    "HISTOGRAM_SUMMARY_KEYS",
    "to_dict",
    "to_json",
    "to_json_lines",
    "telemetry_to_prometheus",
    "to_prometheus",
]
