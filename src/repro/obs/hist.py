"""Fixed-boundary log-bucket histograms (HDR-style), mergeable.

Aggregate means hide exactly the evidence the paper's method needs:
which *fraction* of queries a change helped, and what happened to the
tail. :class:`Histogram` records observations into logarithmically
spaced buckets whose boundaries are **fixed at import time** — every
histogram in every process uses the same edges — so histograms combine
the same three ways counters do:

* **merge** — bucketwise addition, how process-pool workers ship their
  per-scan observations home (:meth:`Histogram.merge`);
* **delta** — bucketwise subtraction, how the engine carves one call's
  window out of a cumulative series (:meth:`Histogram.delta`);
* **serialize** — a sparse plain-dict form that survives JSON and
  pickling round trips (:meth:`Histogram.to_dict` /
  :meth:`Histogram.from_dict`).

Quantiles are read from bucket upper bounds, so they are exact to one
bucket's width (:data:`GROWTH` per step, ~19% relative). That is the
HDR trade: bounded memory, O(1) recording, mergeability — in exchange
for quantile-bucket resolution. Two histograms fed the same values in
any order, split across any number of workers, report identical
quantiles.

The value range covers :data:`SMALLEST` (100ns, below any Python-level
latency) through ``SMALLEST * GROWTH**MAX_BUCKET`` (~1.8e13, above any
plausible candidate count); values outside land in dedicated underflow
and overflow buckets and saturate at the range edge instead of
distorting their neighbours.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

#: Lower edge of the tracked range. Values at or below it (zero and
#: negatives included) land in the underflow bucket, index 0.
SMALLEST = 1e-7

#: Geometric bucket growth factor: 2**(1/4) ~= 1.189, four buckets per
#: octave — quantiles resolve to within ~19%.
GROWTH = 2.0 ** 0.25

#: Number of regular buckets (indexes 1..MAX_BUCKET). The top regular
#: edge is ``SMALLEST * GROWTH**MAX_BUCKET`` ~= 1.8e13.
MAX_BUCKET = 268

#: Index of the overflow bucket (values beyond the top regular edge).
OVERFLOW_BUCKET = MAX_BUCKET + 1

_LOG_GROWTH = math.log(GROWTH)
_LOG_SMALLEST = math.log(SMALLEST)

#: Quantiles every summary reports (the report schema's histogram keys).
SUMMARY_QUANTILES = (("p50", 0.50), ("p90", 0.90),
                     ("p99", 0.99), ("p999", 0.999))


def bucket_index(value: float) -> int:
    """The fixed bucket an observation falls into.

    >>> bucket_index(0.0)
    0
    >>> bucket_index(float("inf")) == OVERFLOW_BUCKET
    True
    """
    if value <= SMALLEST:
        return 0
    if not math.isfinite(value):
        return OVERFLOW_BUCKET
    index = int((math.log(value) - _LOG_SMALLEST) / _LOG_GROWTH) + 1
    if index > MAX_BUCKET:
        return OVERFLOW_BUCKET
    return index


def bucket_upper_bound(index: int) -> float:
    """The bucket's inclusive upper edge — what quantiles report.

    The overflow bucket saturates at the top regular edge rather than
    reporting infinity, so summaries stay finite and JSON-safe.
    """
    if index <= 0:
        return SMALLEST
    if index >= OVERFLOW_BUCKET:
        index = MAX_BUCKET
    return math.exp(_LOG_SMALLEST + index * _LOG_GROWTH)


class Histogram:
    """Sparse log-bucket histogram: record, merge, delta, quantile.

    State is three fields — a sparse ``{bucket_index: count}`` mapping,
    the total count and the value sum — all bucketwise additive, which
    is what makes merge and delta exact (no resampling, no loss).

    Examples
    --------
    >>> hist = Histogram()
    >>> for value in (0.001, 0.002, 0.004, 0.050):
    ...     hist.record(value)
    >>> hist.count
    4
    >>> hist.quantile(0.5) <= hist.quantile(0.99)
    True
    >>> merged = Histogram()
    >>> merged.merge(hist)
    >>> merged.count
    4
    """

    __slots__ = ("_counts", "_count", "_sum")

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0

    # -- recording -----------------------------------------------------

    def record(self, value: float) -> None:
        """Add one observation."""
        index = bucket_index(value)
        counts = self._counts
        counts[index] = counts.get(index, 0) + 1
        self._count += 1
        self._sum += value

    def record_many(self, values: Iterable[float]) -> None:
        """Add a batch of observations."""
        for value in values:
            self.record(value)

    # -- combining -----------------------------------------------------

    def merge(self, other: "Histogram | Mapping") -> None:
        """Fold another histogram (or its dict form) in, bucketwise.

        Exact: merging worker histograms equals recording every value
        in one histogram, because the bucket edges are globally fixed.
        """
        if isinstance(other, Histogram):
            counts = other._counts
            count = other._count
            total = other._sum
        else:
            counts = {int(index): value
                      for index, value in other["counts"].items()}
            count = other["count"]
            total = other["sum"]
        own = self._counts
        for index, value in counts.items():
            own[index] = own.get(index, 0) + value
        self._count += count
        self._sum += total

    def delta(self, before: "Histogram | None") -> "Histogram":
        """Bucketwise ``self - before`` (``before=None`` means empty).

        The histogram analog of :func:`repro.obs.registry.counter_delta`
        — valid when ``before`` is an earlier snapshot of this series
        (cumulative series only grow).
        """
        result = Histogram()
        if before is None:
            result._counts = dict(self._counts)
            result._count = self._count
            result._sum = self._sum
            return result
        old = before._counts
        counts = result._counts
        for index, value in self._counts.items():
            moved = value - old.get(index, 0)
            if moved > 0:
                counts[index] = moved
        result._count = max(0, self._count - before._count)
        result._sum = self._sum - before._sum
        return result

    def copy(self) -> "Histogram":
        """An independent snapshot of the current state."""
        return self.delta(None)

    # -- reading -------------------------------------------------------

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of every recorded value (exact, not bucket-resolved)."""
        return self._sum

    def mean(self) -> float:
        """Average recorded value (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, fraction: float) -> float:
        """The value at ``fraction`` of the distribution, to one bucket.

        Reported as the containing bucket's upper edge, so quantile
        estimates never understate. An empty histogram reports 0.0.
        """
        if self._count == 0:
            return 0.0
        target = min(self._count,
                     max(1, math.ceil(fraction * self._count)))
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= target:
                return bucket_upper_bound(index)
        return bucket_upper_bound(OVERFLOW_BUCKET)

    def max_value(self) -> float:
        """Upper edge of the highest occupied bucket (0.0 when empty)."""
        if self._count == 0:
            return 0.0
        return bucket_upper_bound(max(self._counts))

    def summary(self) -> dict[str, float]:
        """The fixed quantile summary embedded in reports.

        Keys: ``count``, ``mean``, ``p50``, ``p90``, ``p99``, ``p999``,
        ``max`` — the shape :func:`repro.obs.report.validate_report`
        checks for every ``histograms`` entry — plus ``buckets``, the
        JSON-safe :meth:`cumulative_buckets` pairs that let
        :func:`repro.obs.export.report_to_prometheus` emit true
        cumulative ``_bucket`` series. The validator ignores the extra
        key, so pre-existing artifacts without it stay valid.
        """
        summary: dict[str, float] = {
            "count": self._count,
            "mean": round(self.mean(), 9),
        }
        for key, fraction in SUMMARY_QUANTILES:
            summary[key] = round(self.quantile(fraction), 9)
        summary["max"] = round(self.max_value(), 9)
        summary["buckets"] = [
            [round(edge, 12), count]
            for edge, count in self.cumulative_buckets()
        ]
        return summary

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Occupied buckets as ``(upper_edge, cumulative_count)`` pairs.

        The exact shape a Prometheus ``_bucket{le="..."}`` series needs:
        counts accumulate over ascending finite edges, and the final
        pair's count equals :attr:`count` (the exporter adds the
        ``+Inf`` bucket itself). Empty histograms report no pairs.
        """
        pairs: list[tuple[float, int]] = []
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            pairs.append((bucket_upper_bound(index), seen))
        return pairs

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """Sparse JSON-safe form (keys stringified for JSON objects)."""
        return {
            "counts": {str(index): value
                       for index, value in sorted(self._counts.items())},
            "count": self._count,
            "sum": round(self._sum, 9),
        }

    @classmethod
    def from_dict(cls, mapping: Mapping) -> "Histogram":
        """Rebuild from :meth:`to_dict` output."""
        hist = cls()
        hist.merge(mapping)
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(count={self._count}, "
                f"buckets={len(self._counts)})")


def hists_delta(before: Mapping[str, Histogram],
                after: Mapping[str, Histogram]
                ) -> dict[str, Histogram]:
    """Per-name :meth:`Histogram.delta`, keeping only moved series.

    The mapping-level analog of
    :func:`repro.obs.registry.counter_delta`: snapshot before, snapshot
    after, subtract — the result holds exactly one call's observations.
    """
    delta: dict[str, Histogram] = {}
    for name, hist in after.items():
        moved = hist.delta(before.get(name))
        if moved.count:
            delta[name] = moved
    return delta


def summarize(hists: Mapping[str, "Histogram | Mapping"]
              ) -> dict[str, dict[str, float]]:
    """Per-name quantile summaries (dict forms pass through rebuilt).

    :meth:`Histogram.summary` output carries the ``"buckets"`` entry
    whether the input arrived live, serialized, or already summarized,
    so all three forms produce identical summaries here.
    """
    out: dict[str, dict[str, float]] = {}
    for name, hist in hists.items():
        if not isinstance(hist, Histogram):
            if "count" in hist and "p50" in hist:
                out[name] = dict(hist)  # already a summary
                continue
            hist = Histogram.from_dict(hist)
        out[name] = hist.summary()
    return out
