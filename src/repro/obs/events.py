"""The structured event log: JSON-lines operational events, trace-stamped.

Counters say *how often*, histograms say *how slow*, spans say *where
inside one request* — none of them say **what happened, in order**.
The event log does: every operationally interesting transition in the
serving stack emits one flat JSON object (an *event line*) into a
bounded in-memory ring, optionally teeing to a JSON-lines sink. The
kinds mirror the decisions a slow-request investigation walks through:

========================  ==============================================
kind                      emitted when
========================  ==============================================
``admission``             the gateway admits a request to the full ladder
``shed``                  the shedder degrades or rejects a request
``cache_hit``             the result cache answers a submit
``cache_miss``            the cache had no complete answer
``cache_invalidation``    a corpus mutation dropped cache entries
``ladder_rung``           the service finishes one degradation rung
``flush``                 the live corpus seals its memtable
``compaction_start``      a compaction group is picked
``compaction_swap``       the merged segment replaces its inputs
``epoch``                 the live corpus bumps its mutation epoch
========================  ==============================================

Every event carries ``ts`` (wall-clock seconds), ``kind``, and —
when emitted inside a trace — the ambient ``trace_id``
(:func:`repro.obs.tracing.current_trace_id`), which is what joins the
log back to the span tree: grep the log for a slow request's trace_id
and the decision sequence falls out. Other fields are free-form JSON
scalars per kind (``queue_depth``, ``rung``, ``segments``, ...).

The schema is deliberately open (new kinds must not break old
tooling); :func:`validate_event` pins only the envelope, and
``python -m repro.obs.validate --events FILE`` applies it to a
JSON-lines file in CI.
"""

from __future__ import annotations

import io
import json
import threading
import time
from collections import deque
from typing import Callable, Iterable, Mapping

from repro.obs.tracing import current_trace_id

#: The event kinds the serving stack emits today. The validator treats
#: unknown kinds as valid (the schema is open) — this tuple documents
#: the current vocabulary and anchors the emitting call sites.
EVENT_KINDS = (
    "admission",
    "shed",
    "cache_hit",
    "cache_miss",
    "cache_invalidation",
    "ladder_rung",
    "flush",
    "compaction_start",
    "compaction_swap",
    "epoch",
)

#: Default ring capacity — enough for a soak's interesting tail without
#: ever growing unbounded.
DEFAULT_CAPACITY = 4096

#: JSON scalar types allowed as event field values (events stay flat).
_SCALARS = (str, int, float, bool, type(None))


class EventLog:
    """A bounded ring of event lines, with an optional JSON-lines sink.

    Parameters
    ----------
    capacity:
        Events kept in memory; older lines fall off the ring (the sink,
        when set, still saw them).
    sink:
        A text file-like object each event is written to as one JSON
        line, as it happens (``search --events-out`` wires a file
        here). Write failures are swallowed after the first — the log
        must never fail a request.
    clock:
        Injectable wall clock, for deterministic tests.

    Examples
    --------
    >>> log = EventLog(clock=lambda: 12.0)
    >>> log.emit("shed", action="degrade", queue_depth=40)
    >>> log.events()[0]["kind"]
    'shed'
    >>> log.events()[0]["ts"]
    12.0
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 sink: io.TextIOBase | None = None,
                 clock: Callable[[], float] = time.time) -> None:
        from repro.exceptions import ReproError

        if capacity < 1:
            raise ReproError(
                f"event-log capacity must be positive, got {capacity}"
            )
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._sink = sink
        self._sink_broken = False
        self._clock = clock
        self._emitted = 0
        self._lock = threading.Lock()

    @property
    def emitted(self) -> int:
        """Total events emitted (including ones the ring dropped)."""
        return self._emitted

    def __len__(self) -> int:
        return len(self._ring)

    def emit(self, kind: str, *, trace_id: str | None = None,
             **fields) -> None:
        """Append one event line (and tee it to the sink, if any).

        ``trace_id`` defaults to the ambient one — call sites inside a
        traced request need no extra plumbing; outside a trace the
        field is simply omitted.
        """
        event: dict = {"ts": self._clock(), "kind": kind}
        identity = trace_id if trace_id is not None \
            else current_trace_id()
        if identity:
            event["trace_id"] = identity
        for name, value in fields.items():
            event[name] = value if isinstance(value, _SCALARS) \
                else str(value)
        with self._lock:
            self._ring.append(event)
            self._emitted += 1
            if self._sink is not None and not self._sink_broken:
                try:
                    self._sink.write(
                        json.dumps(event, sort_keys=True) + "\n")
                except (OSError, ValueError):
                    self._sink_broken = True

    # -- snapshots -----------------------------------------------------

    def events(self) -> tuple[dict, ...]:
        """Every retained event, oldest first (copies)."""
        with self._lock:
            return tuple(dict(event) for event in self._ring)

    def tail(self, n: int = 10) -> tuple[dict, ...]:
        """The newest ``n`` retained events, oldest of them first."""
        with self._lock:
            window = list(self._ring)[-max(0, n):]
        return tuple(dict(event) for event in window)

    def for_trace(self, trace_id: str) -> tuple[dict, ...]:
        """The retained events of one trace, oldest first."""
        return tuple(event for event in self.events()
                     if event.get("trace_id") == trace_id)

    def to_jsonl(self) -> str:
        """The retained events as JSON-lines text."""
        return "".join(json.dumps(event, sort_keys=True) + "\n"
                       for event in self.events())

    def write(self, path: str) -> int:
        """Write the retained events to ``path``; returns line count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)


class NullEventLog(EventLog):
    """An event log that discards everything — the off switch."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def emit(self, kind: str, *, trace_id: str | None = None,
             **fields) -> None:
        pass


#: Shared no-op event log for unconditional hook calls.
NO_EVENTS = NullEventLog()


# ----------------------------------------------------------------------
# validation (the CI ``--events`` gate)

def validate_event(event: object, *, where: str = "event") -> list[str]:
    """Problems with one event line (empty list = valid).

    The envelope is pinned — a JSON object with a numeric ``ts`` and a
    non-empty string ``kind``; ``trace_id``, when present, must be a
    non-empty string; every other field must be a JSON scalar (events
    are flat lines, not documents). Unknown kinds are allowed.
    """
    problems: list[str] = []
    if not isinstance(event, dict):
        return [f"{where}: not a JSON object "
                f"(got {type(event).__name__})"]
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        problems.append(f"{where}: 'ts' must be a number, got {ts!r}")
    kind = event.get("kind")
    if not isinstance(kind, str) or not kind:
        problems.append(
            f"{where}: 'kind' must be a non-empty string, got {kind!r}"
        )
    trace_id = event.get("trace_id", "unset")
    if trace_id != "unset" and (
            not isinstance(trace_id, str) or not trace_id):
        problems.append(
            f"{where}: 'trace_id' must be a non-empty string when "
            f"present, got {trace_id!r}"
        )
    for name, value in event.items():
        if name in ("ts", "kind", "trace_id"):
            continue
        if not isinstance(value, _SCALARS):
            problems.append(
                f"{where}: field {name!r} must be a JSON scalar, got "
                f"{type(value).__name__}"
            )
    return problems


def validate_event_lines(lines: Iterable[str], *,
                         where: str = "events") -> tuple[int, list[str]]:
    """Validate JSON-lines text: ``(events_seen, problems)``.

    Blank lines are skipped; a line that fails to parse is a problem,
    not a crash — the validator reports every broken line at once.
    """
    problems: list[str] = []
    seen = 0
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        label = f"{where}:{number}"
        try:
            event = json.loads(text)
        except json.JSONDecodeError as error:
            problems.append(f"{label}: not valid JSON ({error})")
            continue
        seen += 1
        problems.extend(validate_event(event, where=label))
    return seen, problems


def events_from_mapping(payload: Mapping) -> list[dict]:
    """The event list embedded in a report-style document, if any.

    Benchmarks that embed their event tail under an ``"events"`` key
    (a list of event objects) get them validated alongside the reports.
    """
    events = payload.get("events")
    return list(events) if isinstance(events, list) else []
