"""Span export to the Chrome/Perfetto trace-event JSON format.

The registry's :class:`repro.obs.registry.Span` records already carry
everything a trace viewer needs — name, start offset, duration, nesting
depth — this module only reshapes them into the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
that ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_
open directly:

* each span becomes one complete event (``"ph": "X"``) with
  microsecond ``ts``/``dur`` relative to the registry epoch;
* the span's slash-joined ``path`` and ``depth`` ride along in
  ``args``, so the flattened records keep their call structure even in
  tools that ignore nesting;
* a process-name metadata event labels the track.

Wired into the CLI as ``repro-search search ... --trace-out FILE``
(which implies ``--stats``-level observation so spans exist to
export). The emitted document is plain JSON — asserted valid in tests,
no browser required.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.registry import MetricsRegistry, Span

#: Trace-event category stamped on every exported span.
CATEGORY = "repro"


def span_to_event(span: Span, *, pid: int = 1, tid: int = 1) -> dict:
    """One span as a complete ("X") trace event (microsecond units)."""
    return {
        "name": span.name,
        "cat": CATEGORY,
        "ph": "X",
        "ts": round(span.started * 1e6, 3),
        "dur": round(span.seconds * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "args": {"path": span.path, "depth": span.depth},
    }


def trace_events(spans: Iterable[Span], *, pid: int = 1,
                 process_name: str = "repro") -> list[dict]:
    """All spans as trace events, preceded by process metadata."""
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 1,
        "args": {"name": process_name},
    }]
    events.extend(span_to_event(span, pid=pid) for span in spans)
    return events


def trace_document(source: MetricsRegistry | Iterable[Span], *,
                   process_name: str = "repro") -> dict[str, Any]:
    """The full JSON-object trace document viewers accept.

    ``source`` is a registry (its ``spans`` list is read) or any
    iterable of spans. The object form (``{"traceEvents": [...]}``)
    is used rather than the bare array so metadata has a legal home.
    """
    spans = source.spans if isinstance(source, MetricsRegistry) \
        else list(source)
    return {
        "traceEvents": trace_events(spans, process_name=process_name),
        "displayTimeUnit": "ms",
    }


def write_trace(path: str | Path,
                source: MetricsRegistry | Iterable[Span], *,
                process_name: str = "repro") -> Path:
    """Write the trace document to ``path``; returns the path.

    The file loads directly in ``chrome://tracing`` ("Load") and
    https://ui.perfetto.dev ("Open trace file").
    """
    path = Path(path)
    document = trace_document(source, process_name=process_name)
    path.write_text(json.dumps(document, indent=1) + "\n",
                    encoding="utf-8")
    return path
