"""Span export to the Chrome/Perfetto trace-event JSON format.

The registry's :class:`repro.obs.registry.Span` records already carry
everything a trace viewer needs — name, start offset, duration, nesting
depth — this module only reshapes them into the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
that ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_
open directly:

* each span becomes one complete event (``"ph": "X"``) with
  microsecond ``ts``/``dur`` relative to the registry epoch;
* the span's slash-joined ``path`` and ``depth`` ride along in
  ``args``, so the flattened records keep their call structure even in
  tools that ignore nesting;
* a process-name metadata event labels the track.

Request traces (:class:`repro.obs.tracing.TraceSpan`, collected by a
:class:`repro.obs.tracing.Tracer`) export through the same document:
each span carries its **own** ``pid``/``tid`` — recorded where the work
ran, shipped back across the process-pool boundary — so Perfetto lays a
gateway submit out across its real lanes: the asyncio thread, the pool
worker threads, the pool *processes*, the background compaction thread.
Per-(pid, tid) metadata events name every lane, and the trace/span/
parent ids ride in ``args`` so the tree survives flattening.

Wired into the CLI as ``repro-search search ... --trace-out FILE``
(which implies ``--stats``-level observation so spans exist to
export). The emitted document is plain JSON — asserted valid in tests,
no browser required.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.registry import MetricsRegistry, Span
from repro.obs.tracing import Tracer, TraceSpan

#: Trace-event category stamped on every exported span.
CATEGORY = "repro"


def span_to_event(span: Span, *, pid: int = 1, tid: int = 1) -> dict:
    """One span as a complete ("X") trace event (microsecond units)."""
    return {
        "name": span.name,
        "cat": CATEGORY,
        "ph": "X",
        "ts": round(span.started * 1e6, 3),
        "dur": round(span.seconds * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "args": {"path": span.path, "depth": span.depth},
    }


def trace_events(spans: Iterable[Span], *, pid: int = 1,
                 process_name: str = "repro") -> list[dict]:
    """All spans as trace events, preceded by process metadata."""
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 1,
        "args": {"name": process_name},
    }]
    events.extend(span_to_event(span, pid=pid) for span in spans)
    return events


def trace_span_to_event(span: TraceSpan, *, epoch: float = 0.0) -> dict:
    """One request-trace span as a complete event, on its own lane.

    ``epoch`` is the wall-clock origin subtracted from every ``ts`` so
    the document starts near zero (viewers dislike 50-year offsets);
    callers pass the earliest span's start.
    """
    args: dict[str, Any] = {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id or "",
    }
    for key, value in span.tags:
        args[key] = value
    return {
        "name": span.name,
        "cat": CATEGORY,
        "ph": "X",
        "ts": round((span.started - epoch) * 1e6, 3),
        "dur": round(span.seconds * 1e6, 3),
        "pid": span.pid,
        "tid": span.tid,
        "args": args,
    }


def tracer_events(spans: Iterable[TraceSpan], *,
                  process_name: str = "repro") -> list[dict]:
    """Request-trace spans as events with per-lane metadata stitching.

    Every distinct ``pid`` gets a ``process_name`` metadata event
    (the main process keeps ``process_name``; pool workers are labeled
    ``{process_name}/worker``) and every distinct ``(pid, tid)`` gets a
    ``thread_name`` event carrying the recording thread's name — so
    Perfetto shows "gateway", "shard-0-worker-1", "live-corpus-
    compaction" as named lanes instead of bare ids.
    """
    spans = list(spans)
    if not spans:
        return []
    epoch = min(span.started for span in spans)
    own_pid = min(span.pid for span in spans)
    events: list[dict] = []
    seen_pids: set[int] = set()
    seen_lanes: set[tuple[int, int]] = set()
    for span in spans:
        if span.pid not in seen_pids:
            seen_pids.add(span.pid)
            label = process_name if span.pid == own_pid \
                else f"{process_name}/worker"
            events.append({
                "name": "process_name", "ph": "M",
                "pid": span.pid, "tid": 0,
                "args": {"name": label},
            })
        lane = (span.pid, span.tid)
        if lane not in seen_lanes:
            seen_lanes.add(lane)
            events.append({
                "name": "thread_name", "ph": "M",
                "pid": span.pid, "tid": span.tid,
                "args": {"name": span.thread or f"tid-{span.tid}"},
            })
    events.extend(trace_span_to_event(span, epoch=epoch)
                  for span in sorted(spans,
                                     key=lambda span: span.started))
    return events


def trace_document(
        source: MetricsRegistry | Tracer | Iterable[Span | TraceSpan],
        *, process_name: str = "repro") -> dict[str, Any]:
    """The full JSON-object trace document viewers accept.

    ``source`` is a registry (its ``spans`` list is read), a
    :class:`Tracer` (its collected request spans are read, with real
    pid/tid lane stitching), or any iterable of either span kind. The
    object form (``{"traceEvents": [...]}``) is used rather than the
    bare array so metadata has a legal home.
    """
    if isinstance(source, Tracer):
        spans: list = list(source.spans())
    elif isinstance(source, MetricsRegistry):
        spans = source.spans
    else:
        spans = list(source)
    if spans and isinstance(spans[0], TraceSpan):
        events = tracer_events(spans, process_name=process_name)
    else:
        events = trace_events(spans, process_name=process_name)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }


def write_trace(path: str | Path,
                source: MetricsRegistry | Tracer
                | Iterable[Span | TraceSpan], *,
                process_name: str = "repro") -> Path:
    """Write the trace document to ``path``; returns the path.

    The file loads directly in ``chrome://tracing`` ("Load") and
    https://ui.perfetto.dev ("Open trace file").
    """
    path = Path(path)
    document = trace_document(source, process_name=process_name)
    path.write_text(json.dumps(document, indent=1) + "\n",
                    encoding="utf-8")
    return path
