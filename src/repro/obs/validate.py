"""Schema validation for report artifacts: ``python -m repro.obs.validate``.

CI runs the benchmark smoke modes, which embed live
:class:`repro.obs.report.SearchReport` dicts in their ``BENCH_*.json``
records, then validates every embedded report here against
:data:`repro.obs.report.REPORT_SCHEMA`. The CLI's ``--stats-output``
files validate the same way. Exit status is 0 only when every report in
every file conforms and at least one report was found per file —
a benchmark that silently stopped embedding reports is a failure, not
a pass.

With ``--events``, files are validated as JSON-lines **event logs**
instead (the ``repro search --events-out`` artifact): every line must
satisfy :func:`repro.obs.events.validate_event`, and a file with zero
events fails for the same silent-regression reason.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.obs.events import validate_event_lines
from repro.obs.report import validate_report


def iter_reports(document: Any, path: str = "$"
                 ) -> Iterator[tuple[str, dict]]:
    """Yield ``(json_path, report_dict)`` for every embedded report.

    A dict counts as a report candidate when it carries both
    ``schema_version`` and ``backend`` keys; nesting inside lists and
    dicts is searched recursively.
    """
    if isinstance(document, dict):
        if "schema_version" in document and "backend" in document:
            yield path, document
            return
        for key, value in document.items():
            yield from iter_reports(value, f"{path}.{key}")
    elif isinstance(document, list):
        for index, value in enumerate(document):
            yield from iter_reports(value, f"{path}[{index}]")


def validate_file(path: Path) -> list[str]:
    """All schema problems in one JSON (or JSON-lines) file."""
    problems: list[str] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        return [f"{path}: unreadable ({error})"]
    try:
        documents: list[Any] = [json.loads(text)]
    except json.JSONDecodeError:
        documents = []
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                documents.append(json.loads(line))
            except json.JSONDecodeError as error:
                problems.append(f"{path}:{number}: not JSON ({error})")
    found = 0
    for document in documents:
        for where, report in iter_reports(document):
            found += 1
            for problem in validate_report(report):
                problems.append(f"{path} at {where}: {problem}")
    if not found:
        problems.append(f"{path}: no embedded SearchReport found")
    return problems


def validate_events_file(path: Path) -> list[str]:
    """All problems in one JSON-lines event-log file."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        return [f"{path}: unreadable ({error})"]
    seen, problems = validate_event_lines(
        text.splitlines(), where=str(path))
    if not seen and not problems:
        problems.append(f"{path}: no event lines found")
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    """Validate every file given; print findings; return an exit code."""
    arguments = list(argv if argv is not None else sys.argv[1:])
    events_mode = "--events" in arguments
    if events_mode:
        arguments = [arg for arg in arguments if arg != "--events"]
    paths = [Path(arg) for arg in arguments]
    if not paths:
        print("usage: python -m repro.obs.validate [--events] "
              "FILE [FILE...]",
              file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        problems = validate_events_file(path) if events_mode \
            else validate_file(path)
        if problems:
            failures += 1
            for problem in problems:
                print(f"INVALID {problem}", file=sys.stderr)
        else:
            print(f"ok {path}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
