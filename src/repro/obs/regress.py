"""The bench-regression gate: ``python -m repro.obs.regress``.

Turns the committed ``BENCH_*.json`` records from a log into a gate:

.. code-block:: console

    python -m repro.obs.regress BASELINE.json CURRENT.json

diffs two schema-validated bench artifacts and exits non-zero when the
current run regressed. Comparison is **noise-aware** on purpose —
wall-clock numbers from two runs are never identical, and a gate that
cries wolf gets deleted:

* reports are paired by ``(backend, engine, mode, k)`` in order of
  appearance, so the same logical measurement is compared even when
  the files carry many reports;
* latency is compared **per query** (and, when both sides carry a
  ``*_seconds`` histogram, at p50), so a smoke-mode current run
  against a full-mode baseline only fails when it is genuinely
  *slower per unit of work*;
* the median must exceed the baseline by ``--median-pct`` percent
  (default 25) *and* by ``--noise-floor`` absolute seconds (default
  0.0005) to count — sub-millisecond jitter cannot fail a build;
* p99 has its own looser guardrail (``--p99-pct``, default 75): tails
  are noisier, but an order-of-magnitude tail blowup must still fail;
* result counts are compared exactly when the paired reports answered
  the same workload shape (equal queries and k) — a *correctness*
  drift is never excused by thresholds.

Self-diffing any file exits 0 by construction. Files whose embedded
reports break :data:`repro.obs.report.REPORT_SCHEMA` exit 2 (the gate
refuses to compare garbage), as do missing files and empty report
sets. CI runs this against the committed baselines with generous
smoke-mode thresholds; see ``.github/workflows/ci.yml``.

Records written by :mod:`benchmarks.common` (``benchmark`` +
``measurements``) are compared too: measurement labels shared by both
files gate on the same median threshold.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.obs.report import validate_report
from repro.obs.validate import iter_reports

#: Default allowed median (p50 / per-query seconds) growth, percent.
DEFAULT_MEDIAN_PCT = 25.0

#: Default allowed p99 growth, percent (tails are noisier).
DEFAULT_P99_PCT = 75.0

#: Absolute seconds a comparison must move to count as signal.
DEFAULT_NOISE_FLOOR = 0.0005

#: Exit codes: clean / regression / usage-or-validation error.
EXIT_OK, EXIT_REGRESSION, EXIT_ERROR = 0, 1, 2


def _load(path: Path) -> Any:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise SystemExit(
            f"regress: cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise SystemExit(
            f"regress: {path} is not JSON: {error}") from error


def iter_measurements(document: Any, path: str = "$"
                      ) -> Iterator[tuple[str, dict]]:
    """Yield every ``benchmarks.common`` measurement record.

    A dict counts when it carries both ``benchmark`` and
    ``measurements`` keys (the shared writer's shape).
    """
    if isinstance(document, dict):
        if "benchmark" in document and "measurements" in document \
                and isinstance(document["measurements"], dict):
            yield path, document
        for key, value in document.items():
            yield from iter_measurements(value, f"{path}.{key}")
    elif isinstance(document, list):
        for index, value in enumerate(document):
            yield from iter_measurements(value, f"{path}[{index}]")


def _report_key(report: dict) -> tuple:
    return (report.get("backend"), report.get("engine"),
            report.get("mode"), report.get("k"))


def _collect_reports(document: Any, label: str
                     ) -> tuple[dict[tuple, list[dict]], list[str]]:
    """Validated reports grouped by pairing key, plus any problems."""
    grouped: dict[tuple, list[dict]] = {}
    problems: list[str] = []
    for where, report in iter_reports(document):
        for problem in validate_report(report):
            problems.append(f"{label} at {where}: {problem}")
        grouped.setdefault(_report_key(report), []).append(report)
    return grouped, problems


def _latency_hist(report: dict) -> tuple[str, dict] | None:
    """The report's query-latency histogram summary, if any."""
    for name in sorted(report.get("histograms", {})):
        if name.endswith("_seconds"):
            cell = report["histograms"][name]
            if cell.get("count"):
                return name, cell
    return None


class _Gate:
    """Accumulates comparison lines and the overall verdict."""

    def __init__(self, *, median_pct: float, p99_pct: float,
                 noise_floor: float) -> None:
        self.median_pct = median_pct
        self.p99_pct = p99_pct
        self.noise_floor = noise_floor
        self.lines: list[str] = []
        self.regressions = 0
        self.compared = 0

    def check(self, label: str, metric: str, base: float,
              current: float, pct: float) -> None:
        """One noise-aware threshold comparison."""
        self.compared += 1
        allowed = base * (1.0 + pct / 100.0)
        grew = current - base
        if current > allowed and grew > self.noise_floor:
            self.regressions += 1
            self.lines.append(
                f"REGRESSION {label} {metric}: {base:.6f}s -> "
                f"{current:.6f}s (+{grew / base * 100.0:.1f}%, "
                f"allowed +{pct:g}%)"
            )
        else:
            self.lines.append(
                f"ok {label} {metric}: {base:.6f}s -> {current:.6f}s"
            )

    def check_exact(self, label: str, metric: str, base: float,
                    current: float) -> None:
        """A drift check with no tolerance (correctness, not noise)."""
        self.compared += 1
        if current != base:
            self.regressions += 1
            self.lines.append(
                f"REGRESSION {label} {metric}: {base:g} -> {current:g} "
                "(result drift; identical workloads must answer "
                "identically)"
            )

    def warn(self, message: str) -> None:
        self.lines.append(f"warn {message}")

    def compare_reports(self, label: str, base: dict,
                        current: dict) -> None:
        """One paired report comparison: latency, tail, results."""
        base_hist = _latency_hist(base)
        current_hist = _latency_hist(current)
        if base_hist is not None and current_hist is not None \
                and base_hist[0] == current_hist[0]:
            name, base_cell = base_hist
            current_cell = current_hist[1]
            self.check(label, f"{name}.p50", base_cell["p50"],
                       current_cell["p50"], self.median_pct)
            self.check(label, f"{name}.p99", base_cell["p99"],
                       current_cell["p99"], self.p99_pct)
        else:
            base_queries = max(1, base.get("queries", 1))
            current_queries = max(1, current.get("queries", 1))
            self.check(label, "seconds/query",
                       base["seconds"] / base_queries,
                       current["seconds"] / current_queries,
                       self.median_pct)
        if base.get("queries") == current.get("queries") \
                and base.get("k") == current.get("k"):
            self.check_exact(label, "matches", base.get("matches", 0),
                             current.get("matches", 0))


def compare_documents(baseline: Any, current: Any, *,
                      median_pct: float = DEFAULT_MEDIAN_PCT,
                      p99_pct: float = DEFAULT_P99_PCT,
                      noise_floor: float = DEFAULT_NOISE_FLOOR
                      ) -> tuple[int, list[str]]:
    """Diff two loaded bench documents; returns (exit_code, lines)."""
    gate = _Gate(median_pct=median_pct, p99_pct=p99_pct,
                 noise_floor=noise_floor)
    base_reports, base_problems = _collect_reports(baseline, "baseline")
    curr_reports, curr_problems = _collect_reports(current, "current")
    problems = base_problems + curr_problems
    if problems:
        return EXIT_ERROR, [f"INVALID {p}" for p in problems]

    for key, base_list in base_reports.items():
        curr_list = curr_reports.get(key)
        backend, engine, mode, k = key
        label = f"[{backend}/{engine}/{mode}/k={k}]"
        if not curr_list:
            gate.warn(f"{label} present in baseline only")
            continue
        if len(base_list) != len(curr_list):
            gate.warn(
                f"{label} report count differs "
                f"({len(base_list)} baseline vs {len(curr_list)} "
                "current); comparing the overlapping prefix"
            )
        for index, (base, curr) in enumerate(zip(base_list, curr_list)):
            suffix = f"#{index}" if len(base_list) > 1 else ""
            gate.compare_reports(label + suffix, base, curr)
    for key in curr_reports:
        if key not in base_reports:
            backend, engine, mode, k = key
            gate.warn(f"[{backend}/{engine}/{mode}/k={k}] new in "
                      "current (no baseline)")

    base_measurements = {
        (record["benchmark"], label): seconds
        for _, record in iter_measurements(baseline)
        for label, seconds in record["measurements"].items()
    }
    curr_measurements = {
        (record["benchmark"], label): seconds
        for _, record in iter_measurements(current)
        for label, seconds in record["measurements"].items()
    }
    for key, base_seconds in base_measurements.items():
        current_seconds = curr_measurements.get(key)
        if current_seconds is None:
            gate.warn(f"measurement {key[0]}:{key[1]!r} baseline only")
            continue
        gate.check(f"[{key[0]}] {key[1]!r}", "seconds",
                   base_seconds, current_seconds, median_pct)

    if not gate.compared:
        return EXIT_ERROR, gate.lines + [
            "INVALID nothing comparable: no paired reports or "
            "measurements between the two files"
        ]
    gate.lines.append(
        f"{gate.compared} comparisons, {gate.regressions} regressions"
    )
    return (EXIT_REGRESSION if gate.regressions else EXIT_OK), gate.lines


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="noise-aware regression gate over two bench "
                    "report files",
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--median-pct", type=float, default=DEFAULT_MEDIAN_PCT,
        help="allowed median / per-query growth in percent "
             f"(default {DEFAULT_MEDIAN_PCT:g})",
    )
    parser.add_argument(
        "--p99-pct", type=float, default=DEFAULT_P99_PCT,
        help="allowed p99 growth in percent "
             f"(default {DEFAULT_P99_PCT:g})",
    )
    parser.add_argument(
        "--noise-floor", type=float, default=DEFAULT_NOISE_FLOOR,
        metavar="SECONDS",
        help="absolute growth below this never counts "
             f"(default {DEFAULT_NOISE_FLOOR:g}s)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = _load(Path(args.baseline))
        current = _load(Path(args.current))
    except SystemExit as error:
        print(error, file=sys.stderr)
        return EXIT_ERROR
    code, lines = compare_documents(
        baseline, current,
        median_pct=args.median_pct,
        p99_pct=args.p99_pct,
        noise_floor=args.noise_floor,
    )
    stream = sys.stderr if code else sys.stdout
    for line in lines:
        print(line, file=stream)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
