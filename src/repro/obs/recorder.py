"""The slow-query flight recorder: bounded, always-on-capable.

Quantiles say *how slow* the tail is; the flight recorder says *which
queries* are in it. :class:`FlightRecorder` keeps two bounded views of
a stream of :class:`QueryExemplar` records:

* a **ring buffer** (``capacity`` entries, oldest evicted first) of
  every exemplar that cleared the ``threshold`` — plus every *event*
  exemplar (degrades, retries, overloads) the service force-records
  regardless of latency;
* a **top-N heap** of the slowest queries ever seen, so the worst
  offenders survive even after the ring has wrapped.

Recording is designed for hot paths: searchers hold an optional
recorder (a ``None`` check when absent), ask :meth:`interested` with
just the measured seconds — one float comparison — and only build the
exemplar when the recorder wants it. Both structures are bounded, so a
recorder left attached in production cannot grow without limit.

Wired through every layer: ``SearchEngine(recorder=...)`` forwards to
whichever backend serves each call, ``Service(recorder=...)`` records
an exemplar for every degradation-ladder event, and the CLI's
``--slowlog N`` prints the top-N slowest queries with their per-stage
timings after the run.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.exceptions import ReproError

#: Default ring-buffer capacity (recent exemplars kept).
DEFAULT_CAPACITY = 128

#: Default top-N size (slowest-ever exemplars kept).
DEFAULT_TOP_N = 16

#: Default latency threshold, in seconds. 0.0 records everything —
#: with a bounded ring that is a legal always-on configuration.
DEFAULT_THRESHOLD = 0.0


@dataclass(frozen=True)
class QueryExemplar:
    """One recorded slow query (or service event), self-describing.

    Attributes
    ----------
    query:
        The query string.
    k:
        The edit-distance threshold.
    backend:
        The serving engine's name (``sequential[bitparallel]``,
        ``compiled-scan``, ``flat-index``, ``service[ladder]``...).
    seconds:
        Measured wall-clock for this query.
    matches:
        Matches returned (-1 when the query did not complete).
    kind:
        ``"slow"`` for threshold/top-N captures; service events use
        their ladder label (``"degraded"``, ``"retry"``,
        ``"overload"``, ``"deadline"``, ``"partial"``).
    stages:
        Per-stage timings, ``{stage_name: seconds}`` — the span-level
        decomposition available at the recording site.
    counters:
        The query's own work-counter delta (``scan.*`` / ``trie.*``).
    note:
        Free-form context (the ladder's plan name, the retry rung...).
    trace_id:
        The request trace this query belonged to (empty outside a
        trace). The join key into the event log and the exported span
        tree: a slowlog line with a trace_id leads straight to the
        request's full timeline.
    """

    query: str
    k: int
    backend: str
    seconds: float
    matches: int = -1
    kind: str = "slow"
    stages: Mapping[str, float] = field(default_factory=dict)
    counters: Mapping[str, float] = field(default_factory=dict)
    note: str = ""
    trace_id: str = ""

    def render(self) -> str:
        """One human-readable block (the CLI slowlog format)."""
        header = (f"{self.seconds * 1000:.3f}ms  {self.query!r} "
                  f"k={self.k} backend={self.backend} kind={self.kind}")
        if self.matches >= 0:
            header += f" matches={self.matches}"
        if self.trace_id:
            header += f" trace={self.trace_id}"
        if self.note:
            header += f" ({self.note})"
        lines = [header]
        for name in sorted(self.stages):
            lines.append(
                f"    stage {name}: {self.stages[name] * 1000:.3f}ms"
            )
        for name in sorted(self.counters):
            lines.append(f"    {name} = {self.counters[name]:g}")
        return "\n".join(lines)


class FlightRecorder:
    """Bounded ring + top-N of :class:`QueryExemplar` records.

    Parameters
    ----------
    capacity:
        Ring-buffer size (most recent exemplars above threshold).
    top_n:
        How many slowest-ever exemplars to retain alongside the ring.
    threshold:
        Minimum seconds for a query to enter the ring. Queries below
        it can still enter the top-N while it has free slots or their
        latency beats the current minimum.

    Examples
    --------
    >>> recorder = FlightRecorder(capacity=4, top_n=2, threshold=0.01)
    >>> recorder.record(QueryExemplar("Berlin", 2, "sequential", 0.5))
    True
    >>> recorder.record(QueryExemplar("Ulm", 2, "sequential", 0.002))
    True
    >>> [e.query for e in recorder.slowest(5)]
    ['Berlin', 'Ulm']
    >>> len(recorder.records())  # the ring holds only the slow one
    1
    """

    def __init__(self, *, capacity: int = DEFAULT_CAPACITY,
                 top_n: int = DEFAULT_TOP_N,
                 threshold: float = DEFAULT_THRESHOLD) -> None:
        if capacity < 1:
            raise ReproError(
                f"capacity must be positive, got {capacity}"
            )
        if top_n < 0:
            raise ReproError(f"top_n must be >= 0, got {top_n}")
        if threshold < 0:
            raise ReproError(
                f"threshold must be >= 0 seconds, got {threshold}"
            )
        self._ring: deque[QueryExemplar] = deque(maxlen=capacity)
        self._top_n = top_n
        self._threshold = threshold
        # Min-heap of (seconds, tiebreak, exemplar): the root is the
        # fastest of the retained slowest, evicted first.
        self._heap: list[tuple[float, int, QueryExemplar]] = []
        self._tiebreak = itertools.count()
        self._lock = threading.Lock()
        self._recorded = 0
        self._seen = 0

    @property
    def threshold(self) -> float:
        """The ring's admission threshold, in seconds."""
        return self._threshold

    @property
    def seen(self) -> int:
        """How many exemplars were offered (recorded or not)."""
        return self._seen

    @property
    def recorded(self) -> int:
        """How many exemplars entered the ring or the top-N."""
        return self._recorded

    def interested(self, seconds: float) -> bool:
        """Cheap pre-check: would an exemplar this slow be kept?

        Hot paths call this with just the measured latency before
        building the (comparatively expensive) exemplar; a ``False``
        costs two comparisons.
        """
        if seconds >= self._threshold:
            return True
        if self._top_n and (len(self._heap) < self._top_n
                            or seconds > self._heap[0][0]):
            return True
        return False

    def record(self, exemplar: QueryExemplar, *,
               force: bool = False) -> bool:
        """Offer an exemplar; returns whether it was kept anywhere.

        ``force=True`` (service events) bypasses the threshold: event
        exemplars always enter the ring — it is bounded, so forcing is
        safe — and still compete for the top-N on latency.
        """
        with self._lock:
            self._seen += 1
            kept = False
            if force or exemplar.seconds >= self._threshold:
                self._ring.append(exemplar)
                kept = True
            if self._top_n:
                entry = (exemplar.seconds, next(self._tiebreak), exemplar)
                if len(self._heap) < self._top_n:
                    heapq.heappush(self._heap, entry)
                    kept = True
                elif exemplar.seconds > self._heap[0][0]:
                    heapq.heapreplace(self._heap, entry)
                    kept = True
            if kept:
                self._recorded += 1
            return kept

    def records(self) -> tuple[QueryExemplar, ...]:
        """The ring's contents, oldest first."""
        with self._lock:
            return tuple(self._ring)

    def slowest(self, n: int | None = None) -> tuple[QueryExemplar, ...]:
        """The slowest retained exemplars, slowest first.

        Draws from both structures (top-N heap and ring), deduplicated
        by identity, so it answers "what were the worst queries" even
        when the ring has wrapped past them.
        """
        with self._lock:
            pool: dict[int, QueryExemplar] = {}
            for _, _, exemplar in self._heap:
                pool[id(exemplar)] = exemplar
            for exemplar in self._ring:
                pool[id(exemplar)] = exemplar
        ranked = sorted(pool.values(), key=lambda e: e.seconds,
                        reverse=True)
        return tuple(ranked if n is None else ranked[:n])

    def clear(self) -> None:
        """Drop every retained exemplar (counters keep counting)."""
        with self._lock:
            self._ring.clear()
            self._heap.clear()

    def __iter__(self) -> Iterator[QueryExemplar]:
        return iter(self.records())

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def render(self, n: int = 10) -> str:
        """The top-``n`` slowest queries as the CLI slowlog text."""
        slowest = self.slowest(n)
        if not slowest:
            return "slowlog: no queries recorded"
        lines = [f"slowlog: top {len(slowest)} of {self.seen} queries "
                 f"(threshold {self._threshold * 1000:g}ms)"]
        for rank, exemplar in enumerate(slowest, start=1):
            body = exemplar.render().replace("\n", "\n   ")
            lines.append(f"{rank:>3}. {body}")
        return "\n".join(lines)
