"""The metrics registry: counters, gauges, timers and span tracing.

One instrumentation substrate for both engines. A
:class:`MetricsRegistry` accumulates

* **counters** — monotonically increasing integers under dotted names
  (``scan.candidates``, ``trie.nodes_visited``);
* **gauges** — last-write-wins numeric observations (``corpus.buckets``);
* **timers** — total seconds and call counts per name, fed either by
  :meth:`MetricsRegistry.observe` or by the :meth:`MetricsRegistry.timer`
  context manager;
* **histograms** — fixed-boundary log-bucket distributions
  (:class:`repro.obs.hist.Histogram`), fed by
  :meth:`MetricsRegistry.hist`, mergeable across processes like
  counters;
* **spans** — lightweight trace records (:class:`Span`) produced by
  :meth:`MetricsRegistry.trace`, which nest: a span entered while
  another is open records its depth and dotted path, so ``with
  trace("batch"): with trace("scan.kernel"): ...`` reconstructs the
  call structure without a profiler.

Hot paths are instrumented behind **no-op hooks**: every engine accepts
an optional registry and, when none is attached, pays only a ``None``
check per call (never per candidate). :data:`NULL` is a shared
:class:`NullRegistry` whose every method discards its input, for code
that wants to call hooks unconditionally.

The module-level :func:`trace` uses an ambient per-thread registry set
with :func:`use_registry`, so deeply nested helpers can emit spans
without threading a registry argument through every signature::

    registry = MetricsRegistry()
    with use_registry(registry):
        with trace("scan.kernel"):
            ...
    registry.timers()["scan.kernel"]["calls"]  # 1

Registries are cheap (plain dicts) and mergeable
(:meth:`MetricsRegistry.merge_counts` / :func:`counter_delta`), which
is how per-chunk counters from process-pool workers aggregate back into
one workload-level view.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.obs.hist import Histogram

#: Spans kept per registry before new ones are dropped (and counted
#: under ``obs.spans_dropped``) — tracing must never grow unbounded.
DEFAULT_MAX_SPANS = 2048


@dataclass(frozen=True)
class Span:
    """One completed traced section.

    Attributes
    ----------
    name:
        The name passed to :func:`trace`.
    path:
        Slash-joined names of every enclosing open span plus this one
        (``"batch/scan.kernel"``), so nesting survives flattening.
    depth:
        How many spans were open when this one started (0 = top level).
    started:
        Seconds since the registry was created when the span opened.
    seconds:
        The span's elapsed wall-clock time.
    """

    name: str
    path: str
    depth: int
    started: float
    seconds: float


class MetricsRegistry:
    """Accumulates counters, gauges, timers and spans.

    Not a singleton: engines own private registries, benchmarks build
    one per measured stage, and tests build throwaways. Counter updates
    are GIL-atomic enough for the flush-once-per-search discipline the
    engines follow; cross-process aggregation goes through explicit
    counter dicts returned by worker tasks, never shared state.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.inc("scan.candidates", 40)
    >>> with registry.trace("scan.kernel"):
    ...     registry.inc("scan.early_aborts")
    >>> registry.counters()["scan.candidates"]
    40
    >>> registry.timers()["scan.kernel"]["calls"]
    1
    >>> registry.spans[0].name
    'scan.kernel'
    """

    #: ``False`` only on :class:`NullRegistry`; hot paths may branch on
    #: it instead of ``is not None`` when a registry is always present.
    enabled: bool = True

    def __init__(self, *, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}  # name -> [seconds, calls]
        self._hists: dict[str, Histogram] = {}
        self._max_spans = max_spans
        self._span_stack: list[str] = []
        self.spans: list[Span] = []
        self._epoch = time.perf_counter()

    # -- counters ------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def merge_counts(self, counts: Mapping[str, int]) -> None:
        """Fold a counter mapping in (worker chunks report this way)."""
        counters = self._counters
        for name, value in counts.items():
            counters[name] = counters.get(name, 0) + value

    def counters(self) -> dict[str, int]:
        """A copy of the current counter values."""
        return dict(self._counters)

    # -- gauges --------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Record a last-write-wins observation."""
        self._gauges[name] = value

    def gauges(self) -> dict[str, float]:
        """A copy of the current gauge values."""
        return dict(self._gauges)

    # -- timers and spans ----------------------------------------------

    def observe(self, name: str, seconds: float, count: int = 1) -> None:
        """Add an elapsed-seconds observation to timer ``name``."""
        cell = self._timers.get(name)
        if cell is None:
            self._timers[name] = [seconds, count]
        else:
            cell[0] += seconds
            cell[1] += count

    def merge_timers(self, timers: Mapping) -> None:
        """Fold a timer mapping in (worker chunks ship timers this way).

        Accepts either the ``timers()`` shape (``{name: {"seconds":
        ..., "calls": ...}}``) or the compact ``[seconds, calls]``
        pairs worker tasks return.
        """
        for name, cell in timers.items():
            if isinstance(cell, Mapping):
                self.observe(name, cell["seconds"], int(cell["calls"]))
            else:
                self.observe(name, cell[0], int(cell[1]))

    def timers(self) -> dict[str, dict[str, float]]:
        """Timer totals: ``{name: {"seconds": ..., "calls": ...}}``."""
        return {
            name: {"seconds": cell[0], "calls": cell[1]}
            for name, cell in self._timers.items()
        }

    # -- histograms ----------------------------------------------------

    def hist(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram()
        hist.record(value)

    def merge_hists(self, hists: Mapping) -> None:
        """Fold a histogram mapping in (``Histogram`` or dict forms)."""
        for name, other in hists.items():
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = Histogram()
            hist.merge(other)

    def histograms(self) -> dict[str, Histogram]:
        """Independent snapshots of every histogram series."""
        return {name: hist.copy() for name, hist in self._hists.items()}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters, gauges, timers and
        histograms in — the one-call form of worker shipping.

        Gauges are last-write-wins (the merged registry's value
        replaces this one's); everything else is additive. Spans are
        *not* merged: they carry process-local clock offsets.
        """
        self.merge_counts(other._counters)
        self._gauges.update(other._gauges)
        for name, cell in other._timers.items():
            self.observe(name, cell[0], int(cell[1]))
        self.merge_hists(other._hists)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block into timer ``name`` (no span record)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    @contextmanager
    def trace(self, name: str) -> Iterator[None]:
        """Time a block, record a nested :class:`Span`, feed the timer."""
        depth = len(self._span_stack)
        self._span_stack.append(name)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            path = "/".join(self._span_stack)
            self._span_stack.pop()
            if len(self.spans) < self._max_spans:
                self.spans.append(Span(
                    name=name, path=path, depth=depth,
                    started=started - self._epoch, seconds=elapsed,
                ))
            else:
                self.inc("obs.spans_dropped")
            self.observe(name, elapsed)

    def record_span(self, name: str, started: float,
                    seconds: float) -> None:
        """Append an already-measured section as a top-level span.

        ``started`` is the :func:`time.perf_counter` timestamp at which
        the section began. Used by the batch executors, which measure
        each scan themselves (the timing exists anyway for counter
        shipping) — so traces from the batch paths carry one span per
        executed scan without a context-manager on the hot path. The
        timer series under ``name`` is fed exactly like :meth:`trace`.
        """
        if len(self.spans) < self._max_spans:
            self.spans.append(Span(
                name=name, path=name, depth=0,
                started=started - self._epoch, seconds=seconds,
            ))
        else:
            self.inc("obs.spans_dropped")
        self.observe(name, seconds)

    # -- snapshots -----------------------------------------------------

    def timers_flat(self) -> dict[str, float]:
        """Timers flattened to ``name.seconds`` / ``name.calls`` keys.

        The flat form subtracts cleanly (see :func:`counter_delta`),
        which is how per-call report windows are carved out of a
        cumulative registry.
        """
        flat: dict[str, float] = {}
        for name, cell in self._timers.items():
            flat[f"{name}.seconds"] = cell[0]
            flat[f"{name}.calls"] = cell[1]
        return flat

    def snapshot(self) -> dict:
        """Everything, as one plain structure (for exporters)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "timers": self.timers(),
            "histograms": {name: hist.to_dict()
                           for name, hist in self._hists.items()},
            "spans": [
                {
                    "name": span.name, "path": span.path,
                    "depth": span.depth,
                    "started": round(span.started, 6),
                    "seconds": round(span.seconds, 6),
                }
                for span in self.spans
            ],
        }

    def reset(self) -> None:
        """Zero every series (spans included)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._hists.clear()
        self.spans.clear()
        self._span_stack.clear()
        self._epoch = time.perf_counter()


class _NullContext:
    """A reusable do-nothing context manager."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullRegistry(MetricsRegistry):
    """A registry that discards everything — the off switch.

    Every method is a no-op, and the context managers are a shared
    pre-built object, so instrumented code can call hooks
    unconditionally at (near) zero cost.
    """

    enabled = False

    def inc(self, name: str, value: int = 1) -> None:
        pass

    def merge_counts(self, counts: Mapping[str, int]) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, seconds: float, count: int = 1) -> None:
        pass

    def merge_timers(self, timers: Mapping) -> None:
        pass

    def hist(self, name: str, value: float) -> None:
        pass

    def merge_hists(self, hists: Mapping) -> None:
        pass

    def merge(self, other: MetricsRegistry) -> None:
        pass

    def record_span(self, name: str, started: float,
                    seconds: float) -> None:
        pass

    def timer(self, name: str) -> _NullContext:  # type: ignore[override]
        return _NULL_CONTEXT

    def trace(self, name: str) -> _NullContext:  # type: ignore[override]
        return _NULL_CONTEXT


#: Shared no-op registry for unconditional hook calls.
NULL = NullRegistry()


_ambient = threading.local()


def current_registry() -> MetricsRegistry:
    """The calling thread's ambient registry (:data:`NULL` by default)."""
    return getattr(_ambient, "registry", NULL)


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` the ambient one for this thread, in a block."""
    previous = getattr(_ambient, "registry", NULL)
    _ambient.registry = registry
    try:
        yield registry
    finally:
        _ambient.registry = previous


def trace(name: str, registry: MetricsRegistry | None = None):
    """Span-trace a block against ``registry`` or the ambient one.

    >>> registry = MetricsRegistry()
    >>> with use_registry(registry):
    ...     with trace("scan.kernel"):
    ...         pass
    >>> [span.name for span in registry.spans]
    ['scan.kernel']
    """
    return (registry if registry is not None else current_registry()
            ).trace(name)


def counter_delta(before: Mapping[str, float],
                  after: Mapping[str, float]) -> dict[str, float]:
    """Per-key ``after - before``, keeping only keys that moved.

    Used to carve one call's counters out of cumulative series: snapshot
    before, snapshot after, subtract.

    >>> counter_delta({"a": 1}, {"a": 3, "b": 2})
    {'a': 2, 'b': 2}
    """
    delta: dict[str, float] = {}
    for name, value in after.items():
        moved = value - before.get(name, 0)
        if moved:
            delta[name] = moved
    return delta
