"""The telemetry sampler: periodic gauge snapshots as bounded time series.

Gauges are last-write-wins scalars — ``service.queue_depth`` tells you
the depth *now*, not the depth sixty seconds ago when the latency cliff
started. :class:`TelemetrySampler` closes that gap without a metrics
backend: it polls a set of named sources on a fixed interval and keeps
each one's history in a bounded ring (``deque(maxlen=capacity)``), so
memory is constant no matter how long the stack runs.

Sources are plain callables returning a number. Two registration
styles:

* :meth:`TelemetrySampler.add_source` — one name, one callable
  (``sampler.add_source("live.memtable_size", lambda: live.memtable_size)``);
* :meth:`TelemetrySampler.watch_registry` — poll every gauge a
  :class:`repro.obs.registry.MetricsRegistry` holds, under its own
  names; gauges that appear later are picked up automatically.

Sampling runs either on a daemon thread (:meth:`start`/:meth:`stop`)
or manually (:meth:`sample_once` with an injectable clock), which is
how tests drive it deterministically. A source that raises is disabled
and counted, never propagated — telemetry must not take the stack down.

The ring serializes to a plain document (:meth:`to_dict` /
:meth:`dump`) that the ``repro metrics`` CLI renders three ways:
``dump`` (the JSON), ``tail`` (the last samples, human-readable) and
``prom`` (latest value per series as Prometheus gauges).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Callable, Mapping

#: Default samples kept per series.
DEFAULT_CAPACITY = 512

#: Default seconds between automatic samples.
DEFAULT_INTERVAL = 1.0


class TelemetrySampler:
    """Bounded ring-buffer time series over polled gauge sources.

    Examples
    --------
    >>> ticks = iter(range(100))
    >>> sampler = TelemetrySampler(clock=lambda: float(next(ticks)))
    >>> depth = [3]
    >>> sampler.add_source("service.queue_depth", lambda: depth[0])
    >>> sampler.sample_once()
    1
    >>> depth[0] = 5
    >>> sampler.sample_once()
    1
    >>> [value for _, value in sampler.series()["service.queue_depth"]]
    [3.0, 5.0]
    """

    def __init__(self, *, interval_seconds: float = DEFAULT_INTERVAL,
                 capacity: int = DEFAULT_CAPACITY,
                 clock: Callable[[], float] = time.time) -> None:
        from repro.exceptions import ReproError

        if interval_seconds <= 0:
            raise ReproError(
                f"interval_seconds must be positive, got "
                f"{interval_seconds}"
            )
        if capacity < 1:
            raise ReproError(
                f"capacity must be positive, got {capacity}"
            )
        self._interval = interval_seconds
        self._capacity = capacity
        self._clock = clock
        self._sources: dict[str, Callable[[], float]] = {}
        self._registries: list = []
        self._series: dict[str, deque] = {}
        self._failed: dict[str, str] = {}
        self._samples_taken = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def interval_seconds(self) -> float:
        """Seconds between automatic samples."""
        return self._interval

    @property
    def capacity(self) -> int:
        """Samples kept per series."""
        return self._capacity

    @property
    def samples_taken(self) -> int:
        """How many sampling sweeps have run."""
        return self._samples_taken

    @property
    def failed_sources(self) -> dict[str, str]:
        """Sources disabled after raising, with the error message."""
        with self._lock:
            return dict(self._failed)

    # -- sources -------------------------------------------------------

    def add_source(self, name: str,
                   source: Callable[[], float]) -> None:
        """Register one named gauge source (replacing any prior one)."""
        with self._lock:
            self._sources[name] = source
            self._failed.pop(name, None)

    def watch_registry(self, registry) -> None:
        """Sample every gauge ``registry`` holds, under its own names.

        Gauges that first appear after registration are sampled from
        then on — the registry is re-enumerated every sweep.
        """
        with self._lock:
            self._registries.append(registry)

    # -- sampling ------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sweep now; returns how many series were appended."""
        now = self._clock()
        with self._lock:
            sources = dict(self._sources)
            registries = list(self._registries)
            failed = set(self._failed)
        observed: dict[str, float] = {}
        for registry in registries:
            try:
                observed.update(registry.gauges())
            except Exception:  # noqa: BLE001 - telemetry never raises
                continue
        for name, source in sources.items():
            if name in failed:
                continue
            try:
                observed[name] = float(source())
            except Exception as error:  # noqa: BLE001
                with self._lock:
                    self._failed[name] = f"{type(error).__name__}: {error}"
        with self._lock:
            for name, value in observed.items():
                ring = self._series.get(name)
                if ring is None:
                    ring = self._series[name] = deque(
                        maxlen=self._capacity)
                ring.append((now, float(value)))
            self._samples_taken += 1
        return len(observed)

    def start(self) -> None:
        """Start the daemon sampling thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="telemetry-sampler", daemon=True)
        self._thread.start()

    def stop(self, *, final_sample: bool = True) -> None:
        """Stop the sampling thread (taking one last sweep by default)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self._interval * 4 + 1.0)
            self._thread = None
        if final_sample:
            self.sample_once()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self.sample_once()

    # -- snapshots -----------------------------------------------------

    def series(self) -> dict[str, tuple[tuple[float, float], ...]]:
        """Every series as ``{name: ((ts, value), ...)}`` copies."""
        with self._lock:
            return {name: tuple(ring)
                    for name, ring in self._series.items()}

    def latest(self) -> dict[str, float]:
        """The newest value of every series."""
        with self._lock:
            return {name: ring[-1][1]
                    for name, ring in self._series.items() if ring}

    def to_dict(self) -> dict:
        """The whole sampler state as one JSON-friendly document."""
        with self._lock:
            return {
                "interval_seconds": self._interval,
                "capacity": self._capacity,
                "samples_taken": self._samples_taken,
                "series": {
                    name: [[round(ts, 6), value]
                           for ts, value in ring]
                    for name, ring in sorted(self._series.items())
                },
            }

    def dump(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def series_from_document(document: Mapping) -> dict[str, list]:
    """The ``{name: [[ts, value], ...]}`` series of a sampler dump.

    Accepts the :meth:`TelemetrySampler.to_dict` shape (the ``repro
    metrics`` CLI reads files through this); raises
    :class:`repro.exceptions.ReproError` on anything else.
    """
    from repro.exceptions import ReproError

    series = document.get("series") if isinstance(document, Mapping) \
        else None
    if not isinstance(series, Mapping):
        raise ReproError(
            "not a telemetry dump: expected a top-level 'series' "
            "mapping (produced by TelemetrySampler.dump / "
            "`repro search --telemetry-out`)"
        )
    out: dict[str, list] = {}
    for name, samples in series.items():
        if not isinstance(samples, list):
            raise ReproError(
                f"telemetry series {name!r} is not a list of samples"
            )
        out[str(name)] = [
            [float(sample[0]), float(sample[1])] for sample in samples
        ]
    return out
