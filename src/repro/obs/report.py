"""The one report every engine returns: :class:`SearchReport`.

Before this layer, evidence about a run was scattered: the indexed
searcher mutated a ``last_stats`` attribute, the batch engines exposed
``BatchStats`` objects, and wall-clock numbers lived in whichever
benchmark script happened to time the call. :class:`SearchReport` is
the single structured answer to "what did that call actually do": which
backend served it (and why it was chosen), how long it took, the
backend's work counters, the batch layer's dedup/memo counters, and any
timer sections the observability registry recorded.

The report is **frozen** — a value, not a live view — and has one
documented schema (:data:`REPORT_SCHEMA`, enforced by
:func:`validate_report`) across all four execution paths: the
per-query sequential scan, the compiled batch scan, the (object or
flat) trie index, and both batch executors. CI validates the reports
the benchmark harnesses emit against the same schema, so the JSON on
disk can never drift from the API.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from repro.exceptions import ReproError

#: Version stamped into every report; bump on breaking schema changes.
#: Version 2 added the required ``histograms`` section (per-series
#: quantile summaries from the fixed-boundary log-bucket histograms).
SCHEMA_VERSION = 2

#: Keys every non-empty ``histograms`` entry must carry (quantile
#: summaries produced by :meth:`repro.obs.hist.Histogram.summary`).
HISTOGRAM_SUMMARY_KEYS = ("count", "mean", "p50", "p90", "p99",
                          "p999", "max")

#: The documented shape of ``SearchReport.to_dict()``. ``counters`` is
#: an open namespace (``scan.*``, ``trie.*``, ``obs.*``) because each
#: backend reports the work profile it actually has; everything else is
#: closed and type-checked by :func:`validate_report`. ``gauges`` is an
#: *optional additive* section (same schema version): last-write-wins
#: observations such as ``service.queue_depth`` or
#: ``service.cache.size``, exported as Prometheus gauges. Reports
#: written before the section existed validate unchanged.
REPORT_SCHEMA: dict[str, Any] = {
    "schema_version": int,
    "backend": str,        # side that actually served the call
    "engine": str,         # serving searcher/executor name
    "mode": str,           # "search" | "batch" | "workload" | "service"
    "queries": int,
    "k": int,
    "matches": int,
    "seconds": float,
    "counters": dict,      # dotted-name -> number
    "timers": dict,        # name -> {"seconds": float, "calls": number}
    "histograms": dict,    # name -> quantile summary (p50/p90/p99/...)
    "batch": (dict, type(None)),  # dedup/memo counters, None off-batch
    "choice": dict,        # {"backend": str, "reason": str}
}

#: Optional top-level sections :func:`validate_report` type-checks only
#: when present (additive evolution without a schema-version bump).
#: ``plan`` is the serialized EXPLAIN plan of the call
#: (:meth:`repro.core.planner.QueryPlan.to_dict`), emitted by
#: planner-routed engines and deep-checked via
#: :func:`repro.core.planner.validate_plan`.
OPTIONAL_REPORT_SCHEMA: dict[str, Any] = {
    "gauges": dict,        # dotted-name -> number, last-write-wins
    "plan": dict,          # serialized QueryPlan (EXPLAIN section)
}

#: Required keys of a non-``None`` ``batch`` section.
BATCH_SCHEMA_KEYS = (
    "queries_seen", "unique_queries", "deduplicated",
    "cache_hits", "scans_executed",
)

#: Allowed ``mode`` values. ``"service"`` reports come from
#: :class:`repro.service.Service` (additive — same schema version).
REPORT_MODES = ("search", "batch", "workload", "service")


@dataclass(frozen=True)
class BatchCounters:
    """Frozen dedup/memo counters of one batch window.

    The immutable face of :class:`repro.scan.executor.BatchStats`,
    usually holding the *delta* a single call contributed rather than
    the executor's cumulative totals.
    """

    queries_seen: int = 0
    unique_queries: int = 0
    cache_hits: int = 0
    scans_executed: int = 0

    @property
    def deduplicated(self) -> int:
        """Queries answered by batch-level deduplication."""
        return self.queries_seen - self.unique_queries

    @classmethod
    def from_stats(cls, stats: Any) -> "BatchCounters":
        """Freeze any ``BatchStats``-shaped object (duck-typed)."""
        return cls(
            queries_seen=stats.queries_seen,
            unique_queries=stats.unique_queries,
            cache_hits=stats.cache_hits,
            scans_executed=stats.scans_executed,
        )

    def to_dict(self) -> dict[str, int]:
        """The ``batch`` section of the report schema."""
        return {
            "queries_seen": self.queries_seen,
            "unique_queries": self.unique_queries,
            "deduplicated": self.deduplicated,
            "cache_hits": self.cache_hits,
            "scans_executed": self.scans_executed,
        }


def _frozen_mapping(mapping: Mapping | None) -> Mapping:
    return MappingProxyType(dict(mapping or {}))


@dataclass(frozen=True)
class SearchReport:
    """What one engine call did, as an immutable value.

    Built by :func:`build_report` (which freezes the mappings); engines
    hand it out via ``search(..., report=True)`` and ``last_report``.

    Examples
    --------
    >>> report = build_report(backend="sequential", engine="sequential[bitparallel]",
    ...                       mode="search", queries=1, k=2, matches=3,
    ...                       seconds=0.004, counters={"scan.candidates": 40})
    >>> report.counters["scan.candidates"]
    40
    >>> validate_report(report.to_dict())
    []
    """

    backend: str
    engine: str
    mode: str
    queries: int
    k: int
    matches: int
    seconds: float
    counters: Mapping[str, float] = field(default_factory=dict)
    timers: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    histograms: Mapping[str, Mapping[str, float]] = field(
        default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    batch: BatchCounters | None = None
    choice_backend: str = ""
    choice_reason: str = ""
    plan: Mapping[str, Any] | None = None
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        """The documented structured form (see :data:`REPORT_SCHEMA`).

        The ``gauges`` and ``plan`` keys are emitted only when the
        report carries them — reports from paths without those
        sections keep their historical shape byte-for-byte.
        """
        mapping = {
            "schema_version": self.schema_version,
            "backend": self.backend,
            "engine": self.engine,
            "mode": self.mode,
            "queries": self.queries,
            "k": self.k,
            "matches": self.matches,
            "seconds": round(self.seconds, 6),
            "counters": dict(self.counters),
            "timers": {name: dict(cell)
                       for name, cell in self.timers.items()},
            "histograms": {name: dict(cell)
                           for name, cell in self.histograms.items()},
            "batch": self.batch.to_dict() if self.batch else None,
            "choice": {
                "backend": self.choice_backend or self.backend,
                "reason": self.choice_reason,
            },
        }
        if self.gauges:
            mapping["gauges"] = dict(self.gauges)
        if self.plan is not None:
            mapping["plan"] = dict(self.plan)
        return mapping

    def to_json(self, *, indent: int | None = None) -> str:
        """The report as JSON (one line when ``indent`` is ``None``)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self, *, prefix: str = "repro") -> str:
        """Prometheus text-exposition rendering (see exporters)."""
        from repro.obs.export import report_to_prometheus

        return report_to_prometheus(self, prefix=prefix)

    def render(self) -> str:
        """Short human-readable summary (the CLI's ``--stats`` text)."""
        lines = [
            f"report: backend={self.backend} engine={self.engine} "
            f"mode={self.mode}",
            f"  {self.queries} queries at k={self.k}: "
            f"{self.matches} matches in {self.seconds:.3f}s",
        ]
        if self.batch is not None:
            lines.append(
                f"  batch: {self.batch.unique_queries} unique of "
                f"{self.batch.queries_seen} seen, "
                f"{self.batch.deduplicated} deduplicated, "
                f"{self.batch.cache_hits} cache hits, "
                f"{self.batch.scans_executed} scans executed"
            )
        for name in sorted(self.counters):
            lines.append(f"  {name} = {self.counters[name]:g}")
        for name in sorted(self.gauges):
            lines.append(f"  {name} = {self.gauges[name]:g} (gauge)")
        if self.plan is not None:
            estimates = self.plan.get("estimates") or []
            ranked = ", ".join(
                f"{cell.get('strategy')}={cell.get('cost', 0.0):.2e}s"
                for cell in estimates if isinstance(cell, Mapping)
            )
            lines.append(
                f"  plan: {self.plan.get('strategy')} "
                f"({ranked})" if ranked else
                f"  plan: {self.plan.get('strategy')}"
            )
        for name in sorted(self.timers):
            cell = self.timers[name]
            lines.append(
                f"  {name}: {cell['seconds']:.4f}s over "
                f"{cell['calls']:g} calls"
            )
        for name in sorted(self.histograms):
            cell = self.histograms[name]
            lines.append(
                f"  {name}: n={cell['count']:g} p50={cell['p50']:g} "
                f"p90={cell['p90']:g} p99={cell['p99']:g} "
                f"max={cell['max']:g}"
            )
        return "\n".join(lines)


def build_report(*, backend: str, engine: str, mode: str, queries: int,
                 k: int, matches: int, seconds: float,
                 counters: Mapping[str, float] | None = None,
                 timers: Mapping[str, Mapping[str, float]] | None = None,
                 histograms: Mapping | None = None,
                 gauges: Mapping[str, float] | None = None,
                 batch: Any = None,
                 choice_backend: str = "",
                 choice_reason: str = "",
                 plan: Mapping[str, Any] | None = None) -> SearchReport:
    """Assemble a frozen :class:`SearchReport`.

    ``batch`` accepts ``None``, a :class:`BatchCounters`, or any
    ``BatchStats``-shaped object (frozen via duck typing); mappings are
    defensively copied and wrapped read-only. ``histograms`` accepts
    live :class:`repro.obs.hist.Histogram` objects (summarized here)
    or ready-made summary dicts. ``plan`` takes the serialized
    :class:`repro.core.planner.QueryPlan` of the call (the additive
    EXPLAIN section), when one routed it.
    """
    if mode not in REPORT_MODES:
        raise ReproError(
            f"unknown report mode {mode!r}; expected one of {REPORT_MODES}"
        )
    if batch is not None and not isinstance(batch, BatchCounters):
        batch = BatchCounters.from_stats(batch)
    if histograms:
        from repro.obs.hist import summarize

        histograms = summarize(histograms)
    return SearchReport(
        backend=backend,
        engine=engine,
        mode=mode,
        queries=queries,
        k=k,
        matches=matches,
        seconds=seconds,
        counters=_frozen_mapping(counters),
        timers=MappingProxyType({
            name: _frozen_mapping(cell)
            for name, cell in (timers or {}).items()
        }),
        histograms=MappingProxyType({
            name: _frozen_mapping(cell)
            for name, cell in (histograms or {}).items()
        }),
        gauges=_frozen_mapping(gauges),
        batch=batch,
        choice_backend=choice_backend,
        choice_reason=choice_reason,
        plan=MappingProxyType(dict(plan)) if plan is not None else None,
    )


def report_from_dict(mapping: Mapping[str, Any]) -> SearchReport:
    """Rebuild a frozen :class:`SearchReport` from its ``to_dict`` form.

    The inverse of :meth:`SearchReport.to_dict` — what benchmark
    harnesses use to re-render reports they embedded in ``BENCH_*.json``
    records.
    """
    batch = mapping.get("batch")
    choice = mapping.get("choice") or {}
    return build_report(
        backend=mapping["backend"],
        engine=mapping["engine"],
        mode=mapping["mode"],
        queries=mapping["queries"],
        k=mapping["k"],
        matches=mapping["matches"],
        seconds=mapping["seconds"],
        counters=mapping.get("counters"),
        timers=mapping.get("timers"),
        histograms=mapping.get("histograms"),
        gauges=mapping.get("gauges"),
        batch=BatchCounters(
            queries_seen=batch["queries_seen"],
            unique_queries=batch["unique_queries"],
            cache_hits=batch["cache_hits"],
            scans_executed=batch["scans_executed"],
        ) if batch else None,
        choice_backend=choice.get("backend", ""),
        choice_reason=choice.get("reason", ""),
        plan=mapping.get("plan"),
    )


def validate_report(mapping: Mapping[str, Any]) -> list[str]:
    """Check a dict against :data:`REPORT_SCHEMA`; return the problems.

    An empty list means the report conforms. Used by the CI schema job
    on benchmark artifacts and by the report tests; ``strict`` callers
    can raise on a non-empty result.

    >>> validate_report({"backend": "sequential"})  # doctest: +ELLIPSIS
    ['missing key: schema_version', ...]
    """
    problems: list[str] = []
    if not isinstance(mapping, Mapping):
        return [f"report must be a mapping, got {type(mapping).__name__}"]
    for key, expected in REPORT_SCHEMA.items():
        if key not in mapping:
            problems.append(f"missing key: {key}")
            continue
        value = mapping[key]
        if expected is float:
            ok = isinstance(value, (int, float)) \
                and not isinstance(value, bool)
        elif expected is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, expected)
        if not ok:
            problems.append(
                f"key {key!r} has type {type(value).__name__}"
            )
    if problems:
        return problems
    if mapping["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {mapping['schema_version']} != "
            f"{SCHEMA_VERSION}"
        )
    if mapping["mode"] not in REPORT_MODES:
        problems.append(f"mode {mapping['mode']!r} not in {REPORT_MODES}")
    for key, expected in OPTIONAL_REPORT_SCHEMA.items():
        if key in mapping and not isinstance(mapping[key], expected):
            problems.append(
                f"optional key {key!r} has type "
                f"{type(mapping[key]).__name__}"
            )
    if isinstance(mapping.get("gauges"), Mapping):
        for name, value in mapping["gauges"].items():
            if not isinstance(name, str) or isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                problems.append(f"gauge {name!r} is not numeric")
    if isinstance(mapping.get("plan"), Mapping):
        from repro.core.planner import validate_plan

        problems.extend(validate_plan(mapping["plan"]))
    for name, value in mapping["counters"].items():
        if not isinstance(name, str) or isinstance(value, bool) \
                or not isinstance(value, (int, float)):
            problems.append(f"counter {name!r} is not numeric")
    for name, cell in mapping["timers"].items():
        if not isinstance(cell, Mapping) or "seconds" not in cell \
                or "calls" not in cell:
            problems.append(
                f"timer {name!r} lacks seconds/calls"
            )
    for name, cell in mapping["histograms"].items():
        if not isinstance(cell, Mapping):
            problems.append(f"histogram {name!r} is not a mapping")
            continue
        for key in HISTOGRAM_SUMMARY_KEYS:
            if key not in cell:
                problems.append(f"histogram {name!r} missing key: {key}")
            elif isinstance(cell[key], bool) \
                    or not isinstance(cell[key], (int, float)):
                problems.append(
                    f"histogram {name!r} key {key!r} is not numeric"
                )
    batch = mapping["batch"]
    if batch is not None:
        for key in BATCH_SCHEMA_KEYS:
            if key not in batch:
                problems.append(f"batch section missing key: {key}")
    choice = mapping["choice"]
    for key in ("backend", "reason"):
        if key not in choice:
            problems.append(f"choice section missing key: {key}")
    return problems


def require_valid_report(mapping: Mapping[str, Any]) -> None:
    """Raise :class:`ReproError` when a report dict breaks the schema."""
    problems = validate_report(mapping)
    if problems:
        raise ReproError(
            "invalid SearchReport: " + "; ".join(problems)
        )
