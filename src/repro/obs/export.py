"""Exporters: one registry/report, three wire formats.

* :func:`to_dict` — plain structures for embedding in benchmark JSON;
* :func:`to_json` / :func:`to_json_lines` — machine-readable dumps
  (JSON lines is one compact report per line, the shape log shippers
  and ``jq`` pipelines expect);
* :func:`to_prometheus` / :func:`report_to_prometheus` — the Prometheus
  text exposition format (``# TYPE`` headers, sanitized metric names),
  so a scrape endpoint or a textfile collector can serve engine
  counters directly.

Exporters read snapshots; they never mutate the registry.
"""

from __future__ import annotations

import json
import math
import re
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.obs.report import SearchReport

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, *, prefix: str = "repro") -> str:
    """A Prometheus-legal metric name (dots and dashes become ``_``).

    >>> metric_name("scan.early_aborts")
    'repro_scan_early_aborts'
    """
    cleaned = _NAME_RE.sub("_", name)
    return f"{prefix}_{cleaned}" if prefix else cleaned


def to_dict(source: Any) -> dict:
    """Plain-dict form of a registry, report, or mapping."""
    if hasattr(source, "snapshot"):
        return source.snapshot()
    if hasattr(source, "to_dict"):
        return source.to_dict()
    return dict(source)


def to_json(source: Any, *, indent: int | None = None) -> str:
    """JSON form of anything :func:`to_dict` accepts."""
    return json.dumps(to_dict(source), indent=indent, sort_keys=True)


def to_json_lines(reports: Iterable[Any]) -> str:
    """One compact JSON document per line (the ``jsonl`` convention)."""
    return "\n".join(
        json.dumps(to_dict(report), sort_keys=True) for report in reports
    )


#: ``# HELP`` text for well-known series; anything else falls back to a
#: namespace-derived one-liner so every exported family carries HELP
#: (promtool treats HELP as optional, humans reading a scrape do not).
_HELP: dict[str, str] = {
    "report.queries": "Queries answered by the reported call.",
    "report.k": "Distance threshold of the reported call.",
    "report.matches": "Total matches returned by the reported call.",
    "report.seconds": "Wall-clock seconds of the reported call.",
    "service.queue_depth": "In-flight admissions at report time.",
    "service.cache.size": "Entries resident in the result cache.",
    "live.memtable_size": "Strings buffered in the live memtable.",
    "live.segments": "Immutable segments behind the live corpus.",
    "live.compactions_in_flight":
        "Background compactions running right now.",
    "live.tombstone_ratio":
        "Tombstones as a fraction of visible live-corpus entries.",
}

_HELP_NAMESPACES: dict[str, str] = {
    "scan": "Sequential-scan engine series",
    "index": "Index engine series",
    "batch": "Batch executor series",
    "service": "Deadline-aware service series",
    "gateway": "Async gateway series",
    "pool": "Shard worker-pool series",
    "live": "Live (LSM) corpus series",
    "obs": "Observability self-monitoring series",
    "report": "Per-report scalar facts",
}


def _help_text(name: str) -> str:
    """The ``# HELP`` line body for one dotted series name."""
    known = _HELP.get(name)
    if known is not None:
        return known
    family = _HELP_NAMESPACES.get(name.split(".", 1)[0])
    if family is not None:
        return f"{family}: {name}."
    return f"repro series {name}."


def _prom_header(kind: str, prom: str, series: str) -> list[str]:
    return [
        f"# HELP {prom} {_help_text(series)}",
        f"# TYPE {prom} {kind}",
    ]


def _prom_lines(kind: str, name: str, value: float, labels: str = "",
                *, series: str | None = None) -> list[str]:
    return _prom_header(kind, name, series if series is not None
                        else name) + [f"{name}{labels} {value:g}"]


def _le_label(edge: float) -> str:
    """A bucket edge as Prometheus renders ``le`` values."""
    return "+Inf" if math.isinf(edge) else f"{edge:g}"


def _histogram_lines(base: str, series: str, count: float, total: float,
                     buckets: Iterable, label_body: str) -> list[str]:
    """One cumulative-histogram family: HELP/TYPE, _bucket, _sum, _count.

    ``label_body`` is the comma-joined non-``le`` labels (may be empty);
    ``buckets`` is ``(upper_edge, cumulative_count)`` pairs ascending.
    The explicit ``+Inf`` bucket (required by the format) is appended
    with the total count.
    """
    lines = _prom_header("histogram", base, series)

    def labelled(extra: str) -> str:
        body = ",".join(part for part in (label_body, extra) if part)
        return "{" + body + "}" if body else ""

    for edge, cumulative in buckets:
        le = 'le="' + _le_label(edge) + '"'
        lines.append(f"{base}_bucket{labelled(le)} {cumulative:g}")
    inf = 'le="+Inf"'
    lines.append(f"{base}_bucket{labelled(inf)} {count:g}")
    plain = labelled("")
    lines.append(f"{base}_sum{plain} {total:g}")
    lines.append(f"{base}_count{plain} {count:g}")
    return lines


def to_prometheus(registry: "MetricsRegistry", *,
                  prefix: str = "repro") -> str:
    """Prometheus text exposition of a registry snapshot.

    Counters export as ``counter``, gauges as ``gauge``, each timer as
    a ``_seconds_total`` counter plus a ``_calls_total`` counter — the
    idiomatic pair for cumulative duration series — and each histogram
    as a true ``histogram`` family with cumulative ``_bucket{le=...}``
    series over the occupied log-bucket edges. Every family carries a
    ``# HELP`` line; the output parses clean under ``promtool check
    metrics``.
    """
    lines: list[str] = []
    for name, value in sorted(registry.counters().items()):
        lines += _prom_lines("counter",
                             metric_name(name, prefix=prefix) + "_total",
                             value, series=name)
    for name, value in sorted(registry.gauges().items()):
        lines += _prom_lines("gauge", metric_name(name, prefix=prefix),
                             value, series=name)
    for name, cell in sorted(registry.timers().items()):
        base = metric_name(name, prefix=prefix)
        lines += _prom_lines("counter", base + "_seconds_total",
                             cell["seconds"], series=name)
        lines += _prom_lines("counter", base + "_calls_total",
                             cell["calls"], series=name)
    for name, hist in sorted(registry.histograms().items()):
        lines += _histogram_lines(
            metric_name(name, prefix=prefix), name,
            hist.count, hist.total, hist.cumulative_buckets(), "")
    return "\n".join(lines) + ("\n" if lines else "")


def telemetry_to_prometheus(series: Mapping, *,
                            prefix: str = "repro") -> str:
    """Prometheus gauges from a telemetry dump's series (latest values).

    ``series`` is the ``{name: [[ts, value], ...]}`` mapping of a
    :meth:`repro.obs.sampler.TelemetrySampler.to_dict` document (see
    :func:`repro.obs.sampler.series_from_document`). Each series
    exports its newest sample as one gauge with a ``# HELP`` line —
    what a textfile collector wants from a sampler dump.
    """
    lines: list[str] = []
    for name, samples in sorted(series.items()):
        if not samples:
            continue
        lines += _prom_lines("gauge", metric_name(name, prefix=prefix),
                             float(samples[-1][1]), series=name)
    return "\n".join(lines) + ("\n" if lines else "")


def report_to_prometheus(report: "SearchReport", *,
                         prefix: str = "repro") -> str:
    """Prometheus text exposition of one :class:`SearchReport`.

    Scalar facts (queries, matches, seconds) export as gauges labelled
    with the serving backend, as does the report's own ``gauges``
    section (last-write-wins observations such as
    ``service.queue_depth`` or ``live.memtable_size``); counters,
    timers and the batch section export as counters under the same
    label. Histogram summaries that carry cumulative bucket pairs
    (every report built from live histograms does — see
    :func:`repro.obs.hist.summarize`) export as true ``histogram``
    families with ``_bucket{le=...}`` series; summaries without them
    (older artifacts) fall back to the quantile ``summary`` shape.
    Every family carries a ``# HELP`` line.
    """
    label_body = f'backend="{report.backend}",mode="{report.mode}"'
    labels = f"{{{label_body}}}"
    lines: list[str] = []
    for name, value in (
        ("queries", report.queries),
        ("k", report.k),
        ("matches", report.matches),
        ("seconds", report.seconds),
    ):
        lines += _prom_lines("gauge",
                             metric_name(f"report.{name}", prefix=prefix),
                             value, labels, series=f"report.{name}")
    for name, value in sorted(report.gauges.items()):
        lines += _prom_lines("gauge", metric_name(name, prefix=prefix),
                             value, labels, series=name)
    for name, value in sorted(report.counters.items()):
        lines += _prom_lines("counter",
                             metric_name(name, prefix=prefix) + "_total",
                             value, labels, series=name)
    for name, cell in sorted(report.timers.items()):
        base = metric_name(name, prefix=prefix)
        lines += _prom_lines("counter", base + "_seconds_total",
                             cell["seconds"], labels, series=name)
        lines += _prom_lines("counter", base + "_calls_total",
                             cell["calls"], labels, series=name)
    for name, cell in sorted(report.histograms.items()):
        base = metric_name(name, prefix=prefix)
        buckets = cell.get("buckets")
        if buckets:
            lines += _histogram_lines(
                base, name, cell["count"],
                cell["mean"] * cell["count"],
                [(float(edge), float(cumulative))
                 for edge, cumulative in buckets],
                label_body)
            continue
        # Quantile summaries without bucket detail export in the
        # Prometheus summary shape: one sample per quantile label,
        # plus _count and _sum.
        lines += _prom_header("summary", base, name)
        for key, quantile in (("p50", "0.5"), ("p90", "0.9"),
                              ("p99", "0.99"), ("p999", "0.999")):
            labelled = (f'{{{label_body},quantile="{quantile}"}}')
            lines.append(f"{base}{labelled} {cell[key]:g}")
        lines.append(f"{base}_count{labels} {cell['count']:g}")
        lines.append(
            f"{base}_sum{labels} {cell['mean'] * cell['count']:g}")
    if report.batch is not None:
        for name, value in report.batch.to_dict().items():
            lines += _prom_lines(
                "counter",
                metric_name(f"batch.{name}", prefix=prefix) + "_total",
                value, labels, series=f"batch.{name}")
    return "\n".join(lines) + ("\n" if lines else "")
