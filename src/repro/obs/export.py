"""Exporters: one registry/report, three wire formats.

* :func:`to_dict` — plain structures for embedding in benchmark JSON;
* :func:`to_json` / :func:`to_json_lines` — machine-readable dumps
  (JSON lines is one compact report per line, the shape log shippers
  and ``jq`` pipelines expect);
* :func:`to_prometheus` / :func:`report_to_prometheus` — the Prometheus
  text exposition format (``# TYPE`` headers, sanitized metric names),
  so a scrape endpoint or a textfile collector can serve engine
  counters directly.

Exporters read snapshots; they never mutate the registry.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.obs.report import SearchReport

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, *, prefix: str = "repro") -> str:
    """A Prometheus-legal metric name (dots and dashes become ``_``).

    >>> metric_name("scan.early_aborts")
    'repro_scan_early_aborts'
    """
    cleaned = _NAME_RE.sub("_", name)
    return f"{prefix}_{cleaned}" if prefix else cleaned


def to_dict(source: Any) -> dict:
    """Plain-dict form of a registry, report, or mapping."""
    if hasattr(source, "snapshot"):
        return source.snapshot()
    if hasattr(source, "to_dict"):
        return source.to_dict()
    return dict(source)


def to_json(source: Any, *, indent: int | None = None) -> str:
    """JSON form of anything :func:`to_dict` accepts."""
    return json.dumps(to_dict(source), indent=indent, sort_keys=True)


def to_json_lines(reports: Iterable[Any]) -> str:
    """One compact JSON document per line (the ``jsonl`` convention)."""
    return "\n".join(
        json.dumps(to_dict(report), sort_keys=True) for report in reports
    )


def _prom_lines(kind: str, name: str, value: float,
                labels: str = "") -> list[str]:
    return [
        f"# TYPE {name} {kind}",
        f"{name}{labels} {value:g}",
    ]


def to_prometheus(registry: "MetricsRegistry", *,
                  prefix: str = "repro") -> str:
    """Prometheus text exposition of a registry snapshot.

    Counters export as ``counter``, gauges as ``gauge``, and each timer
    as a ``_seconds_total`` counter plus a ``_calls_total`` counter —
    the idiomatic pair for cumulative duration series.
    """
    lines: list[str] = []
    for name, value in sorted(registry.counters().items()):
        lines += _prom_lines("counter",
                             metric_name(name, prefix=prefix) + "_total",
                             value)
    for name, value in sorted(registry.gauges().items()):
        lines += _prom_lines("gauge", metric_name(name, prefix=prefix),
                             value)
    for name, cell in sorted(registry.timers().items()):
        base = metric_name(name, prefix=prefix)
        lines += _prom_lines("counter", base + "_seconds_total",
                             cell["seconds"])
        lines += _prom_lines("counter", base + "_calls_total",
                             cell["calls"])
    return "\n".join(lines) + ("\n" if lines else "")


def report_to_prometheus(report: "SearchReport", *,
                         prefix: str = "repro") -> str:
    """Prometheus text exposition of one :class:`SearchReport`.

    Scalar facts (queries, matches, seconds) export as gauges labelled
    with the serving backend, as does the report's own ``gauges``
    section (last-write-wins observations such as
    ``service.queue_depth`` or ``service.cache.size``); counters,
    timers and the batch section export as counters under the same
    label.
    """
    labels = f'{{backend="{report.backend}",mode="{report.mode}"}}'
    lines: list[str] = []
    for name, value in (
        ("queries", report.queries),
        ("k", report.k),
        ("matches", report.matches),
        ("seconds", report.seconds),
    ):
        lines += _prom_lines("gauge",
                             metric_name(f"report.{name}", prefix=prefix),
                             value, labels)
    for name, value in sorted(report.gauges.items()):
        lines += _prom_lines("gauge", metric_name(name, prefix=prefix),
                             value, labels)
    for name, value in sorted(report.counters.items()):
        lines += _prom_lines("counter",
                             metric_name(name, prefix=prefix) + "_total",
                             value, labels)
    for name, cell in sorted(report.timers.items()):
        base = metric_name(name, prefix=prefix)
        lines += _prom_lines("counter", base + "_seconds_total",
                             cell["seconds"], labels)
        lines += _prom_lines("counter", base + "_calls_total",
                             cell["calls"], labels)
    for name, cell in sorted(report.histograms.items()):
        # Quantile summaries export in the Prometheus summary shape:
        # one gauge per quantile label, plus _count and _sum.
        base = metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {base} summary")
        for key, quantile in (("p50", "0.5"), ("p90", "0.9"),
                              ("p99", "0.99"), ("p999", "0.999")):
            labelled = (f'{{backend="{report.backend}",'
                        f'mode="{report.mode}",quantile="{quantile}"}}')
            lines.append(f"{base}{labelled} {cell[key]:g}")
        lines.append(f"{base}_count{labels} {cell['count']:g}")
        lines.append(
            f"{base}_sum{labels} {cell['mean'] * cell['count']:g}")
    if report.batch is not None:
        for name, value in report.batch.to_dict().items():
            lines += _prom_lines(
                "counter",
                metric_name(f"batch.{name}", prefix=prefix) + "_total",
                value, labels)
    return "\n".join(lines) + ("\n" if lines else "")
