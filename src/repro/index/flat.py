"""The compiled trie: the paper's index frozen into flat arrays.

PR 1 gave the *scan* side a compiled execution path
(:mod:`repro.scan`); this module is the index-side twin. A
:class:`FlatTrie` freezes a :class:`repro.index.trie.PrefixTrie` or
:class:`repro.index.compressed.CompressedTrie` (or builds one directly
from strings) into parallel tuples, so a similarity descent touches
contiguous integer arrays instead of chasing ``TrieNode`` objects
through attribute lookups and dict hops — the cache-conscious layout
the string-index literature recommends (INSTRUCT-style packed tries,
CSR adjacency), applied where pure Python actually bleeds: per-node
interpreter overhead.

Layout (all plain tuples, so the value is immutable and pickles
cheaply for :mod:`repro.parallel` process runners):

* **CSR children** — ``child_offsets[v]:child_offsets[v + 1]`` slices
  ``child_ids``; children are sorted by the first code of their edge
  label, so exact lookups binary-search and traversal order is
  deterministic.
* **Encoded edge labels** — ``label_offsets[v]:label_offsets[v + 1]``
  slices ``label_codes``, the edge label of ``v`` encoded through the
  corpus :class:`repro.data.alphabet.Alphabet` (one code per symbol; a
  radix-compressed edge is simply a longer run).
* **Subtree annotations** — ``subtree_min_length`` /
  ``subtree_max_length`` feed the paper's conditions (9)/(10);
  optional ``freq_min`` / ``freq_max`` (row-major, ``tracked`` wide)
  feed PETER-style pruning.
* **Terminal payloads** — ``terminal_count[v]`` multiplicities and
  ``terminal_sid[v]`` ids into the ``strings`` table (``-1`` for inner
  nodes), so collecting a match is two array reads, never a string
  concatenation.

:func:`flat_similarity_search` runs the same banded-DP descent as
:func:`repro.index.traversal.trie_similarity_search` — same pruning
rules, same :class:`~repro.index.traversal.TraversalStats` counters —
but iteratively (explicit stack) and allocation-free (row buffers
preallocated per depth, reusable across queries via ``row_bank``).
Batch execution lives in :mod:`repro.index.batch`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator

from repro.core.deadline import Budget, Deadline
from repro.data.alphabet import Alphabet
from repro.distance.banded import check_threshold
from repro.exceptions import DeadlineExceeded, IndexConstructionError
from repro.filters.frequency import frequency_vector
from repro.index.compressed import CompressedTrie
from repro.index.traversal import TraversalStats, TrieMatch
from repro.index.trie import PrefixTrie


class FlatTrie:
    """An annotated prefix tree compiled into parallel flat arrays.

    Parameters
    ----------
    strings:
        Dataset to index (duplicates accumulate multiplicities, as in
        the object tries).
    compress:
        Freeze the radix-compressed tree of section 4.2 (default) or
        the one-symbol-per-edge tree of section 4.1. Compression only
        changes how many node boundaries a descent crosses — results
        are identical.
    tracked_symbols / case_insensitive_frequencies:
        As in :class:`PrefixTrie`: enables PETER-style per-node
        frequency bounds over these symbols.
    alphabet:
        Optional explicit :class:`Alphabet` for label encoding; when
        omitted, a minimal alphabet is inferred from the dataset.

    Examples
    --------
    >>> flat = FlatTrie(["Berlin", "Bern", "Ulm"])
    >>> flat.string_count
    3
    >>> "Bern" in flat
    True
    >>> sorted(flat)
    ['Berlin', 'Bern', 'Ulm']
    >>> [m.string for m in flat_similarity_search(flat, "Berlino", 2)]
    ['Berlin']
    """

    def __init__(self, strings: Iterable[str] = (), *,
                 compress: bool = True,
                 tracked_symbols: str | None = None,
                 case_insensitive_frequencies: bool = True,
                 alphabet: Alphabet | None = None) -> None:
        if compress:
            source: PrefixTrie | CompressedTrie = CompressedTrie(
                strings, tracked_symbols=tracked_symbols,
                case_insensitive_frequencies=case_insensitive_frequencies,
            )
        else:
            source = PrefixTrie(
                strings, tracked_symbols=tracked_symbols,
                case_insensitive_frequencies=case_insensitive_frequencies,
            )
        self._freeze(source, alphabet)

    @classmethod
    def from_trie(cls, trie: PrefixTrie | CompressedTrie, *,
                  alphabet: Alphabet | None = None) -> "FlatTrie":
        """Freeze an already-built object trie (topology preserved)."""
        flat = cls.__new__(cls)
        flat._freeze(trie, alphabet)
        return flat

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _freeze(self, trie: PrefixTrie | CompressedTrie,
                alphabet: Alphabet | None) -> None:
        self._segment_path: str | None = None
        self._tracked = trie.tracked_symbols
        self._case_insensitive = trie.case_insensitive_frequencies
        self._string_count = trie.string_count
        self._max_depth = trie.max_depth

        # Preorder walk with children sorted by label, so node ids are
        # DFS-contiguous and the strings table comes out lexicographic.
        order: list = []          # object nodes in preorder
        prefixes: list[str] = []  # full string ending at each node
        stack = [(trie.root, "")]
        while stack:
            node, prefix = stack.pop()
            prefix = prefix + node.label
            order.append(node)
            prefixes.append(prefix)
            for symbol in sorted(node.children, reverse=True):
                stack.append((node.children[symbol], prefix))

        if alphabet is None:
            symbols = sorted({
                symbol for node in order for symbol in node.label
            })
            alphabet = Alphabet("inferred", "".join(symbols)) \
                if symbols else None
        self._alphabet = alphabet

        ids = {id(node): index for index, node in enumerate(order)}
        count = len(order)
        codes = alphabet._codes if alphabet is not None else {}

        label_offsets = [0] * (count + 1)
        label_codes: list[int] = []
        child_offsets = [0] * (count + 1)
        child_ids: list[int] = []
        sub_min = [0] * count
        sub_max = [0] * count
        terminal_count = [0] * count
        terminal_sid = [-1] * count
        strings: list[str] = []

        tracked = self._tracked
        width = len(tracked) if tracked is not None else 0
        has_freq = width > 0 and order[0].freq_min is not None
        freq_min: list[int] = []
        freq_max: list[int] = []

        for index, node in enumerate(order):
            for symbol in node.label:
                try:
                    label_codes.append(codes[symbol])
                except KeyError:
                    raise IndexConstructionError(
                        f"label symbol {symbol!r} is not in alphabet "
                        f"{alphabet.name!r}"  # type: ignore[union-attr]
                    ) from None
            label_offsets[index + 1] = len(label_codes)
            for symbol in sorted(node.children):
                child_ids.append(ids[id(node.children[symbol])])
            child_offsets[index + 1] = len(child_ids)
            sub_min[index] = node.subtree_min_length
            sub_max[index] = node.subtree_max_length
            terminal_count[index] = node.terminal_count
            if node.terminal_count:
                terminal_sid[index] = len(strings)
                strings.append(prefixes[index])
            if has_freq:
                # Every node of a non-empty tracked trie lies on an
                # insertion path, so its bounds are always present.
                freq_min.extend(node.freq_min)
                freq_max.extend(node.freq_max)

        self._label_offsets = tuple(label_offsets)
        self._label_codes = tuple(label_codes)
        self._child_offsets = tuple(child_offsets)
        self._child_ids = tuple(child_ids)
        self._sub_min = tuple(sub_min)
        self._sub_max = tuple(sub_max)
        self._terminal_count = tuple(terminal_count)
        self._terminal_sid = tuple(terminal_sid)
        self._strings = tuple(strings)
        self._freq_min = tuple(freq_min) if has_freq else None
        self._freq_max = tuple(freq_max) if has_freq else None
        # First label code per child, parallel to child_ids, so exact
        # descents binary-search instead of scanning siblings.
        self._child_first = tuple(
            self._label_codes[self._label_offsets[child]]
            for child in self._child_ids
        )

    # ------------------------------------------------------------------
    # Introspection (mirrors the object tries)
    # ------------------------------------------------------------------

    @property
    def alphabet(self) -> Alphabet | None:
        """The alphabet labels are encoded over (``None`` iff empty)."""
        return self._alphabet

    @property
    def segment_path(self) -> str | None:
        """The segment file backing this trie, if it was mmap-loaded.

        Set by :func:`repro.speed.load_segment`; the batch executor
        uses it to ship a :class:`repro.speed.SegmentRef` to pool
        workers instead of pickling the trie.
        """
        return self._segment_path

    @property
    def node_count(self) -> int:
        """Number of nodes, root included."""
        return len(self._sub_min)

    @property
    def string_count(self) -> int:
        """Number of inserted strings, duplicates included."""
        return self._string_count

    @property
    def max_depth(self) -> int:
        """Length of the longest inserted string."""
        return self._max_depth

    @property
    def tracked_symbols(self) -> str | None:
        """Symbols with frequency annotations, or ``None``."""
        return self._tracked

    @property
    def case_insensitive_frequencies(self) -> bool:
        """Whether frequency annotations fold case."""
        return self._case_insensitive

    @property
    def has_frequencies(self) -> bool:
        """Were PETER-style bounds compiled in?"""
        return self._freq_min is not None

    @property
    def strings(self) -> tuple[str, ...]:
        """Distinct strings, in lexicographic (DFS) order."""
        return self._strings

    def __len__(self) -> int:
        return self._string_count

    def __iter__(self) -> Iterator[str]:
        """Yield distinct strings in lexicographic order."""
        return iter(self._strings)

    def iter_with_counts(self) -> Iterator[tuple[str, int]]:
        """Yield ``(string, multiplicity)`` in lexicographic order."""
        terminal_sid = self._terminal_sid
        terminal_count = self._terminal_count
        for node, sid in enumerate(terminal_sid):
            if sid >= 0:
                yield self._strings[sid], terminal_count[node]

    def __contains__(self, string: str) -> bool:
        node = self._lookup(string)
        return node >= 0 and self._terminal_count[node] > 0

    def count(self, string: str) -> int:
        """Multiplicity of ``string`` in the compiled trie."""
        node = self._lookup(string)
        return self._terminal_count[node] if node >= 0 else 0

    def _lookup(self, string: str) -> int:
        """Exact descent; ``-1`` when the walk falls off the tree."""
        if self._alphabet is None:
            return -1
        codes = self._alphabet._codes
        label_offsets = self._label_offsets
        label_codes = self._label_codes
        child_offsets = self._child_offsets
        child_ids = self._child_ids
        child_first = self._child_first
        node = 0
        position = 0
        length = len(string)
        while position < length:
            code = codes.get(string[position])
            if code is None:
                return -1
            lo = child_offsets[node]
            hi = child_offsets[node + 1]
            slot = bisect_left(child_first, code, lo, hi)
            if slot >= hi or child_first[slot] != code:
                return -1
            node = child_ids[slot]
            start = label_offsets[node]
            end = label_offsets[node + 1]
            for offset in range(start, end):
                if position >= length:
                    return -1
                code = codes.get(string[position])
                if code != label_codes[offset]:
                    return -1
                position += 1
        return node

    def encode_query(self, query: str) -> tuple[int, ...]:
        """Encode a query over the trie alphabet, tolerating strangers.

        Out-of-alphabet symbols map to ``-1``: no edge label carries
        that code, so such positions can never match — exactly the
        raw-string semantics of the object traversal.
        """
        if self._alphabet is None:
            return tuple(-1 for _ in query)
        codes = self._alphabet._codes
        return tuple(codes.get(symbol, -1) for symbol in query)

    def describe(self) -> dict:
        """Compile-time facts, for benchmarks and reports."""
        return {
            "nodes": self.node_count,
            "strings": len(self._strings),
            "string_count": self._string_count,
            "max_depth": self._max_depth,
            "label_symbols": len(self._label_codes),
            "alphabet_size": self._alphabet.size if self._alphabet else 0,
            "tracked_symbols": self._tracked or "",
            "has_frequencies": self.has_frequencies,
        }

    def __repr__(self) -> str:
        return (
            f"FlatTrie(nodes={self.node_count}, "
            f"strings={len(self._strings)}, "
            f"max_depth={self._max_depth})"
        )


def flat_similarity_search(flat: FlatTrie, query: str, k: int, *,
                           use_frequency_pruning: bool = True,
                           stats: TraversalStats | None = None,
                           row_bank: list | None = None,
                           deadline: Deadline | Budget | None = None,
                           ) -> list[TrieMatch]:
    """All dataset strings within edit distance ``k`` of ``query``.

    The compiled twin of
    :func:`repro.index.traversal.trie_similarity_search`: identical
    pruning rules (frequency bound first, then the length box, the
    Ukkonen band cutoff and the full conditions (9)/(10) completion
    bound), identical results, identical
    :class:`~repro.index.traversal.TraversalStats` counters for the
    same tree topology — but iterative and allocation-free.

    Parameters
    ----------
    flat:
        The compiled trie.
    query / k:
        Query string and edit-distance threshold (``>= 0``).
    use_frequency_pruning:
        Apply PETER-style pruning when bounds were compiled in.
    stats:
        Optional counter object to fill with traversal work.
    row_bank:
        Optional caller-owned list of DP row buffers, reused across
        calls (the executor passes one per worker); grown on demand,
        never shrunk.
    deadline:
        Optional :class:`repro.core.deadline.Deadline` /
        :class:`repro.core.deadline.Budget`, polled every
        ``check_interval`` visited nodes; on expiry the descent raises
        :class:`DeadlineExceeded` carrying the matches proven so far
        (a subset of the exact answer), with the stats object already
        updated with the partial traversal's work.

    Examples
    --------
    >>> flat = FlatTrie(["Berlin", "Bern", "Ulm"])
    >>> [m.string for m in flat_similarity_search(flat, "Bern", 1)]
    ['Bern']
    """
    check_threshold(k)
    if stats is None:
        stats = TraversalStats()

    n = len(query)
    infinity = k + 1
    encoded = flat.encode_query(query)

    tracked = flat.tracked_symbols
    query_frequency: tuple[int, ...] | None = None
    if use_frequency_pruning and tracked is not None \
            and flat.has_frequencies:
        query_frequency = frequency_vector(
            query, tracked, flat.case_insensitive_frequencies
        )
    width = len(tracked) if tracked is not None else 0

    # Local bindings: the loop below runs once per node/symbol and every
    # attribute hop it avoids is measurable in CPython.
    label_offsets = flat._label_offsets
    label_codes = flat._label_codes
    child_offsets = flat._child_offsets
    child_ids = flat._child_ids
    sub_min = flat._sub_min
    sub_max = flat._sub_max
    terminal_count = flat._terminal_count
    terminal_sid = flat._terminal_sid
    strings = flat._strings
    freq_min = flat._freq_min
    freq_max = flat._freq_max

    if row_bank is None:
        row_bank = []
    need = flat.max_depth + 2
    if len(row_bank) < need:
        row_bank.extend([None] * (need - len(row_bank)))
    rows = row_bank
    rows[0] = [j if j <= k else infinity for j in range(n + 1)]
    # A row at depth d is only ever written while d <= n + k (deeper
    # bands leave the query and prune first), so materializing that
    # prefix up front removes the per-symbol existence check.
    for d in range(1, min(flat.max_depth, n + k) + 2):
        row = rows[d]
        if row is None or len(row) <= n:
            rows[d] = [0] * (n + 1)

    nodes_visited = 0
    symbols_total = 0
    pruned_length = 0
    pruned_frequency = 0
    matches: list[TrieMatch] = []

    # (node, depth-at-entry) frames; LIFO pushes reproduce recursive
    # DFS order, which is what keeps the per-depth row sharing sound: a
    # sibling subtree only writes rows *deeper* than the shared parent
    # row it is entered from.
    frames: list[tuple[int, int]] = [(0, 0)]
    push = frames.append
    pop = frames.pop

    check_interval = deadline.check_interval if deadline is not None else 0
    countdown = check_interval

    while frames:
        node, depth = pop()
        nodes_visited += 1

        if countdown:
            countdown -= 1
            if not countdown:
                countdown = check_interval
                if deadline.spend(check_interval):
                    stats.nodes_visited += nodes_visited
                    stats.symbols_processed += symbols_total
                    stats.branches_pruned_by_length += pruned_length
                    stats.branches_pruned_by_frequency += pruned_frequency
                    stats.matches += len(matches)
                    matches.sort(key=lambda match: match.string)
                    raise DeadlineExceeded(
                        f"flat-trie descent for {query!r} (k={k}) "
                        f"exceeded its deadline after {nodes_visited} "
                        "nodes",
                        partial=tuple(matches), scope="nodes",
                        completed=nodes_visited,
                        total=flat.node_count,
                    )

        if query_frequency is not None:
            base = node * width
            surplus = 0
            deficit = 0
            for position in range(width):
                fq = query_frequency[position]
                lo_bound = freq_min[base + position]
                if fq < lo_bound:
                    deficit += lo_bound - fq
                elif fq > freq_max[base + position]:
                    surplus += fq - freq_max[base + position]
            if surplus > k or deficit > k:
                pruned_frequency += 1
                continue

        node_lo = sub_min[node]
        node_hi = sub_max[node]
        length_bound = node_lo - n
        if n - node_hi > length_bound:
            length_bound = n - node_hi
        if length_bound > k:
            pruned_length += 1
            continue

        label_start = label_offsets[node]
        label_end = label_offsets[node + 1]
        child_start = child_offsets[node]
        child_end = child_offsets[node + 1]
        pruned = False
        consumed = 0
        if label_start != label_end:
            parent = rows[depth]
            last_offset = label_end - 1
            for offset in range(label_start, label_end):
                code = label_codes[offset]
                depth += 1
                consumed += 1
                lo = depth - k
                hi = depth + k
                if lo > n:
                    # The band left the query: every completion needs
                    # more than k deletions.
                    pruned = True
                    pruned_length += 1
                    break
                if hi > n:
                    hi = n
                row = rows[depth]

                # Band update, cells j in [lo, hi] clamped to [0, n].
                # ``prev`` carries row[j - 1] and ``diagonal`` carries
                # parent[j - 1] between iterations, so the loop body
                # reads ``parent`` once per cell. Values above the
                # threshold are left unclamped — every value > k is
                # equally dead for pruning, collection and the DP mins.
                if lo <= 0:
                    lo = 0
                    row[0] = depth
                    row_min = prev = depth
                    first = 1
                else:
                    row_min = prev = infinity
                    first = lo
                # parent's band tops out at depth - 1 + k; the one cell
                # that can exceed it (j == depth + k, when the query
                # did not clamp hi) is peeled below.
                clipped = hi - 1 if hi == depth + k else hi
                diagonal = parent[first - 1]
                for j in range(first, clipped + 1):
                    above = parent[j]
                    if code == encoded[j - 1]:
                        cost = diagonal
                    else:
                        cost = diagonal
                        if above < cost:
                            cost = above
                        if prev < cost:
                            cost = prev
                        cost += 1
                    row[j] = cost
                    if cost < row_min:
                        row_min = cost
                    diagonal = above
                    prev = cost
                if clipped != hi:
                    if code == encoded[hi - 1]:
                        cost = diagonal
                    else:
                        cost = diagonal
                        if prev < cost:
                            cost = prev
                        cost += 1
                    row[hi] = cost
                    if cost < row_min:
                        row_min = cost
                if row_min > k:
                    # Ukkonen cutoff: the whole band left the threshold.
                    pruned = True
                    pruned_length += 1
                    break
                if offset == last_offset and child_start != child_end:
                    # Full conditions (9)/(10) once per node, right
                    # before the branch fans out into children.
                    remaining_hi = node_hi - depth
                    remaining_lo = node_lo - depth
                    best_completion = infinity
                    for j in range(lo, hi + 1):
                        query_left = n - j
                        shortfall = query_left - remaining_hi
                        if remaining_lo - query_left > shortfall:
                            shortfall = remaining_lo - query_left
                        if shortfall < 0:
                            shortfall = 0
                        total = row[j] + shortfall
                        if total < best_completion:
                            best_completion = total
                    if best_completion > k and not terminal_count[node]:
                        pruned = True
                        pruned_length += 1
                        break
                parent = row
        symbols_total += consumed
        if pruned:
            continue

        multiplicity = terminal_count[node]
        if multiplicity and depth - k <= n <= depth + k:
            distance = rows[depth][n]
            if distance <= k:
                matches.append(TrieMatch(
                    strings[terminal_sid[node]], distance, multiplicity
                ))

        for slot in range(child_end - 1, child_start - 1, -1):
            push((child_ids[slot], depth))

    stats.nodes_visited += nodes_visited
    stats.symbols_processed += symbols_total
    stats.branches_pruned_by_length += pruned_length
    stats.branches_pruned_by_frequency += pruned_frequency
    stats.matches += len(matches)

    matches.sort(key=lambda match: match.string)
    return matches
