"""The paper's prefix-tree index (section 4.1).

A :class:`PrefixTrie` holds the dataset as one character per edge. Each
node on an insertion path observes the inserted string's length (and
optionally its frequency vector), maintaining the subtree annotations
the similarity traversal prunes with:

* length bounds → the paper's tolerance pruning (conditions 9/10);
* frequency bounds → PETER-style pruning (section 2.3, future work 6).

The trie also answers exact membership and enumeration queries, which
the tests use to pin down its set semantics. Similarity search lives in
:mod:`repro.index.traversal` so it can be shared with the compressed
trie of section 4.2.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import IndexConstructionError
from repro.filters.frequency import frequency_vector
from repro.index.node import TrieNode


class PrefixTrie:
    """An annotated prefix tree over a set (multiset) of strings.

    Parameters
    ----------
    strings:
        Optional initial contents.
    tracked_symbols:
        When given, every node additionally maintains per-symbol count
        bounds over its subtree for these symbols (e.g. ``"ACGNT"`` for
        DNA, ``"AEIOU"`` for city names), enabling frequency pruning.
    case_insensitive_frequencies:
        Fold case when counting tracked symbols (for natural language).

    Examples
    --------
    >>> trie = PrefixTrie(["Berlin", "Bern", "Ulm"])
    >>> trie.string_count
    3
    >>> "Bern" in trie
    True
    >>> sorted(trie)
    ['Berlin', 'Bern', 'Ulm']
    """

    #: Depth equals the longest inserted string (paper section 4.1).
    def __init__(self, strings: Iterable[str] = (), *,
                 tracked_symbols: str | None = None,
                 case_insensitive_frequencies: bool = True) -> None:
        self._root = TrieNode()
        self._string_count = 0
        self._node_count = 1
        self._max_depth = 0
        self._tracked_symbols = tracked_symbols
        self._case_insensitive = case_insensitive_frequencies
        for string in strings:
            self.insert(string)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def insert(self, string: str) -> None:
        """Insert one string (duplicates accumulate a terminal count).

        Raises
        ------
        IndexConstructionError
            For empty strings — the competition format forbids them and
            an empty key would alias the root.
        """
        if not string:
            raise IndexConstructionError(
                "cannot insert an empty string into the prefix trie"
            )
        frequency = self._frequency_of(string)
        length = len(string)
        node = self._root
        node.observe_string(length, frequency)
        for symbol in string:
            child = node.children.get(symbol)
            if child is None:
                child = TrieNode(symbol)
                node.children[symbol] = child
                self._node_count += 1
            child.observe_string(length, frequency)
            node = child
        node.terminal_count += 1
        self._string_count += 1
        if length > self._max_depth:
            self._max_depth = length

    def extend(self, strings: Iterable[str]) -> None:
        """Insert many strings."""
        for string in strings:
            self.insert(string)

    def _frequency_of(self, string: str) -> tuple[int, ...] | None:
        if self._tracked_symbols is None:
            return None
        return frequency_vector(
            string, self._tracked_symbols, self._case_insensitive
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> TrieNode:
        """The root node (empty label)."""
        return self._root

    @property
    def string_count(self) -> int:
        """Number of inserted strings, duplicates included."""
        return self._string_count

    @property
    def node_count(self) -> int:
        """Number of nodes, root included."""
        return self._node_count

    @property
    def max_depth(self) -> int:
        """Length of the longest inserted string."""
        return self._max_depth

    @property
    def tracked_symbols(self) -> str | None:
        """Symbols with frequency annotations, or ``None``."""
        return self._tracked_symbols

    @property
    def case_insensitive_frequencies(self) -> bool:
        """Whether frequency annotations fold case."""
        return self._case_insensitive

    def __len__(self) -> int:
        return self._string_count

    def __contains__(self, string: str) -> bool:
        node = self._lookup_node(string)
        return node is not None and node.is_terminal

    def count(self, string: str) -> int:
        """Multiplicity of ``string`` in the trie."""
        node = self._lookup_node(string)
        return node.terminal_count if node is not None else 0

    def _lookup_node(self, string: str) -> TrieNode | None:
        node = self._root
        for symbol in string:
            node = node.children.get(symbol)  # type: ignore[assignment]
            if node is None:
                return None
        return node

    def __iter__(self) -> Iterator[str]:
        """Yield distinct strings in lexicographic order."""
        yield from self._walk(self._root, "")

    def _walk(self, node: TrieNode, prefix: str) -> Iterator[str]:
        prefix = prefix + node.label
        if node.is_terminal:
            yield prefix
        for symbol in sorted(node.children):
            yield from self._walk(node.children[symbol], prefix)

    def iter_with_counts(self) -> Iterator[tuple[str, int]]:
        """Yield ``(string, multiplicity)`` in lexicographic order."""
        yield from self._walk_counts(self._root, "")

    def _walk_counts(self, node: TrieNode,
                     prefix: str) -> Iterator[tuple[str, int]]:
        prefix = prefix + node.label
        if node.is_terminal:
            yield prefix, node.terminal_count
        for symbol in sorted(node.children):
            yield from self._walk_counts(node.children[symbol], prefix)

    def starts_with(self, prefix: str) -> list[str]:
        """All distinct strings beginning with ``prefix``."""
        node = self._lookup_node(prefix)
        if node is None:
            return []
        return list(self._walk_from(node, prefix))

    def _walk_from(self, node: TrieNode, prefix: str) -> Iterator[str]:
        if node.is_terminal:
            yield prefix
        for symbol in sorted(node.children):
            child = node.children[symbol]
            yield from self._walk_from(child, prefix + child.label)
