"""Index structures for string similarity search.

The paper's index-based solution (section 4) is a prefix tree whose
nodes carry the minimum and maximum string length reachable below them,
enabling early pruning (conditions 9/10), later compressed by merging
single-child chains (section 4.2). This package implements that index
and the related-work alternatives it is positioned against:

* :class:`PrefixTrie` — the paper's index, with optional PETER-style
  frequency-vector annotations (section 2.3 / future work section 6).
* :class:`CompressedTrie` — the radix-compressed form of section 4.2.
* :func:`trie_similarity_search` — threshold search over either trie.
* :class:`FlatTrie` / :func:`flat_similarity_search` — either trie
  frozen into flat CSR arrays with an iterative, allocation-free
  descent (see :mod:`repro.index.flat`), plus
  :class:`BatchIndexExecutor` / :class:`FlatIndexSearcher` for
  batch-amortized execution (see :mod:`repro.index.batch`).
* :class:`QGramIndex` — inverted q-gram index, the "well-known index"
  family most mature systems use.
* :class:`SuffixArray` — Navarro-style suffix-array substrate with
  pattern-partitioning approximate search (section 2.3).
"""

from repro.index.autocomplete import Completion, autocomplete
from repro.index.automaton import LevenshteinAutomaton, automaton_trie_search
from repro.index.batch import BatchIndexExecutor, FlatIndexSearcher
from repro.index.bktree import BKTree, bktree_from
from repro.index.compressed import CompressedTrie
from repro.index.dawg import Dawg
from repro.index.flat import FlatTrie, flat_similarity_search
from repro.index.node import TrieNode
from repro.index.qgram_index import QGramIndex
from repro.index.suffix_array import SuffixArray
from repro.index.traversal import TraversalStats, trie_similarity_search
from repro.index.trie import PrefixTrie

__all__ = [
    "TrieNode",
    "PrefixTrie",
    "CompressedTrie",
    "trie_similarity_search",
    "TraversalStats",
    "FlatTrie",
    "flat_similarity_search",
    "BatchIndexExecutor",
    "FlatIndexSearcher",
    "LevenshteinAutomaton",
    "automaton_trie_search",
    "Completion",
    "autocomplete",
    "BKTree",
    "bktree_from",
    "Dawg",
    "QGramIndex",
    "SuffixArray",
]
