"""Burkhard–Keller tree: the classic metric-space index baseline.

Edit distance is a metric, so the oldest trick in the similarity-search
book applies: organize strings in a tree where each child hangs off its
parent at a fixed distance, and use the triangle inequality to discard
whole subtrees — a child at edge distance ``d`` can only contain
matches when ``|d - ed(query, node)| <= k``.

The BK-tree is *structure-free* (no prefix sharing, no alphabet
assumptions), which makes it the natural third point of comparison
beside the paper's trie and the q-gram index: its query cost depends
only on how discriminative the metric is, so it shows what an index
buys *without* exploiting string structure.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.distance.banded import check_threshold
from repro.distance.bitparallel import myers_distance
from repro.exceptions import IndexConstructionError
from repro.index.traversal import TrieMatch


class _BKNode:
    __slots__ = ("string", "multiplicity", "children")

    def __init__(self, string: str) -> None:
        self.string = string
        self.multiplicity = 1
        self.children: dict[int, _BKNode] = {}


class BKTree:
    """A BK-tree over a string multiset under edit distance.

    Parameters
    ----------
    strings:
        The dataset; duplicates accumulate multiplicity on one node.
    distance:
        The metric (defaults to the bit-parallel edit distance). Must
        satisfy the metric axioms or queries become incorrect.

    Examples
    --------
    >>> tree = BKTree(["Berlin", "Bern", "Ulm"])
    >>> [m.string for m in tree.search("Bern", 1)]
    ['Bern']
    >>> tree.distance_computations > 0
    True
    """

    def __init__(self, strings: Iterable[str] = (), *,
                 distance: Callable[[str, str], int] = myers_distance,
                 ) -> None:
        self._distance = distance
        self._root: _BKNode | None = None
        self._size = 0
        self.distance_computations = 0
        for string in strings:
            self.insert(string)

    @property
    def size(self) -> int:
        """Number of inserted strings, duplicates included."""
        return self._size

    def insert(self, string: str) -> None:
        """Insert one string.

        Raises
        ------
        IndexConstructionError
            For empty strings (same contract as the tries).
        """
        if not string:
            raise IndexConstructionError(
                "cannot insert an empty string into the BK-tree"
            )
        self._size += 1
        if self._root is None:
            self._root = _BKNode(string)
            return
        node = self._root
        while True:
            self.distance_computations += 1
            d = self._distance(string, node.string)
            if d == 0:
                node.multiplicity += 1
                return
            child = node.children.get(d)
            if child is None:
                node.children[d] = _BKNode(string)
                return
            node = child

    def search(self, query: str, k: int) -> list[TrieMatch]:
        """All strings within distance ``k``, sorted lexicographically.

        Uses the triangle inequality: from a node at distance ``d`` to
        the query, only children on edges in ``[d - k, d + k]`` can
        contain matches.
        """
        check_threshold(k)
        matches: list[TrieMatch] = []
        if self._root is None:
            return matches
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.distance_computations += 1
            d = self._distance(query, node.string)
            if d <= k:
                matches.append(TrieMatch(node.string, d, node.multiplicity))
            for edge, child in node.children.items():
                if d - k <= edge <= d + k:
                    stack.append(child)
        matches.sort(key=lambda match: match.string)
        return matches

    def search_strings(self, query: str, k: int) -> list[str]:
        """Convenience: just the matched strings."""
        return [match.string for match in self.search(query, k)]

    def depth(self) -> int:
        """Height of the tree (0 for empty, 1 for a single node)."""
        if self._root is None:
            return 0

        def node_depth(node: _BKNode) -> int:
            if not node.children:
                return 1
            return 1 + max(node_depth(c) for c in node.children.values())

        return node_depth(self._root)


def bktree_from(strings: Sequence[str]) -> BKTree:
    """Build a BK-tree, inserting in a shuffled-stable order.

    Inserting sorted input degrades BK-trees (adjacent strings produce
    skinny chains); interleaving front/back halves approximates a
    random order deterministically.
    """
    ordered: list[str] = []
    left = 0
    right = len(strings) - 1
    while left <= right:
        ordered.append(strings[left])
        if left != right:
            ordered.append(strings[right])
        left += 1
        right -= 1
    return BKTree(ordered)
