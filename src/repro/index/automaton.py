"""Levenshtein automata: the classical alternative to DP-row descent.

The similarity literature the paper builds on offers a second way to
run a threshold query against a trie: compile the query into a
*Levenshtein automaton* — a nondeterministic automaton accepting every
string within edit distance ``k`` of the query (Schulz & Mihov's
technique) — and intersect it with the trie. This module implements
the bit-parallel simulation of that NFA (one machine word per error
level) plus the trie intersection, as an alternative backend to
:func:`repro.index.traversal.trie_similarity_search`.

State representation: ``k + 1`` integers ``levels[e]``; bit ``j`` of
``levels[e]`` is set iff the query prefix of length ``j`` can be
matched against the text consumed so far with at most ``e`` errors.
A text is accepted at distance ``e`` iff bit ``len(query)`` of
``levels[e]`` is set after consuming it.
"""

from __future__ import annotations

from typing import Iterable

from repro.distance.banded import check_threshold
from repro.index.node import TrieNode
from repro.index.traversal import TrieMatch, TraversalStats


class LevenshteinAutomaton:
    """A bit-parallel automaton accepting strings within distance ``k``.

    Examples
    --------
    >>> automaton = LevenshteinAutomaton("Bern", 1)
    >>> automaton.accepts("Berne")
    True
    >>> automaton.accepts("Berlin")
    False
    >>> automaton.distance("Bern")
    0
    """

    def __init__(self, query: str, k: int) -> None:
        check_threshold(k)
        self._query = query
        self._k = k
        self._n = len(query)
        # Per-symbol characteristic masks: bit j set iff query[j-1] == c
        # (bit 0 is the empty prefix and never set by a symbol).
        masks: dict[str, int] = {}
        for j, symbol in enumerate(query, start=1):
            masks[symbol] = masks.get(symbol, 0) | (1 << j)
        self._masks = masks
        self._accept_bit = 1 << self._n

    @property
    def query(self) -> str:
        """The query the automaton encodes."""
        return self._query

    @property
    def k(self) -> int:
        """The error threshold."""
        return self._k

    def start(self) -> tuple[int, ...]:
        """The initial state: level ``e`` holds prefixes 0..e (deletions)."""
        return tuple(
            (1 << (e + 1)) - 1 if e + 1 <= self._n + 1
            else (1 << (self._n + 1)) - 1
            for e in range(self._k + 1)
        )

    def step(self, state: tuple[int, ...], symbol: str) -> tuple[int, ...]:
        """Consume one text symbol.

        Per level ``e`` (computed in increasing order):

        * **match** — ``(old[e] << 1) & mask(symbol)``;
        * **insertion** in the text — ``old[e-1]`` (consume the symbol,
          keep the prefix);
        * **substitution** — ``old[e-1] << 1``;
        * **deletion** from the query — ``new[e-1] << 1`` (an epsilon
          move, hence the dependency on the *new* lower level).
        """
        masks_get = self._masks.get
        mask = masks_get(symbol, 0)
        full = (1 << (self._n + 1)) - 1
        new_levels: list[int] = []
        previous_old = 0
        previous_new = 0
        for e, old in enumerate(state):
            new = (old << 1) & mask
            if e > 0:
                new |= previous_old | (previous_old << 1) \
                    | (previous_new << 1)
            new &= full
            new_levels.append(new)
            previous_old = old
            previous_new = new
        return tuple(new_levels)

    def is_dead(self, state: tuple[int, ...]) -> bool:
        """No live prefix at any error level: nothing can match anymore."""
        return all(level == 0 for level in state)

    def acceptance(self, state: tuple[int, ...]) -> int | None:
        """Smallest error level accepting in ``state``, or ``None``."""
        accept_bit = self._accept_bit
        for e, level in enumerate(state):
            if level & accept_bit:
                return e
        return None

    def accepts(self, text: Iterable[str]) -> bool:
        """Is ``text`` within edit distance ``k`` of the query?"""
        return self.distance(text) is not None

    def distance(self, text: Iterable[str]) -> int | None:
        """Edit distance to the query if it is at most ``k``, else None."""
        state = self.start()
        for symbol in text:
            state = self.step(state, symbol)
            if self.is_dead(state):
                return None
        return self.acceptance(state)


def automaton_trie_search(trie, query: str, k: int, *,
                          stats: TraversalStats | None = None,
                          ) -> list[TrieMatch]:
    """Similarity search by trie-automaton intersection.

    Functionally identical to
    :func:`repro.index.traversal.trie_similarity_search` (the property
    tests enforce this); the per-symbol work is ``k + 1`` word
    operations instead of a banded DP row, which favours large ``k``
    on short alphabets.

    Examples
    --------
    >>> from repro.index import PrefixTrie
    >>> trie = PrefixTrie(["Berlin", "Bern", "Ulm"])
    >>> [m.string for m in automaton_trie_search(trie, "Bern", 1)]
    ['Bern']
    """
    check_threshold(k)
    if stats is None:
        stats = TraversalStats()
    automaton = LevenshteinAutomaton(query, k)
    matches: list[TrieMatch] = []

    def descend(node: TrieNode, prefix: str,
                state: tuple[int, ...]) -> None:
        stats.nodes_visited += 1
        for symbol in node.label:
            stats.symbols_processed += 1
            state = automaton.step(state, symbol)
            if automaton.is_dead(state):
                stats.branches_pruned_by_length += 1
                return
        if node.is_terminal:
            distance = automaton.acceptance(state)
            if distance is not None:
                stats.matches += 1
                matches.append(
                    TrieMatch(prefix + node.label, distance,
                              node.terminal_count)
                )
        child_prefix = prefix + node.label
        for child in node.children.values():
            descend(child, child_prefix, state)

    descend(trie.root, "", automaton.start())
    matches.sort(key=lambda match: match.string)
    return matches
