"""Inverted q-gram index — the "well-known index" family.

Most mature similarity-search systems (the ones the paper's title winks
at) are built on inverted q-gram lists: every dataset string is
registered under each of its q-grams, a query collects the posting
lists of *its* q-grams, and the count bound of
:mod:`repro.filters.qgram` turns overlap counts into a candidate set
that is then verified with a bounded distance kernel.

Soundness subtleties handled here:

* Strings shorter than ``q`` have no q-grams and can never be reached
  through posting lists — they are kept in a by-length side table and
  screened with the length filter only.
* When ``required_overlap <= 0`` the count bound has no power for a
  given (query, length) combination, so all strings of the affected
  lengths must be verified; the by-length table serves those too.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable, Sequence

from repro.distance.banded import check_threshold
from repro.distance.dispatch import bounded_distance
from repro.filters.qgram import qgram_profile, required_overlap
from repro.index.traversal import TrieMatch


class QGramIndex:
    """An inverted index from q-grams to dataset string ids.

    Parameters
    ----------
    strings:
        The dataset. Duplicates are preserved (they share one id's
        multiplicity).
    q:
        Gram length; see :class:`repro.filters.qgram.QGramCountFilter`
        for guidance.

    Examples
    --------
    >>> index = QGramIndex(["Berlin", "Bern", "Ulm"], q=2)
    >>> [m.string for m in index.search("Berlino", 2)]
    ['Berlin']
    """

    def __init__(self, strings: Iterable[str], q: int = 2) -> None:
        if q < 1:
            raise ValueError(f"q must be positive, got {q}")
        self._q = q
        # Distinct strings get one id; multiplicity is tracked aside.
        self._strings: list[str] = []
        self._multiplicity: list[int] = []
        ids: dict[str, int] = {}
        for string in strings:
            string_id = ids.get(string)
            if string_id is None:
                string_id = len(self._strings)
                ids[string] = string_id
                self._strings.append(string)
                self._multiplicity.append(0)
            self._multiplicity[string_id] += 1

        self._postings: dict[str, list[int]] = defaultdict(list)
        self._ids_by_length: dict[int, list[int]] = defaultdict(list)
        for string_id, string in enumerate(self._strings):
            self._ids_by_length[len(string)].append(string_id)
            seen: set[str] = set()
            for i in range(len(string) - q + 1):
                gram = string[i:i + q]
                # Posting lists store each (gram, id) pair once; overlap
                # counting re-multiplies via the profiles.
                if gram not in seen:
                    seen.add(gram)
                    self._postings[gram].append(string_id)

    @property
    def q(self) -> int:
        """The gram length."""
        return self._q

    @property
    def string_count(self) -> int:
        """Number of indexed strings, duplicates included."""
        return sum(self._multiplicity)

    @property
    def distinct_count(self) -> int:
        """Number of distinct indexed strings."""
        return len(self._strings)

    @property
    def gram_count(self) -> int:
        """Number of distinct q-grams with non-empty posting lists."""
        return len(self._postings)

    def _candidate_ids(self, query: str, k: int) -> set[int]:
        """Ids that might be within distance ``k`` of ``query``."""
        q = self._q
        n = len(query)
        candidates: set[int] = set()

        # Lengths where the count bound is powerless (including all
        # lengths < q, whose strings have no grams at all) are screened
        # by length alone.
        for length, ids in self._ids_by_length.items():
            if abs(length - n) > k:
                continue
            if length < q or required_overlap(n, length, q, k) <= 0:
                candidates.update(ids)

        if n >= q:
            query_profile = qgram_profile(query, q)
            overlap: Counter[int] = Counter()
            for gram, count in query_profile.items():
                for string_id in self._postings.get(gram, ()):
                    # Multiset overlap of this gram for the pair is
                    # min(count in query, count in candidate); counting
                    # candidate-side multiplicity needs the candidate
                    # profile, so use the cheap bound min(count, ...)
                    # later during thresholding: here accumulate the
                    # query-side count as an upper bound on the overlap
                    # this gram can contribute.
                    overlap[string_id] += count
            for string_id, shared_bound in overlap.items():
                candidate = self._strings[string_id]
                length = len(candidate)
                if abs(length - n) > k:
                    continue
                needed = required_overlap(n, length, q, k)
                if shared_bound >= needed:
                    candidates.add(string_id)
        return candidates

    def search(self, query: str, k: int) -> list[TrieMatch]:
        """All dataset strings within edit distance ``k`` of ``query``.

        Returns matches in lexicographic order, like the trie search.
        """
        check_threshold(k)
        matches: list[TrieMatch] = []
        for string_id in self._candidate_ids(query, k):
            candidate = self._strings[string_id]
            distance = bounded_distance(query, candidate, k)
            if distance is not None:
                matches.append(
                    TrieMatch(candidate, distance,
                              self._multiplicity[string_id])
                )
        matches.sort(key=lambda match: match.string)
        return matches

    def search_strings(self, query: str, k: int) -> list[str]:
        """Convenience: just the matched strings."""
        return [match.string for match in self.search(query, k)]

    def posting_list(self, gram: str) -> Sequence[int]:
        """The (read-only) posting list of ``gram``; empty if absent."""
        return tuple(self._postings.get(gram, ()))
